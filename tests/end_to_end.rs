//! End-to-end integration: dataset generation → matching → scoring,
//! across the public facade API.

use evmatch::matching::analysis;
use evmatch::matching::setsplit::{split_ideal, SetSplitConfig};
use evmatch::prelude::*;
use std::collections::BTreeSet;

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 150,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

#[test]
fn ss_matches_most_eids_correctly() {
    let d = dataset();
    let targets = sample_targets(&d, 50, 1);
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_many(&targets).unwrap();
    assert_eq!(report.outcomes.len(), 50);
    let stats = score_report(&d, &report);
    assert!(
        stats.accuracy > 0.85,
        "SS accuracy {:.1}% below the paper's band",
        stats.percent()
    );
}

#[test]
fn ss_selects_fewer_scenarios_than_edp() {
    // Scenario reuse needs co-occupancy to bite: use the paper's density
    // regime (several people per cell), not the sparse default above.
    let d = EvDataset::generate(&DatasetConfig {
        population: 400,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&d, 150, 2);

    d.video.reset_usage();
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let ss = matcher.match_many(&targets).unwrap();

    d.video.reset_usage();
    let edp = evmatch::matching::edp::match_edp(
        &d.estore,
        &d.video,
        &targets,
        &evmatch::matching::edp::EdpConfig::default(),
    );

    assert!(
        ss.selected_count() < edp.selected_count(),
        "scenario reuse must make SS cheaper (SS {} vs EDP {})",
        ss.selected_count(),
        edp.selected_count()
    );
    // And the per-EID list is a little longer for SS (paper Fig. 7).
    assert!(ss.scenarios_per_eid() > edp.scenarios_per_eid() - 0.5);
}

#[test]
fn single_eid_matching_works_without_touching_others() {
    let d = dataset();
    let eid = sample_targets(&d, 1, 3).into_iter().next().unwrap();
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_one(eid);
    assert_eq!(report.outcomes.len(), 1);
    let outcome = &report.outcomes[0];
    assert_eq!(outcome.eid, eid);
    assert_eq!(outcome.vid, d.true_vid(eid), "single match must be right");
    // Far fewer scenarios than the corpus.
    assert!(report.selected_count() < d.video.len() / 4);
}

#[test]
fn universal_matching_labels_every_carried_eid() {
    let d = EvDataset::generate(&DatasetConfig {
        population: 80,
        duration: 250,
        ..DatasetConfig::default()
    })
    .unwrap();
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_universal().unwrap();
    // Everyone carries a device and everyone appears in E-data over this
    // duration, so the universal run covers the full roster.
    assert_eq!(report.outcomes.len(), 80);
    let stats = score_report(&d, &report);
    assert!(stats.accuracy > 0.85, "{:.1}%", stats.percent());
}

#[test]
fn theorem_bounds_hold_on_generated_data() {
    let d = dataset();
    let targets: BTreeSet<Eid> = sample_targets(&d, 40, 4);
    let out = split_ideal(&d.estore, &targets, &SetSplitConfig::default());
    let audit = analysis::audit_split(&d.estore, &targets, &out);
    assert!(audit.within_bounds, "{audit:?}");
    assert!(audit.replay_consistent, "{audit:?}");
    assert_eq!(audit.universe, 40);
}

#[test]
fn video_extraction_is_shared_across_eids() {
    let d = dataset();
    let targets = sample_targets(&d, 40, 5);
    d.video.reset_usage();
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_many(&targets).unwrap();
    let stats = d.video.stats();
    // Extraction ran once per distinct scenario, not once per (EID, use).
    assert!(stats.extracted_scenarios <= report.selected_count());
    // Reuse now lands in the driver-side gallery cache, upstream of the
    // video store: a scenario serving several EIDs is fetched and
    // regrouped once, and every further use is a gallery hit.
    assert!(
        report.timings.index.cache_hits + stats.cache_hits > 0,
        "scenario reuse must produce cache hits"
    );
}

#[test]
fn match_report_serializes() {
    let d = dataset();
    let targets = sample_targets(&d, 10, 6);
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_many(&targets).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: MatchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.outcomes, report.outcomes);
    assert_eq!(back.selected_scenarios, report.selected_scenarios);
}
