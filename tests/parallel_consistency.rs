//! The MapReduce pipelines must compute the same thing as their
//! sequential references, deterministically, at any cluster width.

use evmatch::mapreduce::{ClusterConfig, MapReduce};
use evmatch::matching::edp::{edp_engine, match_edp, match_edp_parallel, EdpConfig};
use evmatch::matching::parallel::{parallel_match, parallel_split, ParallelSplitConfig};
use evmatch::matching::setsplit::{split_ideal, SetSplitConfig};
use evmatch::matching::vfilter::VFilterConfig;
use evmatch::prelude::*;

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 120,
        duration: 250,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

fn cluster(workers: usize) -> ClusterConfig {
    ClusterConfig {
        workers,
        reduce_partitions: workers.max(2),
        split_size: 8,
        ..ClusterConfig::default()
    }
}

#[test]
fn parallel_edp_equals_sequential_edp() {
    let d = dataset();
    let targets = sample_targets(&d, 30, 1);
    let config = EdpConfig::default();

    d.video.reset_usage();
    let sequential = match_edp(&d.estore, &d.video, &targets, &config);
    d.video.reset_usage();
    let engine = edp_engine(cluster(4));
    let parallel = match_edp_parallel(&engine, &d.estore, &d.video, &targets, &config).unwrap();

    assert_eq!(sequential.outcomes, parallel.outcomes);
    assert_eq!(sequential.lists, parallel.lists);
    assert_eq!(sequential.selected_scenarios, parallel.selected_scenarios);
}

#[test]
fn parallel_split_is_deterministic_across_worker_counts() {
    let d = dataset();
    let targets = sample_targets(&d, 40, 2);
    let config = ParallelSplitConfig {
        seed: 5,
        max_iterations: None,
    };
    let reference =
        parallel_split(&MapReduce::new(cluster(1)), &d.estore, &targets, &config).unwrap();
    for workers in [2, 4, 8] {
        let run = parallel_split(
            &MapReduce::new(cluster(workers)),
            &d.estore,
            &targets,
            &config,
        )
        .unwrap();
        assert_eq!(run.recorded, reference.recorded, "workers={workers}");
        assert_eq!(run.lists, reference.lists, "workers={workers}");
        assert_eq!(
            run.partition.block_count(),
            reference.partition.block_count()
        );
    }
}

#[test]
fn parallel_split_reaches_sequential_granularity() {
    let d = dataset();
    let targets = sample_targets(&d, 40, 3);
    let sequential = split_ideal(&d.estore, &targets, &SetSplitConfig::default());
    let parallel = parallel_split(
        &MapReduce::new(cluster(4)),
        &d.estore,
        &targets,
        &ParallelSplitConfig::default(),
    )
    .unwrap();
    assert_eq!(parallel.fully_split(), sequential.fully_split());
    assert_eq!(
        parallel.partition.block_count(),
        sequential.partition.block_count()
    );
}

#[test]
fn parallel_match_accuracy_is_comparable_to_sequential() {
    let d = dataset();
    let targets = sample_targets(&d, 40, 4);

    d.video.reset_usage();
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let seq_stats = score_report(&d, &matcher.match_many(&targets).unwrap());

    d.video.reset_usage();
    let par = parallel_match(
        &MapReduce::new(cluster(4)),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .unwrap();
    let par_stats = score_report(&d, &par);

    assert!(
        par_stats.accuracy >= seq_stats.accuracy - 0.15,
        "parallel {:.1}% vs sequential {:.1}%",
        par_stats.percent(),
        seq_stats.percent()
    );
    // No VID is awarded twice after conflict resolution.
    let mut seen = std::collections::BTreeSet::new();
    for o in par.outcomes.iter().filter(|o| o.is_majority()) {
        assert!(
            seen.insert(o.vid.unwrap()),
            "duplicate award of {:?}",
            o.vid
        );
    }
}

#[test]
fn sharded_report_is_byte_identical_across_thread_counts() {
    use evmatch::matching::parallel::ParallelSplitConfig;
    use evmatch::matching::sharded::sharded_match;

    let d = dataset();
    let targets = sample_targets(&d, 40, 6);
    let split_config = ParallelSplitConfig {
        seed: 11,
        max_iterations: None,
    };
    let run = |threads: usize| {
        d.video.reset_usage();
        sharded_match(
            threads,
            &d.estore,
            &d.video,
            &targets,
            &split_config,
            &VFilterConfig::default(),
            Telemetry::disabled(),
        )
        .unwrap()
    };
    let reference = run(1);
    let ncpu = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    for threads in [2, ncpu] {
        let report = run(threads);
        assert_eq!(report.outcomes, reference.outcomes, "threads={threads}");
        assert_eq!(report.lists, reference.lists, "threads={threads}");
        assert_eq!(
            report.selected_scenarios, reference.selected_scenarios,
            "threads={threads}"
        );
        assert_eq!(report.rounds, reference.rounds, "threads={threads}");
    }
}

#[test]
fn matcher_facade_runs_sharded_mode() {
    let d = dataset();
    let targets = sample_targets(&d, 25, 7);
    let config = MatcherConfig {
        execution: ExecutionMode::Sharded(2),
        ..MatcherConfig::default()
    };
    let matcher = EvMatcher::new(&d.estore, &d.video, config);
    let report = matcher.match_many(&targets).unwrap();
    assert_eq!(report.outcomes.len(), 25);
    let stats = score_report(&d, &report);
    assert!(stats.accuracy > 0.7, "{:.1}%", stats.percent());
}

#[test]
fn matcher_facade_runs_parallel_mode() {
    let d = dataset();
    let targets = sample_targets(&d, 25, 5);
    let config = MatcherConfig {
        execution: ExecutionMode::Parallel(cluster(3)),
        ..MatcherConfig::default()
    };
    let matcher = EvMatcher::new(&d.estore, &d.video, config);
    let report = matcher.match_many(&targets).unwrap();
    assert_eq!(report.outcomes.len(), 25);
    let stats = score_report(&d, &report);
    assert!(stats.accuracy > 0.7, "{:.1}%", stats.percent());
}
