//! Robustness integration for the practical setting: drifting EIDs,
//! device-less people (missing EIDs) and missed detections (missing
//! VIDs) — the regimes of paper §IV-C and Figs. 10–11.

use evmatch::prelude::*;
use evmatch::sensing::SensingNoise;

fn base() -> DatasetConfig {
    DatasetConfig {
        population: 120,
        duration: 250,
        ..DatasetConfig::default()
    }
}

fn accuracy(config: &DatasetConfig, matched: usize) -> f64 {
    let d = EvDataset::generate(config).expect("valid config");
    let targets = sample_targets(&d, matched, 1);
    let matcher = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default());
    let report = matcher.match_many(&targets).unwrap();
    score_report(&d, &report).accuracy
}

#[test]
fn strong_drift_noise_is_absorbed_by_vague_zones() {
    let mut config = base();
    config.noise = SensingNoise {
        sigma: 12.0,
        dropout: 0.05,
    };
    let acc = accuracy(&config, 40);
    assert!(acc > 0.75, "drift accuracy {:.1}%", acc * 100.0);
}

#[test]
fn half_the_population_without_devices_still_matches() {
    let mut config = base();
    config.eid_missing_rate = 0.5;
    let acc = accuracy(&config, 40);
    assert!(acc > 0.75, "missing-EID accuracy {:.1}%", acc * 100.0);
}

#[test]
fn missed_detections_degrade_gracefully() {
    let mut low = base();
    low.detection.miss_rate = 0.02;
    let mut high = base();
    high.detection.miss_rate = 0.10;
    let acc_low = accuracy(&low, 40);
    let acc_high = accuracy(&high, 40);
    assert!(acc_low > 0.8, "2% miss: {:.1}%", acc_low * 100.0);
    assert!(acc_high > 0.6, "10% miss: {:.1}%", acc_high * 100.0);
    assert!(
        acc_high <= acc_low + 0.1,
        "more misses cannot systematically help ({acc_low} -> {acc_high})"
    );
}

#[test]
fn refinement_helps_under_missing_vids() {
    let mut config = base();
    config.detection.miss_rate = 0.08;
    let d = EvDataset::generate(&config).unwrap();
    let targets = sample_targets(&d, 40, 2);

    let run = |rounds: u32| {
        d.video.reset_usage();
        let matcher = EvMatcher::new(
            &d.estore,
            &d.video,
            MatcherConfig {
                max_rounds: rounds,
                ..MatcherConfig::default()
            },
        );
        score_report(&d, &matcher.match_many(&targets).unwrap()).accuracy
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four >= one - 0.05,
        "refining must not hurt: 1 round {:.1}% vs 4 rounds {:.1}%",
        one * 100.0,
        four * 100.0
    );
}

#[test]
fn combined_worst_case_remains_usable() {
    // Drift + 30% device-less + 5% missed detections together.
    let mut config = base();
    config.noise = SensingNoise {
        sigma: 10.0,
        dropout: 0.03,
    };
    config.eid_missing_rate = 0.3;
    config.detection.miss_rate = 0.05;
    let acc = accuracy(&config, 30);
    assert!(acc > 0.6, "combined-stress accuracy {:.1}%", acc * 100.0);
}
