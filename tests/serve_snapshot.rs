//! Serve-layer snapshot integration: a query answered **during**
//! ingest must be byte-identical to one computed offline on the
//! snapshot it claims (its epoch), with the staleness gauge accounting
//! for every event the answer cannot see — and a restart must resume
//! from exactly the applied state.

use evmatch::prelude::*;
use evmatch::serve::{LiveCorpus, ServeConfig};
use evmatch::telemetry::names;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("evmatch-serve-{}-{tag}-{n}", std::process::id()))
}

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 120,
        duration: 200,
        seed: 42,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

/// The events of `d` whose tick falls in `[from, to)`.
fn slice(
    d: &EvDataset,
    from: u64,
    to: u64,
) -> (
    Vec<evmatch::core::scenario::EScenario>,
    Vec<evmatch::core::scenario::VScenario>,
) {
    let es = d
        .estore
        .iter()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    let vs = d
        .video
        .scenarios()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    (es, vs)
}

/// Wall-clock timings legitimately differ between two runs; everything
/// else in a report is deterministic and must match exactly.
fn assert_same_report(live: &MatchReport, offline: &MatchReport) {
    assert_eq!(live.outcomes, offline.outcomes, "per-EID outcomes differ");
    assert_eq!(live.lists, offline.lists, "scenario lists differ");
    assert_eq!(
        live.selected_scenarios, offline.selected_scenarios,
        "selected scenario sets differ"
    );
    assert_eq!(live.rounds, offline.rounds, "refinement rounds differ");
}

/// The acceptance scenario: ingest half the world, apply, stage the
/// rest, query — the answer must equal an offline run over stores
/// holding only the applied half, and the staleness gauge must count
/// exactly the staged events.
#[test]
fn query_during_ingest_is_byte_identical_to_its_snapshot() {
    let d = dataset();
    let targets: BTreeSet<Eid> = sample_targets(&d, 30, 7);
    let dir = temp_dir("snapshot");
    let tel = Telemetry::new(TelemetryLevel::Counters);

    let mut live = LiveCorpus::open(
        &dir,
        ServeConfig {
            cost: d.video.cost_model(),
            watch: targets.clone(),
            ..ServeConfig::default()
        },
        &tel,
    )
    .expect("open live corpus");

    let (day_e, day_v) = slice(&d, 0, 100);
    live.ingest(day_e.clone(), day_v.clone()).expect("ingest");
    live.apply().expect("apply");

    let (night_e, night_v) = slice(&d, 100, 200);
    let staged = (night_e.len() + night_v.len()) as u64;
    assert!(staged > 0, "the second half must hold events");
    live.ingest(night_e, night_v).expect("ingest");

    // The live answer, taken mid-ingest.
    let answer = live.query(&targets).expect("live query");
    assert_eq!(answer.epoch, 1, "one apply so far");
    assert_eq!(answer.staleness_events, staged, "staleness = staged events");
    assert_eq!(
        tel.registry().gauge_value(names::SERVE_STALENESS_EVENTS),
        Some(staged as f64),
        "staleness gauge tracks the staged backlog"
    );

    // The offline answer on the snapshot the epoch names: stores built
    // from the applied (first-half) events only.
    let snapshot_e = EScenarioStore::from_scenarios(day_e);
    let snapshot_v = VideoStore::new(day_v, d.video.cost_model());
    let offline = EvMatcher::new(&snapshot_e, &snapshot_v, MatcherConfig::default())
        .match_many(&targets)
        .expect("offline query");
    assert_same_report(&answer.report, &offline);

    // After applying, staleness drains to zero and the epoch advances.
    live.apply().expect("apply");
    let fresh = live.query(&targets).expect("fresh query");
    assert_eq!(fresh.epoch, 2);
    assert_eq!(fresh.staleness_events, 0);
    assert_eq!(
        tel.registry().gauge_value(names::SERVE_STALENESS_EVENTS),
        Some(0.0)
    );

    live.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A restarted service resumes from the applied state: the full
/// streamed corpus answers byte-identically to a never-restarted
/// in-memory run, and the live watch index agrees with the applied
/// store.
#[test]
fn restart_resumes_the_applied_corpus() {
    let d = dataset();
    let targets: BTreeSet<Eid> = sample_targets(&d, 30, 7);
    let dir = temp_dir("restart");
    let config = || ServeConfig {
        cost: d.video.cost_model(),
        watch: targets.clone(),
        ..ServeConfig::default()
    };

    {
        let mut live =
            LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("first session");
        let (e, v) = slice(&d, 0, 100);
        live.ingest(e, v).expect("ingest");
        // `finish` applies the staged tail before checkpointing, so
        // nothing is lost by "stopping the service" here.
        live.finish().expect("shutdown");
    }

    let mut live = LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("second session");
    assert_eq!(live.epoch(), 0, "epochs are per-session");
    let (e, v) = slice(&d, 100, 200);
    live.ingest(e, v).expect("ingest");
    live.apply().expect("apply");

    let answer = live.query(&targets).expect("resumed query");
    let offline = EvMatcher::new(&d.estore, &d.video, MatcherConfig::default())
        .match_many(&targets)
        .expect("offline query");
    assert_same_report(&answer.report, &offline);

    // The incrementally maintained watch partition equals a
    // from-scratch chronological split over the applied store.
    let lists = live.watch_lists().expect("watch set is configured");
    let split_cfg = evmatch::matching::setsplit::SetSplitConfig {
        strategy: evmatch::matching::setsplit::SelectionStrategy::Chronological,
        ..Default::default()
    };
    let rebuilt = evmatch::matching::setsplit::split_ideal(live.estore(), &targets, &split_cfg);
    assert_eq!(lists, rebuilt, "live watch index == from-scratch split");

    live.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Auto-apply (`apply_every`) bounds staleness: a backlog crossing the
/// threshold publishes itself, so no query can ever report staleness at
/// or above the bound.
#[test]
fn apply_every_bounds_staleness() {
    let d = dataset();
    let targets: BTreeSet<Eid> = sample_targets(&d, 12, 7);
    let dir = temp_dir("bound");
    let bound = 64usize;

    let mut live = LiveCorpus::open(
        &dir,
        ServeConfig {
            cost: d.video.cost_model(),
            apply_every: bound,
            ..ServeConfig::default()
        },
        Telemetry::disabled(),
    )
    .expect("open live corpus");

    let mut applies = 0u64;
    for window in 0..20u64 {
        let (e, v) = slice(&d, window * 10, (window + 1) * 10);
        let receipt = live.ingest(e, v).expect("ingest");
        assert!(
            (receipt.staged_events as usize) < bound,
            "staleness stays under the apply_every bound"
        );
        if receipt.applied {
            applies += 1;
        }
        let answer = live.query(&targets).expect("query under ingest");
        assert!((answer.staleness_events as usize) < bound);
    }
    assert!(applies > 0, "the threshold actually fired");
    assert!(live.epoch() >= applies, "every auto-apply bumped the epoch");

    live.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
