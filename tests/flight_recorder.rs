//! Flight-recorder post-mortem integration: a worker panic mid-job must
//! leave a `flight-*.json` on disk whose entries attribute the failed
//! attempt to its job, stage and task — the artifact an operator reads
//! when a run died and the process is already gone.

use evmatch::mapreduce::{ClusterConfig, Emitter, FaultPlan, JobError, MapReduce, Mapper, Reducer};
use evmatch::prelude::*;
use serde_json::Value;

/// Panics on one specific input line, succeeds on the rest.
struct PanicOnMarker;
impl Mapper<String> for PanicOnMarker {
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, out: &mut Emitter<String, u64>) {
        assert!(!line.contains("poison"), "injected mapper panic");
        out.emit(line.clone(), 1);
    }
}

struct Count;
impl Reducer<String, u64> for Count {
    type Output = (String, u64);
    fn reduce(&self, key: &String, values: &[u64]) -> Vec<(String, u64)> {
        vec![(key.clone(), values.len() as u64)]
    }
}

/// Integer field of a parsed flight entry.
fn int_field(entry: &Value, key: &str) -> Option<i128> {
    match entry.get(key).or_else(|| entry.get("args")?.get(key))? {
        Value::Int(n) => Some(*n),
        _ => None,
    }
}

/// String field of a parsed flight entry.
fn str_field<'a>(entry: &'a Value, key: &str) -> Option<&'a str> {
    match entry.get(key).or_else(|| entry.get("args")?.get(key))? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[test]
fn worker_panic_dumps_an_attributable_flight_recording() {
    let scratch = std::env::temp_dir().join(format!("evm-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let telemetry = Telemetry::new(TelemetryLevel::Counters);
    telemetry.flight().set_enabled(true);
    telemetry.set_flight_dir(Some(scratch.clone()));

    // One poisoned split among healthy ones: the panic must be
    // attributed to its exact task, not just "the job died".
    let mut lines: Vec<String> = (0..8).map(|i| format!("line{i}")).collect();
    lines.insert(5, "poison".to_string());
    let engine = MapReduce::new(ClusterConfig {
        split_size: 1,
        faults: FaultPlan {
            max_attempts: 2,
            ..FaultPlan::default()
        },
        ..ClusterConfig::default()
    })
    .with_telemetry(&telemetry);
    let err = engine.run(lines, &PanicOnMarker, &Count).unwrap_err();
    assert!(
        matches!(err, JobError::WorkerPanicked { stage: "map", .. }),
        "expected WorkerPanicked, got {err:?}"
    );

    // Exactly one dump, named flight-*.json.
    let dumps: Vec<_> = std::fs::read_dir(&scratch)
        .expect("read scratch dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("flight-") && name.ends_with(".json")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one flight dump, got {dumps:?}");

    let text = std::fs::read_to_string(&dumps[0]).expect("read dump");
    let _ = std::fs::remove_dir_all(&scratch);
    let dump: Value = serde_json::from_str(&text).expect("dump must be valid JSON");
    assert_eq!(
        dump.get("reason"),
        Some(&Value::Str("worker_panicked".into()))
    );
    let entries = dump
        .get("entries")
        .and_then(Value::as_arr)
        .expect("entries array");

    // Reconstruct the causal chain from the serialized ids alone:
    // job_started names the job span, stage_started must be its child,
    // and the panic must hang off the stage with the poisoned task id.
    let job = entries
        .iter()
        .find(|e| str_field(e, "name") == Some("job_started"))
        .expect("job_started instant recorded");
    let trace_id = int_field(job, "trace_id").expect("job trace id");
    let job_span = int_field(job, "span_id").expect("job span id");

    let stage = entries
        .iter()
        .find(|e| str_field(e, "name") == Some("stage_started"))
        .expect("stage_started instant recorded");
    assert_eq!(str_field(stage, "stage"), Some("map"));
    assert_eq!(int_field(stage, "trace_id"), Some(trace_id));
    assert_eq!(
        int_field(stage, "parent_span_id"),
        Some(job_span),
        "stage span must be a child of the job span",
    );
    let stage_span = int_field(stage, "span_id").expect("stage span id");

    let panics: Vec<_> = entries
        .iter()
        .filter(|e| str_field(e, "name") == Some("task_panicked"))
        .collect();
    assert_eq!(
        panics.len(),
        2,
        "the poisoned task panics once per allowed attempt"
    );
    for p in &panics {
        assert_eq!(int_field(p, "trace_id"), Some(trace_id));
        assert_eq!(
            int_field(p, "span_id"),
            Some(stage_span),
            "panic must be attributed to the map stage span",
        );
        assert_eq!(
            int_field(p, "task"),
            Some(5),
            "panic must name the poisoned task",
        );
        assert!(
            str_field(p, "message").is_some_and(|m| m.contains("injected mapper panic")),
            "panic payload must survive into the dump",
        );
    }

    // Healthy attempts are in the recording too — the dump is a flight
    // recording of the whole run, not only the crash site.
    assert!(
        entries.iter().any(|e| {
            str_field(e, "name").is_some_and(|n| n.starts_with("map["))
                && int_field(e, "parent_span_id") == Some(stage_span)
                && str_field(e, "outcome") == Some("done")
        }),
        "completed attempt spans must appear, parented to the stage",
    );
    assert!(
        entries
            .iter()
            .any(|e| str_field(e, "name") == Some("retry_budget_exhausted")),
        "the exhaustion edge that triggered the dump must be recorded",
    );
}
