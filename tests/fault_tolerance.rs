//! Fault-injection integration: the matching pipelines must survive task
//! failures and stragglers with identical results.

use evmatch::mapreduce::{ClusterConfig, FaultPlan, MapReduce};
use evmatch::matching::parallel::{parallel_match, ParallelSplitConfig};
use evmatch::matching::vfilter::VFilterConfig;
use evmatch::prelude::*;

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 100,
        duration: 200,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

fn healthy() -> ClusterConfig {
    ClusterConfig {
        workers: 4,
        reduce_partitions: 4,
        split_size: 8,
        ..ClusterConfig::default()
    }
}

#[test]
fn injected_failures_do_not_change_matching_results() {
    let d = dataset();
    let targets = sample_targets(&d, 30, 1);

    d.video.reset_usage();
    let clean = parallel_match(
        &MapReduce::new(healthy()),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .unwrap();

    let flaky_cluster = ClusterConfig {
        faults: FaultPlan {
            task_failure_rate: 0.3,
            max_attempts: 30,
            seed: 17,
            ..FaultPlan::default()
        },
        ..healthy()
    };
    d.video.reset_usage();
    let flaky = parallel_match(
        &MapReduce::new(flaky_cluster),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .unwrap();

    assert_eq!(clean.outcomes, flaky.outcomes);
    assert_eq!(clean.lists, flaky.lists);
}

#[test]
fn stragglers_with_speculation_preserve_results() {
    let d = dataset();
    let targets = sample_targets(&d, 25, 2);

    d.video.reset_usage();
    let clean = parallel_match(
        &MapReduce::new(healthy()),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .unwrap();

    let straggly = ClusterConfig {
        faults: FaultPlan {
            straggler_rate: 0.3,
            straggler_factor: 5,
            speculative_execution: true,
            seed: 23,
            ..FaultPlan::default()
        },
        task_overhead_units: 10_000,
        ..healthy()
    };
    d.video.reset_usage();
    let slow = parallel_match(
        &MapReduce::new(straggly),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .unwrap();

    assert_eq!(clean.outcomes, slow.outcomes);
}

#[test]
fn hopeless_cluster_reports_task_exhaustion() {
    let d = dataset();
    let targets = sample_targets(&d, 10, 3);
    let doomed = ClusterConfig {
        faults: FaultPlan {
            task_failure_rate: 0.97,
            max_attempts: 2,
            seed: 3,
            ..FaultPlan::default()
        },
        ..healthy()
    };
    let result = parallel_match(
        &MapReduce::new(doomed),
        &d.estore,
        &d.video,
        &targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    );
    match result {
        Err(evmatch::mapreduce::JobError::TaskExhausted { .. }) => {}
        other => panic!("expected TaskExhausted, got {other:?}"),
    }
}

#[test]
fn dfs_survives_node_loss_with_replication() {
    use evmatch::mapreduce::dfs::{Dfs, NodeId};
    let dfs = Dfs::new(5, 64, 3).unwrap();
    let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    dfs.put("/captures/day-0.log", payload.clone()).unwrap();
    dfs.fail_node(NodeId(1));
    dfs.fail_node(NodeId(3));
    assert_eq!(dfs.get("/captures/day-0.log").unwrap(), &payload[..]);
    let created = dfs.rebalance();
    assert!(created > 0);
    dfs.fail_node(NodeId(0));
    assert_eq!(dfs.get("/captures/day-0.log").unwrap(), &payload[..]);
}
