//! Disk round-trip integration: a corpus persisted through `ev-disk`
//! must be **indistinguishable** from the in-memory stores it came
//! from — same loaded store, same `MatchReport`, byte for byte — even
//! after a crash mid-append is healed on reopen.

use evmatch::disk::{DiskBackend, DiskStore};
use evmatch::matching::refine::{match_with_refinement, match_with_refinement_on, RefineConfig};
use evmatch::matching::MatchReport;
use evmatch::prelude::*;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "evmatch-roundtrip-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn persist(dir: &std::path::Path, d: &EvDataset) {
    let mut store = DiskStore::open_or_create(dir).expect("corpus dir");
    let e: Vec<_> = d.estore.iter().cloned().collect();
    let v: Vec<_> = d.video.scenarios().cloned().collect();
    store.append(&e, &v).expect("durable append");
}

/// Wall-clock timings legitimately differ between two runs; everything
/// else in a report is deterministic and must match exactly.
fn assert_same_report(disk: &MatchReport, memory: &MatchReport) {
    assert_eq!(disk.outcomes, memory.outcomes, "per-EID outcomes differ");
    assert_eq!(disk.lists, memory.lists, "scenario lists differ");
    assert_eq!(
        disk.selected_scenarios, memory.selected_scenarios,
        "selected scenario sets differ"
    );
    assert_eq!(disk.rounds, memory.rounds, "refinement rounds differ");
}

#[test]
fn persisted_corpus_matches_byte_identically_to_memory() {
    let d = EvDataset::generate(&DatasetConfig {
        population: 150,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let dir = temp_dir("identity");
    persist(&dir, &d);

    let backend = DiskBackend::open(&dir, d.video.cost_model()).expect("reopen corpus");
    assert_eq!(
        backend.estore(),
        &d.estore,
        "the loaded E-store is the persisted E-store"
    );

    let targets = sample_targets(&d, 50, 1);
    let config = RefineConfig::default();
    let memory = match_with_refinement(&d.estore, &d.video, &targets, &config);
    let disk = match_with_refinement_on(&backend, &targets, &config);
    assert_same_report(&disk, &memory);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn crash_mid_append_recovers_to_a_byte_identical_report() {
    // Two committed ingest batches (colliding scenario ids resolve
    // later-wins, matching `EScenarioStore::merged`)...
    let day1 = EvDataset::generate(&DatasetConfig {
        population: 120,
        duration: 200,
        seed: 42,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let day2 = EvDataset::generate(&DatasetConfig {
        population: 120,
        duration: 200,
        seed: 43,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let dir = temp_dir("crash");
    persist(&dir, &day1);
    persist(&dir, &day2);

    // ...then a third append dies midway: its segment reached disk, the
    // manifest entry naming it did not.
    std::fs::write(dir.join("seg-000099-e.seg"), b"EVSG\x01\x00\x00").expect("orphan");
    let mut manifest = OpenOptions::new()
        .append(true)
        .open(dir.join(evmatch::disk::MANIFEST_FILE))
        .expect("open manifest");
    manifest
        .write_all(&[65, 0, 0, 0, 0xde, 0xad, 0xbe])
        .expect("torn tail");
    drop(manifest);

    // Reopening heals the crash; no panic, no committed record lost.
    let backend = DiskBackend::open(&dir, day1.video.cost_model()).expect("recovering open");
    let rec = backend.recovery();
    assert!(rec.repaired_anything(), "the crash residue was repaired");
    assert_eq!(rec.records_dropped, 0, "committed records all survive");

    // The recovered corpus equals the in-memory merge of both batches,
    // and produces a byte-identical report.
    let estore = day1.estore.merged(&day2.estore);
    let video = day1.video.merged(&day2.video);
    assert_eq!(backend.estore(), &estore, "recovered E-store == merged");

    let targets = sample_targets(&day1, 40, 7);
    let config = RefineConfig::default();
    let memory = match_with_refinement(&estore, &video, &targets, &config);
    let disk = match_with_refinement_on(&backend, &targets, &config);
    assert_same_report(&disk, &memory);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
