//! **evmatch** — a reproduction of *EV-Matching: Bridging Large Visual
//! Data and Electronic Data for Efficient Surveillance* (ICDCS 2017).
//!
//! Surveillance produces two complementary big datasets: cheap
//! **electronic** identity captures (WiFi MACs, IMSIs) with coarse
//! positions, and expensive **visual** footage from which appearance
//! identities can be extracted. EV-Matching fuses them: given the EIDs of
//! interest, it finds the VID of the person carrying each device using
//! only their spatiotemporal co-occurrence — touching as little video as
//! possible.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ev-core` | identities, geometry, scenarios, partitions |
//! | [`telemetry`] | `ev-telemetry` | tracing spans, metrics registry, run profiles |
//! | [`mobility`] | `ev-mobility` | random-waypoint world simulation |
//! | [`sensing`] | `ev-sensing` | EID capture, drift, E-Scenario builders |
//! | [`vision`] | `ev-vision` | synthetic appearance, detection, re-id, costs |
//! | [`store`] | `ev-store` | scenario database and lazy video store |
//! | [`disk`] | `ev-disk` | persistent segmented corpus with crash-safe append |
//! | [`exec`] | `ev-exec` | zero-dependency work-stealing thread-pool executor |
//! | [`mapreduce`] | `ev-mapreduce` | the from-scratch MapReduce engine |
//! | [`matching`] | `ev-matching` | set splitting, VID filtering, EDP, Algorithm 3 |
//! | [`datagen`] | `ev-datagen` | end-to-end synthetic dataset generation |
//! | [`fusion`] | `ev-fusion` | fused E+V queries over matched identities |
//! | [`serve`] | (this crate) | streaming ingest service with live queries |
//!
//! # Quick start
//!
//! ```
//! use evmatch::prelude::*;
//!
//! // A small synthetic world (the paper uses 1000 people; see
//! // DatasetConfig::paper()).
//! let dataset = EvDataset::generate(&DatasetConfig {
//!     population: 60,
//!     duration: 150,
//!     ..DatasetConfig::default()
//! })
//! .unwrap();
//!
//! // Match 20 EIDs of interest simultaneously.
//! let targets = sample_targets(&dataset, 20, 42);
//! let matcher = EvMatcher::new(&dataset.estore, &dataset.video, MatcherConfig::default());
//! let report = matcher.match_many(&targets).unwrap();
//!
//! let stats = score_report(&dataset, &report);
//! assert!(stats.accuracy > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ev_core as core;
pub use ev_datagen as datagen;
pub use ev_disk as disk;
pub use ev_exec as exec;
pub use ev_fusion as fusion;
pub use ev_mapreduce as mapreduce;
pub use ev_matching as matching;
pub use ev_mobility as mobility;
pub use ev_sensing as sensing;
pub use ev_store as store;
pub use ev_telemetry as telemetry;
pub use ev_vision as vision;

pub mod serve;

/// The most common imports in one place.
pub mod prelude {
    pub use ev_core::{Eid, KernelMode, PersonId, Vid};
    pub use ev_datagen::{sample_targets, score_report, DatasetConfig, EvDataset};
    pub use ev_disk::{DiskBackend, DiskStore, RecoveryMode};
    pub use ev_fusion::FusedIndex;
    pub use ev_mapreduce::ClusterConfig;
    pub use ev_matching::matcher::ExecutionMode;
    pub use ev_matching::refine::SplitMode;
    pub use ev_matching::{
        AnytimeConfig, EvMatcher, MatchReport, MatcherConfig, PartialMatchOutcome,
    };
    pub use ev_store::{EScenarioStore, MemoryBackend, StoreBackend, VideoStore};
    pub use ev_telemetry::{Telemetry, TelemetryLevel};

    pub use crate::serve::{LiveCorpus, ServeAnswer, ServeConfig};
}
