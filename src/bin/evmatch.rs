//! `evmatch` — command-line front end for the EV-Matching reproduction.
//!
//! ```text
//! evmatch generate  [--population N] [--duration T] [--seed S]
//! evmatch match     [--population N] [--duration T] [--seed S]
//!                   [--targets K] [--mode ideal|practical] [--workers W]
//!                   [--json]
//! evmatch query     [--population N] [--duration T] [--seed S]
//!                   [--targets K] --eid HEX|--cell C --from T0 --to T1
//! ```
//!
//! Datasets are regenerated deterministically from their parameters, so
//! the CLI needs no dataset files: the same flags always rebuild the
//! same world.

use evmatch::fusion::FusedIndex;
use evmatch::matching::refine::SplitMode;
use evmatch::prelude::*;
use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug)]
struct CommonArgs {
    population: u64,
    duration: u64,
    seed: u64,
    targets: usize,
    mode: SplitMode,
    workers: Option<usize>,
    json: bool,
    rest: BTreeMap<String, String>,
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut out = CommonArgs {
        population: 300,
        duration: 400,
        seed: 42,
        targets: 50,
        mode: SplitMode::Practical,
        workers: None,
        json: false,
        rest: BTreeMap::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {arg} needs a value"))
        };
        match arg.as_str() {
            "--population" => out.population = take()?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => out.duration = take()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = take()?.parse().map_err(|e| format!("{e}"))?,
            "--targets" => out.targets = take()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => out.workers = Some(take()?.parse().map_err(|e| format!("{e}"))?),
            "--mode" => {
                out.mode = match take()?.as_str() {
                    "ideal" => SplitMode::Ideal,
                    "practical" => SplitMode::Practical,
                    other => return Err(format!("unknown mode {other}")),
                }
            }
            "--json" => out.json = true,
            other if other.starts_with("--") => {
                let key = other.trim_start_matches("--").to_string();
                out.rest.insert(key, take()?);
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(out)
}

fn build_dataset(args: &CommonArgs) -> Result<EvDataset, String> {
    let config = DatasetConfig {
        population: args.population,
        duration: args.duration,
        seed: args.seed,
        ..DatasetConfig::default()
    };
    EvDataset::generate(&config).map_err(|e| e.to_string())
}

fn cmd_generate(args: &CommonArgs) -> Result<(), String> {
    let dataset = build_dataset(args)?;
    if args.json {
        println!(
            "{}",
            serde_json::json!({
                "population": dataset.config.population,
                "duration": dataset.config.duration,
                "seed": dataset.config.seed,
                "cells": dataset.region.cell_count(),
                "density": dataset.config.density(),
                "e_scenarios": dataset.estore.len(),
                "e_records": dataset.estore.record_count(),
                "v_scenarios": dataset.video.len(),
                "carriers": dataset.roster.carrier_count(),
            })
        );
    } else {
        println!(
            "generated: {} people ({} carriers) over {} cells, {} ticks",
            dataset.config.population,
            dataset.roster.carrier_count(),
            dataset.region.cell_count(),
            dataset.config.duration,
        );
        println!(
            "E-data: {} scenarios, {} membership records",
            dataset.estore.len(),
            dataset.estore.record_count(),
        );
        println!("V-data: {} scenario footages", dataset.video.len());
    }
    Ok(())
}

fn run_match(args: &CommonArgs) -> Result<(EvDataset, MatchReport), String> {
    let dataset = build_dataset(args)?;
    let targets = sample_targets(&dataset, args.targets, args.seed);
    let execution = match args.workers {
        None => ExecutionMode::Sequential,
        Some(w) => ExecutionMode::Parallel(ClusterConfig {
            workers: w.max(1),
            reduce_partitions: w.max(1),
            ..ClusterConfig::default()
        }),
    };
    let config = MatcherConfig {
        mode: args.mode,
        execution,
        ..MatcherConfig::default()
    };
    let matcher = EvMatcher::new(&dataset.estore, &dataset.video, config);
    let report = matcher.match_many(&targets).map_err(|e| e.to_string())?;
    Ok((dataset, report))
}

fn cmd_match(args: &CommonArgs) -> Result<(), String> {
    let (dataset, report) = run_match(args)?;
    let stats = score_report(&dataset, &report);
    if args.json {
        println!(
            "{}",
            serde_json::json!({
                "matched": report.outcomes.len(),
                "selected_scenarios": report.selected_count(),
                "scenarios_per_eid": report.scenarios_per_eid(),
                "accuracy_pct": stats.percent(),
                "rounds": report.rounds,
                "e_secs": report.timings.e_stage.as_secs_f64(),
                "v_secs": report.timings.v_stage.as_secs_f64(),
                "outcomes": report
                    .outcomes
                    .iter()
                    .map(|o| serde_json::json!({
                        "eid": o.eid.to_string(),
                        "vid": o.vid.map(|v| v.as_u64()),
                        "vote_share": o.vote_share,
                    }))
                    .collect::<Vec<_>>(),
            })
        );
    } else {
        println!(
            "matched {} EIDs via {} scenarios ({:.2}/EID) in {} round(s)",
            report.outcomes.len(),
            report.selected_count(),
            report.scenarios_per_eid(),
            report.rounds,
        );
        println!(
            "accuracy {:.1}% | E {:.3}s V {:.3}s",
            stats.percent(),
            report.timings.e_stage.as_secs_f64(),
            report.timings.v_stage.as_secs_f64(),
        );
        for o in report.outcomes.iter().take(10) {
            println!(
                "  {} -> {}",
                o.eid,
                o.vid.map_or_else(|| "?".into(), |v| v.to_string())
            );
        }
        if report.outcomes.len() > 10 {
            println!("  ... ({} more)", report.outcomes.len() - 10);
        }
    }
    Ok(())
}

fn cmd_query(args: &CommonArgs) -> Result<(), String> {
    let (dataset, report) = run_match(args)?;
    let index = FusedIndex::build(&dataset.estore, &dataset.video, &report);

    if let Some(eid_text) = args.rest.get("eid") {
        let eid: Eid = eid_text
            .parse()
            .map_err(|e: evmatch::core::Error| e.to_string())?;
        match index.profile_by_eid(eid) {
            None => println!("{eid}: not matched (or not in the requested target set)"),
            Some(profile) => {
                println!(
                    "{eid} == {} (vote share {:.0}%)",
                    profile.identity.vid,
                    profile.identity.vote_share * 100.0,
                );
                println!(
                    "electronic trail: {} observations over {} cells",
                    profile.e_trail.len(),
                    profile.e_trail.cells_visited().len(),
                );
                println!(
                    "visual sightings in processed footage: {}",
                    profile.v_sightings.len()
                );
                for e in index.encounters(eid, 2).iter().take(5) {
                    println!(
                        "  frequent contact: {} ({} shared scenarios)",
                        e.eid, e.shared_scenarios
                    );
                }
            }
        }
        return Ok(());
    }

    if let Some(cell_text) = args.rest.get("cell") {
        let cell: usize = cell_text.parse().map_err(|e| format!("{e}"))?;
        let from: u64 = args
            .rest
            .get("from")
            .map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
        let to: u64 = args
            .rest
            .get("to")
            .map_or(Ok(args.duration), |v| v.parse().map_err(|e| format!("{e}")))?;
        let cells = [evmatch::core::region::CellId::new(cell)];
        let range = evmatch::core::time::TimeRange::new(
            evmatch::core::time::Timestamp::new(from),
            evmatch::core::time::Timestamp::new(to),
        );
        let present = index.present_at(&cells, range);
        println!(
            "{} matched identit(ies) present in cell#{cell} during [{from}, {to}):",
            present.len()
        );
        for identity in present {
            println!("  {} == {}", identity.eid, identity.vid);
        }
        return Ok(());
    }

    Err("query needs --eid HEX or --cell N [--from T0 --to T1]".into())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("usage: evmatch <generate|match|query> [flags]");
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("argument error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "match" => cmd_match(&args),
        "query" => cmd_query(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
