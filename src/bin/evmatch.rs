//! `evmatch` — command-line front end for the EV-Matching reproduction.
//!
//! ```text
//! evmatch generate  [--population N] [--duration T] [--seed S]
//! evmatch ingest    --data-dir DIR [--population N] [--duration T]
//!                   [--seed S] [--json]
//! evmatch serve     --data-dir DIR [--apply-every N]
//!                   [--checkpoint-every N] [--targets K]
//!                   [--serve-metrics ADDR] [--recovery strict|salvage]
//!                   [dataset + matcher flags as for match]
//! evmatch match     [--population N] [--duration T] [--seed S]
//!                   [--targets K] [--mode ideal|practical]
//!                   [--workers W | --threads N]
//!                   [--scheduler sharded|dag] [--universal]
//!                   [--kernel scalar|block|quantized]
//!                   [--confidence P] [--budget-scenarios N]
//!                   [--telemetry off|counters|full] [--trace-out PATH]
//!                   [--metrics-out PATH] [--json]
//!                   [--serve-metrics ADDR] [--serve-hold-ms MS]
//!                   [--flight-dir DIR]
//!                   [--data-dir DIR] [--recovery strict|salvage]
//! evmatch query     [--population N] [--duration T] [--seed S]
//!                   [--targets K] --eid HEX|--cell C --from T0 --to T1
//! evmatch check-metrics --in PATH | --smoke
//! evmatch check-anytime [--population N] [--duration T] [--seed S]
//!                   [--targets K] [--confidence P]
//! ```
//!
//! Datasets are regenerated deterministically from their parameters, so
//! the CLI needs no dataset files: the same flags always rebuild the
//! same world. `ingest` additionally persists the generated corpus into
//! an `ev-disk` segment directory, and `match`/`query` given
//! `--data-dir` load the corpus from that directory instead of from
//! memory — the matching pipeline and its report are identical either
//! way (ground truth for scoring still comes from the regenerated
//! dataset). A corpus interrupted mid-append is healed on open; pass
//! `--recovery salvage` to additionally keep the valid prefix of a
//! damaged (not merely torn) corpus.
//!
//! `serve` turns the same corpus into a long-running **streaming
//! service**: events arrive incrementally, queries run against a
//! consistent applied snapshot, and every answer reports its staleness
//! (see [`evmatch::serve`] and the stdin protocol on `cmd_serve`).
//!
//! `--workers W` runs the MapReduce pipeline (Algorithm 3);
//! `--threads N` runs the cell-sharded pipeline on `N` real threads of
//! the `ev-exec` work-stealing pool — its report is byte-identical for
//! every `N`, so the flag only changes wall time. The two flags are
//! mutually exclusive.
//!
//! `--scheduler` picks the thread pipeline `--threads` runs: `sharded`
//! (the default) barriers between phases, `dag` submits the whole job
//! — every splitting round plus VID filtering — as **one** stage DAG
//! to the lineage-tracking scheduler (`DESIGN.md` §11), so independent
//! rounds overlap and a lost worker recomputes only its lost
//! partitions. Both produce byte-identical reports. `--universal`
//! matches every EID present in the E-data instead of a sampled target
//! set; with `--scheduler dag` the whole universal matching job is a
//! single DAG submission.
//!
//! `--kernel` selects the similarity kernel of `DESIGN.md` §9 used to
//! score VID galleries: `scalar` is the per-pair reference, `block`
//! (the default) scores packed SoA gallery blocks, and `quantized`
//! additionally prunes rows with an 8-bit prefilter before exact
//! rescoring. All three produce byte-identical match reports — the
//! flag only changes wall time.
//!
//! `--metrics-out` implies the `counters` telemetry level and
//! `--trace-out` implies `full`; an explicit `--telemetry` wins over
//! both (so `--telemetry off` always runs the uninstrumented paths).
//! `check-metrics --in PATH` strictly parses an exported Prometheus
//! profile and verifies the Theorem 4.2/4.4 invariant
//! `log2(n) <= recorded <= n-1` whenever the run reported a fully split
//! first round. `check-metrics --smoke` instead runs an in-process
//! battery that exercises every subsystem **without** preregistering
//! the metric schema, then fails if any canonical name in
//! `ev_telemetry::names` was never emitted — the guard that keeps
//! `names.rs` and the instrumentation sites from drifting apart.
//!
//! `--serve-metrics ADDR` starts the live observability endpoint for
//! the duration of the run (`/metrics`, `/healthz`, `/tracez`; see
//! `DESIGN.md` §5). `--serve-hold-ms MS` keeps the process (and the
//! endpoint) alive that long after the run finishes so external
//! scrapers get a stable window. The flight recorder is always on for
//! CLI runs: on a worker panic, retry exhaustion, or detected disk
//! corruption, the ring of recent spans/instants/counter deltas is
//! dumped to `flight-<ts>-<n>.json` in `--flight-dir` (default `.`).
//!
//! `--confidence P` (`0 < P <= 1`) switches VID filtering to the
//! anytime scorer of `DESIGN.md` §8: scoring stops once the leader's
//! certified certainty reaches `P`. `--budget-scenarios N` caps exact
//! scoring to the first `N` scenarios per EID. `--confidence 1.0` with
//! no budget is the exact path, byte for byte. `check-anytime` runs the
//! anytime scorer against the exhaustive one on a generated corpus and
//! fails on any divergence a converged result is not allowed to show.

use ev_telemetry::{names, prometheus, MetricsServer, Telemetry, TelemetryLevel};
use evmatch::disk::{DiskBackend, DiskStore, RecoveryMode};
use evmatch::fusion::FusedIndex;
use evmatch::matching::refine::SplitMode;
use evmatch::prelude::*;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Which thread pipeline `--threads` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedulerKind {
    /// Phase-barriered cell-sharded pipeline (`crate::matching::sharded`).
    Sharded,
    /// One stage-DAG submission with lineage recovery
    /// (`crate::matching::dagflow`).
    Dag,
}

#[derive(Debug)]
struct CommonArgs {
    population: u64,
    duration: u64,
    seed: u64,
    targets: usize,
    mode: SplitMode,
    workers: Option<usize>,
    threads: Option<usize>,
    scheduler: Option<SchedulerKind>,
    universal: bool,
    confidence: Option<f64>,
    budget_scenarios: Option<usize>,
    kernel: KernelMode,
    json: bool,
    telemetry: Option<TelemetryLevel>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    data_dir: Option<String>,
    recovery: RecoveryMode,
    serve_metrics: Option<String>,
    serve_hold_ms: u64,
    flight_dir: Option<String>,
    smoke: bool,
    rest: BTreeMap<String, String>,
}

impl CommonArgs {
    /// The anytime config the flags ask for, if any. A plain
    /// `--confidence 1.0` still round-trips through the config so the
    /// delegation path (not the CLI) decides that it means "exact".
    fn anytime(&self) -> Option<AnytimeConfig> {
        if self.confidence.is_none() && self.budget_scenarios.is_none() {
            return None;
        }
        Some(AnytimeConfig {
            confidence: self.confidence.unwrap_or(1.0),
            budget_scenarios: self.budget_scenarios,
        })
    }

    /// The telemetry level in force: explicit `--telemetry` wins, else
    /// the strongest level an output flag implies, else off.
    /// `--serve-metrics` implies `full` so the live `/tracez` endpoint
    /// has spans to show (an explicit `--telemetry` still wins).
    fn telemetry_level(&self) -> TelemetryLevel {
        if let Some(level) = self.telemetry {
            return level;
        }
        if self.trace_out.is_some() || self.serve_metrics.is_some() {
            TelemetryLevel::Full
        } else if self.metrics_out.is_some() {
            TelemetryLevel::Counters
        } else {
            TelemetryLevel::Off
        }
    }

    /// Arms the always-on flight recorder for this invocation and
    /// points dumps at `--flight-dir` (default: the working directory).
    fn arm_flight_recorder(&self, telemetry: &Telemetry) {
        telemetry.flight().set_enabled(true);
        let dir = self.flight_dir.clone().unwrap_or_else(|| ".".to_string());
        telemetry.set_flight_dir(Some(dir.into()));
    }

    /// Starts the `--serve-metrics` endpoint if requested; the returned
    /// guard keeps it alive until dropped.
    fn start_metrics_server(&self, telemetry: &Telemetry) -> Result<Option<MetricsServer>, String> {
        let Some(addr) = &self.serve_metrics else {
            return Ok(None);
        };
        let server = MetricsServer::start(addr.as_str(), telemetry)
            .map_err(|e| format!("binding metrics endpoint {addr}: {e}"))?;
        eprintln!("serving metrics on http://{}/metrics", server.addr());
        Ok(Some(server))
    }

    /// Holds the process (and a live endpoint) open for
    /// `--serve-hold-ms` before the server guard drops.
    fn hold_metrics_server(&self, server: Option<MetricsServer>) {
        if server.is_some() && self.serve_hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.serve_hold_ms));
        }
        drop(server);
    }
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut out = CommonArgs {
        population: 300,
        duration: 400,
        seed: 42,
        targets: 50,
        mode: SplitMode::Practical,
        workers: None,
        threads: None,
        scheduler: None,
        universal: false,
        confidence: None,
        budget_scenarios: None,
        kernel: KernelMode::default(),
        json: false,
        telemetry: None,
        trace_out: None,
        metrics_out: None,
        data_dir: None,
        recovery: RecoveryMode::Strict,
        serve_metrics: None,
        serve_hold_ms: 0,
        flight_dir: None,
        smoke: false,
        rest: BTreeMap::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {arg} needs a value"))
        };
        match arg.as_str() {
            "--population" => out.population = take()?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => out.duration = take()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => out.seed = take()?.parse().map_err(|e| format!("{e}"))?,
            "--targets" => out.targets = take()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => out.workers = Some(take()?.parse().map_err(|e| format!("{e}"))?),
            "--threads" => out.threads = Some(take()?.parse().map_err(|e| format!("{e}"))?),
            "--scheduler" => {
                out.scheduler = Some(match take()?.as_str() {
                    "sharded" => SchedulerKind::Sharded,
                    "dag" => SchedulerKind::Dag,
                    other => return Err(format!("unknown scheduler {other} (sharded | dag)")),
                })
            }
            "--universal" => out.universal = true,
            "--confidence" => {
                let p: f64 = take()?.parse().map_err(|e| format!("{e}"))?;
                if !(p > 0.0 && p <= 1.0) {
                    return Err(format!("--confidence must be in (0, 1], got {p}"));
                }
                out.confidence = Some(p);
            }
            "--budget-scenarios" => {
                out.budget_scenarios = Some(take()?.parse().map_err(|e| format!("{e}"))?);
            }
            "--kernel" => out.kernel = take()?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => {
                out.mode = match take()?.as_str() {
                    "ideal" => SplitMode::Ideal,
                    "practical" => SplitMode::Practical,
                    other => return Err(format!("unknown mode {other}")),
                }
            }
            "--json" => out.json = true,
            "--telemetry" => out.telemetry = Some(take()?.parse()?),
            "--trace-out" => out.trace_out = Some(take()?),
            "--metrics-out" => out.metrics_out = Some(take()?),
            "--data-dir" => out.data_dir = Some(take()?),
            "--serve-metrics" => out.serve_metrics = Some(take()?),
            "--serve-hold-ms" => {
                out.serve_hold_ms = take()?.parse().map_err(|e| format!("{e}"))?;
            }
            "--flight-dir" => out.flight_dir = Some(take()?),
            "--smoke" => out.smoke = true,
            "--recovery" => {
                out.recovery = match take()?.as_str() {
                    "strict" => RecoveryMode::Strict,
                    "salvage" => RecoveryMode::Salvage,
                    other => return Err(format!("unknown recovery mode {other}")),
                }
            }
            other if other.starts_with("--") => {
                let key = other.trim_start_matches("--").to_string();
                out.rest.insert(key, take()?);
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(out)
}

fn build_dataset(args: &CommonArgs) -> Result<EvDataset, String> {
    let config = DatasetConfig {
        population: args.population,
        duration: args.duration,
        seed: args.seed,
        ..DatasetConfig::default()
    };
    EvDataset::generate(&config).map_err(|e| e.to_string())
}

fn cmd_generate(args: &CommonArgs) -> Result<(), String> {
    let dataset = build_dataset(args)?;
    if args.json {
        println!(
            "{}",
            serde_json::json!({
                "population": dataset.config.population,
                "duration": dataset.config.duration,
                "seed": dataset.config.seed,
                "cells": dataset.region.cell_count(),
                "density": dataset.config.density(),
                "e_scenarios": dataset.estore.len(),
                "e_records": dataset.estore.record_count(),
                "v_scenarios": dataset.video.len(),
                "carriers": dataset.roster.carrier_count(),
            })
        );
    } else {
        println!(
            "generated: {} people ({} carriers) over {} cells, {} ticks",
            dataset.config.population,
            dataset.roster.carrier_count(),
            dataset.region.cell_count(),
            dataset.config.duration,
        );
        println!(
            "E-data: {} scenarios, {} membership records",
            dataset.estore.len(),
            dataset.estore.record_count(),
        );
        println!("V-data: {} scenario footages", dataset.video.len());
    }
    Ok(())
}

/// The execution mode the `--workers` / `--threads` / `--scheduler`
/// flags select. `--scheduler dag` without `--threads` runs the DAG
/// pipeline single-threaded (the report is thread-count-invariant
/// anyway).
fn execution_mode(args: &CommonArgs) -> Result<ExecutionMode, String> {
    if args.scheduler.is_some() && args.workers.is_some() {
        return Err("--scheduler picks a --threads pipeline; it conflicts with --workers".into());
    }
    match (args.workers, args.threads) {
        (Some(_), Some(_)) => Err("--workers and --threads are mutually exclusive".into()),
        (None, Some(n)) => Ok(match args.scheduler {
            Some(SchedulerKind::Dag) => ExecutionMode::Dag(n.max(1)),
            _ => ExecutionMode::Sharded(n.max(1)),
        }),
        (Some(w), None) => Ok(ExecutionMode::Parallel(ClusterConfig {
            workers: w.max(1),
            reduce_partitions: w.max(1),
            ..ClusterConfig::default()
        })),
        (None, None) => Ok(match args.scheduler {
            Some(SchedulerKind::Dag) => ExecutionMode::Dag(1),
            Some(SchedulerKind::Sharded) => ExecutionMode::Sharded(1),
            None => ExecutionMode::Sequential,
        }),
    }
}

fn run_match(args: &CommonArgs) -> Result<(EvDataset, MatchReport), String> {
    let dataset = build_dataset(args)?;
    let targets = sample_targets(&dataset, args.targets, args.seed);
    let execution = execution_mode(args)?;
    let mut config = MatcherConfig {
        mode: args.mode,
        execution,
        ..MatcherConfig::default()
    };
    config.vfilter.anytime = args.anytime();
    config.vfilter.kernel = args.kernel;
    let telemetry = Telemetry::new(args.telemetry_level());
    if telemetry.counters_on() {
        names::preregister(telemetry.registry());
    }
    args.arm_flight_recorder(&telemetry);
    let server = args.start_metrics_server(&telemetry)?;
    // With --data-dir the corpus is read back from the persistent
    // segment store; the regenerated dataset still supplies targets,
    // the cost model and the scoring ground truth.
    let report = if let Some(dir) = &args.data_dir {
        let backend =
            DiskBackend::open_with(dir, dataset.video.cost_model(), args.recovery, &telemetry)
                .map_err(|e| {
                    if e.is_corruption() {
                        telemetry.dump_flight("disk_corruption");
                    }
                    format!("opening corpus {dir}: {e}")
                })?;
        if backend.recovery().repaired_anything() {
            eprintln!("recovered corpus {dir}: {:?}", backend.recovery());
        }
        let matcher = EvMatcher::from_backend(&backend, config).with_telemetry(&telemetry);
        let report = if args.universal {
            matcher.match_universal()
        } else {
            matcher.match_many(&targets)
        }
        .map_err(|e| e.to_string())?;
        if telemetry.counters_on() {
            telemetry
                .registry()
                .gauge(names::INDEX_BUILD_NS)
                .set(backend.estore().index().build_time().as_nanos() as f64);
        }
        report
    } else {
        let matcher =
            EvMatcher::new(&dataset.estore, &dataset.video, config).with_telemetry(&telemetry);
        let report = if args.universal {
            matcher.match_universal()
        } else {
            matcher.match_many(&targets)
        }
        .map_err(|e| e.to_string())?;
        if telemetry.counters_on() {
            telemetry
                .registry()
                .gauge(names::INDEX_BUILD_NS)
                .set(dataset.estore.index().build_time().as_nanos() as f64);
        }
        report
    };
    write_telemetry(args, &telemetry)?;
    args.hold_metrics_server(server);
    Ok((dataset, report))
}

/// `evmatch ingest`: generates the dataset the flags describe and
/// persists it into the `--data-dir` segment directory (created on
/// first use). Each invocation commits one E-segment and one V-segment,
/// so repeated ingests model daily corpus growth.
fn cmd_ingest(args: &CommonArgs) -> Result<(), String> {
    let dir = args
        .data_dir
        .as_ref()
        .ok_or("ingest needs --data-dir DIR")?;
    let dataset = build_dataset(args)?;
    let telemetry = Telemetry::new(args.telemetry_level());
    if telemetry.counters_on() {
        names::preregister(telemetry.registry());
    }
    args.arm_flight_recorder(&telemetry);
    let server = args.start_metrics_server(&telemetry)?;
    let mut store = DiskStore::open_or_create(dir)
        .map_err(|e| {
            if e.is_corruption() {
                telemetry.dump_flight("disk_corruption");
            }
            format!("opening corpus {dir}: {e}")
        })?
        .with_telemetry(&telemetry);
    if store.recovery().repaired_anything() {
        eprintln!("recovered corpus {dir}: {:?}", store.recovery());
    }
    let e_batch: Vec<_> = dataset.estore.iter().cloned().collect();
    let v_batch: Vec<_> = dataset.video.scenarios().cloned().collect();
    let receipt = store.append(&e_batch, &v_batch).map_err(|e| {
        if e.is_corruption() {
            telemetry.dump_flight("disk_corruption");
        }
        format!("appending to corpus {dir}: {e}")
    })?;
    write_telemetry(args, &telemetry)?;
    args.hold_metrics_server(server);
    if args.json {
        println!(
            "{}",
            serde_json::json!({
                "data_dir": dir.as_str(),
                "e_records": e_batch.len(),
                "v_records": v_batch.len(),
                "e_segment": receipt.e_segment.map(|s| s.file_name()),
                "v_segment": receipt.v_segment.map(|s| s.file_name()),
                "segments_total": store.segments().len(),
            })
        );
    } else {
        println!(
            "ingested {} E-records and {} V-records into {dir} ({} live segments)",
            e_batch.len(),
            v_batch.len(),
            store.segments().len(),
        );
    }
    Ok(())
}

/// `evmatch serve`: the long-running streaming ingest service of
/// `DESIGN.md` §10. Opens (or creates) a live corpus at `--data-dir`
/// and drives it with a stdin line protocol:
///
/// ```text
/// ingest N    stream the next N ticks of the generated world in
/// apply       publish staged events (checkpoint, splice, epoch bump)
/// query [K]   match the first K watch targets on the applied snapshot
/// stats       print epoch / staleness / store sizes
/// quit        final apply + checkpoint, then clean shutdown
/// ```
///
/// The event source is the deterministic dataset the flags describe,
/// replayed in time order from a cursor that resumes past whatever the
/// corpus already holds — so repeated serve sessions model a service
/// that is stopped and restarted mid-stream. The sampled targets double
/// as the live watch set, so the Algorithm-1 delta-update index is
/// maintained across applies. `--apply-every N` bounds staleness by
/// auto-applying after N staged events; `--checkpoint-every N` bounds
/// crash loss (see `ServeConfig`).
fn cmd_serve(args: &CommonArgs) -> Result<(), String> {
    use evmatch::core::scenario::{EScenario, VScenario};
    use evmatch::serve::{LiveCorpus, ServeConfig};
    use std::collections::BTreeSet;
    use std::io::BufRead;

    let dir = args.data_dir.as_ref().ok_or("serve needs --data-dir DIR")?;
    let apply_every: usize = args
        .rest
        .get("apply-every")
        .map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
    let checkpoint_every: u64 = args
        .rest
        .get("checkpoint-every")
        .map_or(Ok(1024), |v| v.parse().map_err(|e| format!("{e}")))?;

    let dataset = build_dataset(args)?;
    let targets = sample_targets(&dataset, args.targets, args.seed);

    let telemetry = Telemetry::new(args.telemetry_level());
    if telemetry.counters_on() {
        names::preregister(telemetry.registry());
    }
    args.arm_flight_recorder(&telemetry);
    let server = args.start_metrics_server(&telemetry)?;

    let mut config = ServeConfig {
        cost: dataset.video.cost_model(),
        apply_every,
        checkpoint_every,
        recovery: args.recovery,
        watch: targets.clone(),
        ..ServeConfig::default()
    };
    config.matcher.mode = args.mode;
    config.matcher.execution = execution_mode(args)?;
    config.matcher.vfilter.anytime = args.anytime();
    config.matcher.vfilter.kernel = args.kernel;

    let mut live = LiveCorpus::open(dir, config, &telemetry).map_err(|e| {
        telemetry.dump_flight("disk_corruption");
        format!("opening live corpus {dir}: {e}")
    })?;
    if live.disk().recovery().repaired_anything() {
        eprintln!("recovered corpus {dir}: {:?}", live.disk().recovery());
    }

    // The event source: the generated world's scenarios grouped by
    // tick, replayed from a cursor that starts past the applied data.
    let mut e_by_tick: BTreeMap<u64, Vec<EScenario>> = BTreeMap::new();
    for s in dataset.estore.iter() {
        e_by_tick
            .entry(s.time().tick())
            .or_default()
            .push(s.clone());
    }
    let mut v_by_tick: BTreeMap<u64, Vec<VScenario>> = BTreeMap::new();
    for s in dataset.video.scenarios() {
        v_by_tick
            .entry(s.time().tick())
            .or_default()
            .push(s.clone());
    }
    let mut cursor: u64 = live
        .estore()
        .iter()
        .last()
        .map_or(0, |s| s.time().tick() + 1);

    println!(
        "serve: corpus {dir} at epoch {} ({} E-scenarios applied, cursor at tick {cursor})",
        live.epoch(),
        live.estore().len(),
    );
    println!("serve: commands: ingest N | apply | query [K] | stats | quit");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        match cmd {
            "ingest" => {
                let n: u64 = parts
                    .next()
                    .map_or(Ok(1), |v| v.parse().map_err(|e| format!("{e}")))?;
                let mut accepted = 0u64;
                let mut applied = false;
                for _ in 0..n {
                    let e = e_by_tick.get(&cursor).cloned().unwrap_or_default();
                    let v = v_by_tick.get(&cursor).cloned().unwrap_or_default();
                    cursor += 1;
                    let receipt = live.ingest(e, v).map_err(|e| e.to_string())?;
                    accepted += receipt.accepted;
                    applied |= receipt.applied;
                }
                println!(
                    "ingested {accepted} events from {n} tick(s); cursor at tick {cursor}, \
                     staged {}, auto-applied: {applied}",
                    live.staged_events(),
                );
            }
            "apply" => {
                live.apply().map_err(|e| e.to_string())?;
                println!(
                    "applied: epoch {} ({} E-scenarios, {} V-footages visible)",
                    live.epoch(),
                    live.estore().len(),
                    live.video().len(),
                );
            }
            "query" => {
                let k: usize = parts
                    .next()
                    .map_or(Ok(args.targets), |v| v.parse().map_err(|e| format!("{e}")))?;
                let q: BTreeSet<Eid> = targets.iter().take(k.max(1)).copied().collect();
                let answer = live.query(&q).map_err(|e| e.to_string())?;
                let stats = score_report(&dataset, &answer.report);
                println!(
                    "query: {} EIDs at epoch {} (staleness {} events): {} scenarios selected, \
                     accuracy {:.1}%",
                    q.len(),
                    answer.epoch,
                    answer.staleness_events,
                    answer.report.selected_count(),
                    stats.percent(),
                );
            }
            "stats" => {
                println!(
                    "epoch {} | staged {} | applied E {} V {} | disk segments {}",
                    live.epoch(),
                    live.staged_events(),
                    live.estore().len(),
                    live.video().len(),
                    live.disk().segments().len(),
                );
            }
            "quit" => break,
            other => {
                println!("unknown command {other} (ingest N | apply | query [K] | stats | quit)");
            }
        }
    }

    let store = live.finish().map_err(|e| e.to_string())?;
    println!(
        "serve: shut down cleanly ({} committed segments)",
        store.segments().len()
    );
    write_telemetry(args, &telemetry)?;
    args.hold_metrics_server(server);
    Ok(())
}

/// Writes the run profile to the requested `--metrics-out` /
/// `--trace-out` paths.
fn write_telemetry(args: &CommonArgs, telemetry: &Telemetry) -> Result<(), String> {
    if let Some(path) = &args.metrics_out {
        let text = prometheus::render(&telemetry.registry().snapshot());
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &args.trace_out {
        let json = telemetry.tracer().chrome_trace_json();
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// Metrics that every exported `match` profile must contain.
const REQUIRED_METRICS: &[&str] = &[
    names::STAGE_E_SECONDS,
    names::STAGE_V_SECONDS,
    names::SETSPLIT_ROUNDS,
    names::SETSPLIT_RECORDED,
    names::RECORDED_SCENARIOS,
    names::THEOREM_LOWER_BOUND,
    names::THEOREM_UPPER_BOUND,
    names::FULLY_SPLIT,
    names::VFILTER_GALLERY_HIT_RATIO,
    names::MAPREDUCE_MAP_ATTEMPTS,
    names::MAPREDUCE_FAILED_ATTEMPTS,
];

/// `check-metrics --smoke`: runs an in-process battery that touches
/// every subsystem with **no** schema preregistration, then fails if
/// any canonical metric name was never emitted by real instrumentation.
/// This is what keeps `ev_telemetry::names` honest: a constant added
/// there without an emission site (or an emission site whose metric
/// name drifted from the constant) fails this gate.
fn smoke_coverage_gate(args: &CommonArgs) -> Result<(), String> {
    use evmatch::mapreduce::{FaultPlan, MapReduce};
    use std::collections::BTreeSet;

    fn absorb_into(seen: &mut BTreeSet<String>, tel: &Telemetry) {
        tel.sync_derived_metrics();
        let snap = tel.registry().snapshot();
        seen.extend(snap.counters.keys().cloned());
        seen.extend(snap.gauges.keys().cloned());
        seen.extend(snap.histograms.keys().cloned());
    }
    let mut seen: BTreeSet<String> = BTreeSet::new();

    let config = DatasetConfig {
        population: 80,
        duration: 100,
        seed: args.seed,
        ..DatasetConfig::default()
    };
    let dataset = EvDataset::generate(&config).map_err(|e| e.to_string())?;
    let targets = sample_targets(&dataset, 16, args.seed);

    // 1. Sequential ideal-mode run: set splitting (greedy-balanced, the
    //    only strategy that exercises the gain cache), refinement,
    //    exhaustive VID scoring, theorem bounds and the paper gauges.
    {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let mut cfg = MatcherConfig {
            mode: SplitMode::Ideal,
            ..MatcherConfig::default()
        };
        cfg.split.strategy = evmatch::matching::setsplit::SelectionStrategy::GreedyBalanced;
        EvMatcher::new(&dataset.estore, &dataset.video, cfg)
            .with_telemetry(&tel)
            .match_many(&targets)
            .map_err(|e| format!("smoke sequential run: {e}"))?;
        tel.registry()
            .gauge(names::INDEX_BUILD_NS)
            .set(dataset.estore.index().build_time().as_nanos() as f64);
        absorb_into(&mut seen, &tel);
    }

    // 1b. Sequential run with the anytime scorer: only the sequential
    //     refine loop routes telemetry into the bounded scorer, so the
    //     anytime pruning counters must be exercised here, not in the
    //     sharded run below.
    {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let mut cfg = MatcherConfig {
            mode: SplitMode::Ideal,
            ..MatcherConfig::default()
        };
        cfg.vfilter.anytime = Some(AnytimeConfig {
            confidence: 0.9,
            budget_scenarios: Some(3),
        });
        EvMatcher::new(&dataset.estore, &dataset.video, cfg)
            .with_telemetry(&tel)
            .match_many(&targets)
            .map_err(|e| format!("smoke anytime run: {e}"))?;
        absorb_into(&mut seen, &tel);
    }

    // 1c. Quantized-kernel scan over a hand-built corpus: one packed
    //     gallery whose far rows the 8-bit prefilter provably prunes
    //     (block-built + rows-pruned counters) and one dimension-mixed
    //     gallery the block build rejects (galleries-rejected counter).
    {
        use evmatch::core::feature::FeatureVector;
        use evmatch::core::region::CellId;
        use evmatch::core::scenario::{Detection, ScenarioId, VScenario};
        use evmatch::core::time::Timestamp;
        use evmatch::matching::vfilter::{self, GalleryCache, VFilterConfig};

        let tel = Telemetry::new(TelemetryLevel::Counters);
        let mut packed = VScenario::new(CellId::new(0), Timestamp::new(0));
        packed.push(Detection {
            vid: Vid::new(0),
            feature: FeatureVector::from_clamped(vec![0.9; 64]),
        });
        for p in 1..12u64 {
            packed.push(Detection {
                vid: Vid::new(p),
                feature: FeatureVector::from_clamped(vec![0.1; 64]),
            });
        }
        let mut mixed = VScenario::new(CellId::new(1), Timestamp::new(1));
        mixed.push(Detection {
            vid: Vid::new(0),
            feature: FeatureVector::from_clamped(vec![0.9; 64]),
        });
        mixed.push(Detection {
            vid: Vid::new(1),
            feature: FeatureVector::from_clamped(vec![0.5; 63]),
        });
        let video = VideoStore::new(
            vec![packed, mixed],
            evmatch::vision::cost::CostModel::free(),
        );
        let list = vec![
            ScenarioId::new(Timestamp::new(0), CellId::new(0)),
            ScenarioId::new(Timestamp::new(1), CellId::new(1)),
        ];
        let cfg = VFilterConfig {
            kernel: KernelMode::Quantized,
            ..VFilterConfig::default()
        };
        let out = vfilter::filter_one_instrumented(
            Eid::from_u64(1),
            &list,
            &video,
            &cfg,
            &std::collections::BTreeSet::new(),
            &mut GalleryCache::new(),
            &tel,
        );
        if out.is_no_evidence() {
            return Err("smoke quantized scan produced no evidence".into());
        }
        absorb_into(&mut seen, &tel);
        for name in [
            names::KERNEL_BLOCKS_BUILT,
            names::KERNEL_GALLERIES_REJECTED,
            names::KERNEL_PREFILTER_ROWS_PRUNED,
        ] {
            if !seen.contains(name) {
                return Err(format!("quantized smoke scan did not emit {name}"));
            }
        }
    }

    // 2. MapReduce run with injected failures, stragglers and
    //    speculation on real threads: engine, retry and exec metrics.
    {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let cfg = MatcherConfig {
            execution: ExecutionMode::Parallel(ClusterConfig {
                workers: 4,
                reduce_partitions: 4,
                split_size: 4,
                faults: FaultPlan {
                    task_failure_rate: 0.2,
                    straggler_rate: 0.3,
                    straggler_factor: 2,
                    speculative_execution: true,
                    max_attempts: 50,
                    seed: 11,
                },
                ..ClusterConfig::default()
            }),
            ..MatcherConfig::default()
        };
        EvMatcher::new(&dataset.estore, &dataset.video, cfg)
            .with_telemetry(&tel)
            .match_many(&targets)
            .map_err(|e| format!("smoke mapreduce run: {e}"))?;
        absorb_into(&mut seen, &tel);
    }

    // 3. Cell-sharded run with the anytime scorer: exec observer
    //    latency reservoir plus the anytime pruning counters.
    {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let mut cfg = MatcherConfig {
            execution: ExecutionMode::Sharded(4),
            ..MatcherConfig::default()
        };
        cfg.vfilter.anytime = Some(AnytimeConfig {
            confidence: 0.9,
            budget_scenarios: Some(3),
        });
        EvMatcher::new(&dataset.estore, &dataset.video, cfg)
            .with_telemetry(&tel)
            .match_many(&targets)
            .map_err(|e| format!("smoke sharded run: {e}"))?;
        absorb_into(&mut seen, &tel);
    }

    // 4. Tracer-ring overflow: a tiny ring forced to evict, mirrored
    //    into the drop counter by sync_derived_metrics.
    {
        let tel = Telemetry::with_trace_capacity(TelemetryLevel::Full, 8);
        for _ in 0..64 {
            tel.event("smoke_overflow", Vec::new());
        }
        absorb_into(&mut seen, &tel);
        if !seen.contains(names::TRACE_DROPPED) {
            return Err("tracer overflow did not emit the drop counter".into());
        }
    }

    let scratch = std::env::temp_dir().join(format!("evmatch-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("creating {scratch:?}: {e}"))?;
    let gate = (|| -> Result<(), String> {
        // 5. A flight-recorder dump: record real entries, dump, and
        //    strict-check the artifact round-trips as JSON.
        {
            let tel = Telemetry::new(TelemetryLevel::Counters);
            tel.flight().set_enabled(true);
            tel.set_flight_dir(Some(scratch.clone()));
            let ctx = ev_telemetry::TraceCtx::root();
            tel.flight().instant("smoke_probe", ctx, Vec::new());
            let path = tel
                .dump_flight("smoke")
                .ok_or("flight dump produced no file")?;
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{path:?}: {e}"))?;
            let dump: serde_json::Value =
                serde_json::from_str(&text).map_err(|e| format!("{path:?}: bad JSON: {e}"))?;
            if dump.get("reason") != Some(&serde_json::Value::Str("smoke".to_string())) {
                return Err(format!("{path:?}: dump reason missing or wrong"));
            }
            absorb_into(&mut seen, &tel);
        }

        // 6. Disk round-trip: one ingest, one recovering reopen+load.
        {
            let tel = Telemetry::new(TelemetryLevel::Counters);
            let dir = scratch.join("corpus");
            let dir = dir.to_string_lossy().into_owned();
            let mut store = DiskStore::open_or_create(&dir)
                .map_err(|e| format!("opening corpus {dir}: {e}"))?
                .with_telemetry(&tel);
            let e_batch: Vec<_> = dataset.estore.iter().cloned().collect();
            let v_batch: Vec<_> = dataset.video.scenarios().cloned().collect();
            store
                .append(&e_batch, &v_batch)
                .map_err(|e| format!("appending to corpus {dir}: {e}"))?;
            drop(store);
            let _reopened = DiskBackend::open_with(
                &dir,
                dataset.video.cost_model(),
                RecoveryMode::Salvage,
                &tel,
            )
            .map_err(|e| format!("reopening corpus {dir}: {e}"))?;
            absorb_into(&mut seen, &tel);
        }

        // 7. A flight dump triggered the engine-internal way: a job
        //    whose retry budget a 100% failure rate must exhaust.
        {
            let tel = Telemetry::new(TelemetryLevel::Counters);
            tel.flight().set_enabled(true);
            tel.set_flight_dir(Some(scratch.clone()));
            let before = tel
                .registry()
                .counter_value(names::FLIGHT_DUMPS)
                .unwrap_or(0);
            let engine = MapReduce::new(ClusterConfig {
                split_size: 1,
                faults: FaultPlan {
                    task_failure_rate: 0.95,
                    max_attempts: 2,
                    seed: 1,
                    ..FaultPlan::default()
                },
                ..ClusterConfig::default()
            })
            .with_telemetry(&tel);
            let failed = evmatch::matching::parallel::parallel_match(
                &engine,
                &dataset.estore,
                &dataset.video,
                &targets,
                &evmatch::matching::parallel::ParallelSplitConfig::default(),
                &evmatch::matching::vfilter::VFilterConfig::default(),
            );
            if failed.is_ok() {
                return Err("exhaustion probe unexpectedly succeeded".into());
            }
            let after = tel
                .registry()
                .counter_value(names::FLIGHT_DUMPS)
                .unwrap_or(0);
            if after <= before {
                return Err("retry exhaustion did not write a flight dump".into());
            }
            absorb_into(&mut seen, &tel);
        }

        // 8. Streaming serve loop: ingest half the world, apply, stage
        //    the rest, query stale then fresh — the serve-layer
        //    counters, staleness/epoch gauges, query-latency histogram
        //    and the Algorithm-1 delta-update (incr) metrics.
        {
            use evmatch::serve::{LiveCorpus, ServeConfig};
            let tel = Telemetry::new(TelemetryLevel::Counters);
            let dir = scratch.join("live");
            let mut live = LiveCorpus::open(
                &dir,
                ServeConfig {
                    watch: targets.clone(),
                    ..ServeConfig::default()
                },
                &tel,
            )
            .map_err(|e| format!("opening live corpus: {e}"))?;
            let mid = config.duration / 2;
            let slice = |from: u64, to: u64| {
                let es: Vec<_> = dataset
                    .estore
                    .iter()
                    .filter(|s| (from..to).contains(&s.time().tick()))
                    .cloned()
                    .collect();
                let vs: Vec<_> = dataset
                    .video
                    .scenarios()
                    .filter(|s| (from..to).contains(&s.time().tick()))
                    .cloned()
                    .collect();
                (es, vs)
            };
            let (es, vs) = slice(0, mid);
            live.ingest(es, vs)
                .map_err(|e| format!("serve ingest: {e}"))?;
            live.apply().map_err(|e| format!("serve apply: {e}"))?;
            let (es, vs) = slice(mid, config.duration);
            live.ingest(es, vs)
                .map_err(|e| format!("serve ingest: {e}"))?;
            let stale = live
                .query(&targets)
                .map_err(|e| format!("serve query: {e}"))?;
            if stale.staleness_events == 0 {
                return Err("staged serve query reported zero staleness".into());
            }
            live.apply().map_err(|e| format!("serve apply: {e}"))?;
            let fresh = live
                .query(&targets)
                .map_err(|e| format!("serve query: {e}"))?;
            if fresh.staleness_events != 0 || fresh.epoch != 2 {
                return Err(format!(
                    "applied serve query at wrong snapshot: epoch {} staleness {}",
                    fresh.epoch, fresh.staleness_events
                ));
            }
            live.finish().map_err(|e| format!("serve finish: {e}"))?;
            absorb_into(&mut seen, &tel);
        }

        // 9. The stage-DAG pipeline under injected worker loss *and*
        //    cache pressure, so every `evm_dag_*` metric carries a live
        //    value: retries from the panics, recomputes + evictions
        //    from the squeezed partition cache. The report must still
        //    be byte-identical to an unfaulted run.
        {
            use evmatch::mapreduce::DagConfig;
            use evmatch::matching::dagflow::dag_match;
            use evmatch::matching::parallel::ParallelSplitConfig;
            use evmatch::matching::vfilter::VFilterConfig;

            let tel = Telemetry::new(TelemetryLevel::Full);
            let split = ParallelSplitConfig {
                seed: args.seed,
                max_iterations: None,
            };
            let healthy = dag_match(
                &DagConfig::new(2),
                &dataset.estore,
                &dataset.video,
                &targets,
                &split,
                &VFilterConfig::default(),
                Telemetry::disabled(),
            )
            .map_err(|e| format!("smoke dag run: {e}"))?;
            let stressed = dag_match(
                &DagConfig {
                    max_attempts: 24,
                    cache_capacity: Some(2),
                    faults: FaultPlan {
                        task_failure_rate: 0.2,
                        seed: 7,
                        ..FaultPlan::default()
                    },
                    ..DagConfig::new(2)
                },
                &dataset.estore,
                &dataset.video,
                &targets,
                &split,
                &VFilterConfig::default(),
                &tel,
            )
            .map_err(|e| format!("smoke dag run (stressed): {e}"))?;
            if stressed.outcomes != healthy.outcomes || stressed.lists != healthy.lists {
                return Err("stressed dag run diverged from the healthy report".into());
            }
            let retries = tel
                .registry()
                .counter_value(names::DAG_TASK_RETRIES)
                .unwrap_or(0);
            if retries == 0 {
                return Err("dag smoke run injected faults but recorded no retries".into());
            }
            absorb_into(&mut seen, &tel);
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&scratch);
    gate?;

    let all_names = names::ALL_COUNTERS
        .iter()
        .chain(names::ALL_GAUGES)
        .chain(names::ALL_HISTOGRAMS);
    let missing: Vec<&str> = all_names
        .filter(|&&name| !seen.contains(name))
        .copied()
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "smoke battery never emitted {} canonical metric(s): {}",
            missing.len(),
            missing.join(", ")
        ));
    }
    let total = names::ALL_COUNTERS.len() + names::ALL_GAUGES.len() + names::ALL_HISTOGRAMS.len();
    println!("ok: smoke battery emitted all {total} canonical metrics");
    Ok(())
}

fn cmd_check_metrics(args: &CommonArgs) -> Result<(), String> {
    if args.smoke {
        return smoke_coverage_gate(args);
    }
    let path = args
        .rest
        .get("in")
        .ok_or("check-metrics needs --in PATH (or --smoke)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let exposition =
        prometheus::parse_exposition(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    for &name in REQUIRED_METRICS {
        if exposition.value(name).is_none() {
            return Err(format!("{path}: required metric {name} is missing"));
        }
    }
    let fully_split = exposition.value(names::FULLY_SPLIT).unwrap_or(0.0);
    if fully_split == 1.0 {
        let recorded = exposition.value(names::RECORDED_SCENARIOS).unwrap_or(0.0);
        let lower = exposition.value(names::THEOREM_LOWER_BOUND).unwrap_or(0.0);
        let upper = exposition.value(names::THEOREM_UPPER_BOUND).unwrap_or(0.0);
        if recorded < lower || recorded > upper {
            return Err(format!(
                "{path}: theorem bound violation: recorded {recorded} outside [{lower}, {upper}]"
            ));
        }
        println!(
            "ok: {} metrics, theorem bounds hold ({lower} <= {recorded} <= {upper})",
            REQUIRED_METRICS.len()
        );
    } else {
        println!(
            "ok: {} metrics present (first round not fully split; bounds not applicable)",
            REQUIRED_METRICS.len()
        );
    }
    Ok(())
}

/// `evmatch check-anytime`: certifies the anytime scorer against the
/// exhaustive one on a generated corpus. Three contracts are enforced
/// per EID (see `DESIGN.md` §8):
///
/// 1. a converged anytime result names the exact winner;
/// 2. the vote-share interval brackets the exact winner's share;
/// 3. `--confidence 1.0` (no budget) reproduces the exact
///    `MatchOutcome`s byte for byte.
fn cmd_check_anytime(args: &CommonArgs) -> Result<(), String> {
    use evmatch::matching::anytime::partial_filter_one;
    use evmatch::matching::vfilter::{filter_one, VFilterConfig};

    const EPS: f64 = 1e-12;
    let confidence = args.confidence.unwrap_or(0.95);
    let dataset = build_dataset(args)?;
    let targets = sample_targets(&dataset, args.targets, args.seed);
    let matcher = EvMatcher::new(&dataset.estore, &dataset.video, MatcherConfig::default());
    let report = matcher.match_many(&targets).map_err(|e| e.to_string())?;

    let exact_cfg = VFilterConfig::default();
    let anytime_cfg = VFilterConfig {
        anytime: Some(AnytimeConfig {
            confidence,
            budget_scenarios: args.budget_scenarios,
        }),
        ..VFilterConfig::default()
    };
    let none = std::collections::BTreeSet::new();
    let mut converged = 0usize;
    let mut scored = 0usize;
    let mut total = 0usize;
    for (eid, list) in &report.lists {
        let exact = filter_one(*eid, list, &dataset.video, &exact_cfg, &none);
        let partial = partial_filter_one(*eid, list, &dataset.video, &anytime_cfg, &none);
        if partial.converged {
            converged += 1;
            if partial.vid != exact.vid {
                return Err(format!(
                    "{eid}: converged on {:?} but the exact winner is {:?}",
                    partial.vid, exact.vid
                ));
            }
        }
        if partial.vote_share_low > exact.vote_share + EPS
            || partial.vote_share_high < exact.vote_share - EPS
        {
            return Err(format!(
                "{eid}: exact vote share {} escapes the certified interval [{}, {}]",
                exact.vote_share, partial.vote_share_low, partial.vote_share_high
            ));
        }
        scored += partial.scenarios_scored;
        total += partial.scenarios_total;
    }

    // Contract 3: full confidence must be the exact path, byte for byte.
    let mut full = MatcherConfig::default();
    full.vfilter.anytime = Some(AnytimeConfig::default());
    let routed = EvMatcher::new(&dataset.estore, &dataset.video, full)
        .match_many(&targets)
        .map_err(|e| e.to_string())?;
    if routed.outcomes != report.outcomes || routed.lists != report.lists {
        return Err("--confidence 1.0 diverged from the exact report".into());
    }

    println!(
        "ok: {} EIDs at confidence {confidence}: {converged} converged, \
         {scored}/{total} scenarios scored exactly, exact report reproduced at 1.0",
        report.lists.len(),
    );
    Ok(())
}

fn cmd_match(args: &CommonArgs) -> Result<(), String> {
    let (dataset, report) = run_match(args)?;
    let stats = score_report(&dataset, &report);
    if args.json {
        println!(
            "{}",
            serde_json::json!({
                "matched": report.outcomes.len(),
                "selected_scenarios": report.selected_count(),
                "scenarios_per_eid": report.scenarios_per_eid(),
                "accuracy_pct": stats.percent(),
                "rounds": report.rounds,
                "e_secs": report.timings.e_stage.as_secs_f64(),
                "v_secs": report.timings.v_stage.as_secs_f64(),
                "outcomes": report
                    .outcomes
                    .iter()
                    .map(|o| serde_json::json!({
                        "eid": o.eid.to_string(),
                        "vid": o.vid.map(|v| v.as_u64()),
                        "vote_share": o.vote_share,
                    }))
                    .collect::<Vec<_>>(),
            })
        );
    } else {
        println!(
            "matched {} EIDs via {} scenarios ({:.2}/EID) in {} round(s)",
            report.outcomes.len(),
            report.selected_count(),
            report.scenarios_per_eid(),
            report.rounds,
        );
        println!(
            "accuracy {:.1}% | E {:.3}s V {:.3}s",
            stats.percent(),
            report.timings.e_stage.as_secs_f64(),
            report.timings.v_stage.as_secs_f64(),
        );
        for o in report.outcomes.iter().take(10) {
            println!(
                "  {} -> {}",
                o.eid,
                o.vid.map_or_else(|| "?".into(), |v| v.to_string())
            );
        }
        if report.outcomes.len() > 10 {
            println!("  ... ({} more)", report.outcomes.len() - 10);
        }
    }
    Ok(())
}

fn cmd_query(args: &CommonArgs) -> Result<(), String> {
    let (dataset, report) = run_match(args)?;
    let index = FusedIndex::build(&dataset.estore, &dataset.video, &report);

    if let Some(eid_text) = args.rest.get("eid") {
        let eid: Eid = eid_text
            .parse()
            .map_err(|e: evmatch::core::Error| e.to_string())?;
        match index.profile_by_eid(eid) {
            None => println!("{eid}: not matched (or not in the requested target set)"),
            Some(profile) => {
                println!(
                    "{eid} == {} (vote share {:.0}%)",
                    profile.identity.vid,
                    profile.identity.vote_share * 100.0,
                );
                println!(
                    "electronic trail: {} observations over {} cells",
                    profile.e_trail.len(),
                    profile.e_trail.cells_visited().len(),
                );
                println!(
                    "visual sightings in processed footage: {}",
                    profile.v_sightings.len()
                );
                for e in index.encounters(eid, 2).iter().take(5) {
                    println!(
                        "  frequent contact: {} ({} shared scenarios)",
                        e.eid, e.shared_scenarios
                    );
                }
            }
        }
        return Ok(());
    }

    if let Some(cell_text) = args.rest.get("cell") {
        let cell: usize = cell_text.parse().map_err(|e| format!("{e}"))?;
        let from: u64 = args
            .rest
            .get("from")
            .map_or(Ok(0), |v| v.parse().map_err(|e| format!("{e}")))?;
        let to: u64 = args
            .rest
            .get("to")
            .map_or(Ok(args.duration), |v| v.parse().map_err(|e| format!("{e}")))?;
        let cells = [evmatch::core::region::CellId::new(cell)];
        let range = evmatch::core::time::TimeRange::new(
            evmatch::core::time::Timestamp::new(from),
            evmatch::core::time::Timestamp::new(to),
        );
        let present = index.present_at(&cells, range);
        println!(
            "{} matched identit(ies) present in cell#{cell} during [{from}, {to}):",
            present.len()
        );
        for identity in present {
            println!("  {} == {}", identity.eid, identity.vid);
        }
        return Ok(());
    }

    Err("query needs --eid HEX or --cell N [--from T0 --to T1]".into())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!(
            "usage: evmatch <generate|ingest|serve|match|query|check-metrics|check-anytime> [flags]"
        );
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("argument error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "ingest" => cmd_ingest(&args),
        "serve" => cmd_serve(&args),
        "match" => cmd_match(&args),
        "query" => cmd_query(&args),
        "check-metrics" => cmd_check_metrics(&args),
        "check-anytime" => cmd_check_anytime(&args),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
