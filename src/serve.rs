//! The streaming ingest service: a long-running live corpus that
//! accepts new E-captures and V-detections while answering match
//! queries with **bounded staleness**.
//!
//! # Model
//!
//! [`LiveCorpus`] owns three layers, updated strictly in this order:
//!
//! 1. **Durability** — an [`IngestWriter`] appends arriving events to
//!    open `ev-disk` segments. A *checkpoint* seals the open segments
//!    and commits them to the manifest; a crash loses at most the
//!    records staged since the last checkpoint (see `DESIGN.md` §10).
//! 2. **Visibility** — [`apply`](LiveCorpus::apply) first checkpoints
//!    the disk writer, then splices the staged events into the
//!    in-memory [`EScenarioStore`] / [`VideoStore`] and bumps the
//!    **epoch** counter. Data becomes query-visible only *after* it is
//!    durable, so a recovered corpus is never behind what a query ever
//!    observed.
//! 3. **Index maintenance** — when a *watch set* of EIDs is configured,
//!    an [`IncrementalSplit`] absorbs each applied batch via the
//!    Algorithm-1 delta-update instead of re-splitting from scratch.
//!
//! # Staleness
//!
//! Queries run against the last applied epoch — a consistent snapshot.
//! Events ingested but not yet applied are *staged*: they are counted
//! by the `evm_serve_staleness_events` gauge and reported in every
//! [`ServeAnswer`], so the staleness of an answer is always explicit
//! and bounded by [`ServeConfig::apply_every`]. A query's report is
//! byte-identical to one computed offline on the stores as of the
//! epoch it names (`tests/serve_snapshot.rs` certifies this).
//!
//! ```
//! use evmatch::prelude::*;
//! use evmatch::serve::{LiveCorpus, ServeConfig};
//!
//! let dir = std::env::temp_dir().join(format!("evm-serve-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! let dataset = EvDataset::generate(&DatasetConfig {
//!     population: 40,
//!     duration: 60,
//!     ..DatasetConfig::default()
//! })
//! .unwrap();
//! let targets = sample_targets(&dataset, 6, 42);
//!
//! let mut live = LiveCorpus::open(
//!     &dir,
//!     ServeConfig {
//!         watch: targets.clone(),
//!         ..ServeConfig::default()
//!     },
//!     Telemetry::disabled(),
//! )
//! .unwrap();
//!
//! // Stream the day in, a tick at a time.
//! for tick in 0..60 {
//!     let es: Vec<_> = dataset
//!         .estore
//!         .iter()
//!         .filter(|s| s.time().tick() == tick)
//!         .cloned()
//!         .collect();
//!     let vs: Vec<_> = dataset
//!         .video
//!         .scenarios()
//!         .filter(|s| s.time().tick() == tick)
//!         .cloned()
//!         .collect();
//!     live.ingest(es, vs).unwrap();
//! }
//! live.apply().unwrap();
//!
//! let answer = live.query(&targets).unwrap();
//! assert_eq!(answer.staleness_events, 0);
//! assert!(answer.epoch >= 1);
//! live.finish().unwrap();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

use ev_core::ids::Eid;
use ev_core::scenario::{EScenario, VScenario};
use ev_disk::{CheckpointPolicy, DiskError, DiskStore, IngestWriter, RecoveryMode, MANIFEST_FILE};
use ev_matching::incremental::IncrementalSplit;
use ev_matching::setsplit::{SelectionStrategy, SetSplitConfig, SplitOutput};
use ev_matching::{EvMatcher, MatchReport, MatcherConfig};
use ev_store::{EScenarioStore, VideoStore};
use ev_telemetry::{names, Telemetry};
use ev_vision::cost::CostModel;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// Configuration of a [`LiveCorpus`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cost model used when loading / extending the video store.
    pub cost: CostModel,
    /// Matcher configuration used to answer queries.
    pub matcher: MatcherConfig,
    /// Auto-apply after this many staged events (`0` = manual
    /// [`apply`](LiveCorpus::apply) only). This bounds query staleness:
    /// an answer can lag the ingest front by at most this many events.
    pub apply_every: usize,
    /// Durable-checkpoint threshold forwarded to the disk
    /// [`IngestWriter`] ([`CheckpointPolicy::records_per_checkpoint`];
    /// `0` = checkpoint only on apply). A crash loses at most this many
    /// records.
    pub checkpoint_every: u64,
    /// Recovery mode when opening an existing on-disk corpus.
    pub recovery: RecoveryMode,
    /// Optional watch set: EIDs whose set-splitting partition is
    /// maintained incrementally across applies (Algorithm-1 delta
    /// update). Empty = no live index.
    pub watch: BTreeSet<Eid>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cost: CostModel::default(),
            matcher: MatcherConfig::default(),
            apply_every: 0,
            checkpoint_every: 1024,
            recovery: RecoveryMode::Strict,
            watch: BTreeSet::new(),
        }
    }
}

/// Everything that can go wrong while serving: disk persistence errors
/// and (parallel-execution only) matcher engine errors.
#[derive(Debug)]
pub enum ServeError {
    /// The durability layer failed (write, fsync, manifest, recovery).
    Disk(DiskError),
    /// The matcher's execution engine rejected the query.
    Match(ev_mapreduce::JobError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Disk(e) => write!(f, "serve disk error: {e}"),
            ServeError::Match(e) => write!(f, "serve match error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Disk(e) => Some(e),
            ServeError::Match(e) => Some(e),
        }
    }
}

impl From<DiskError> for ServeError {
    fn from(e: DiskError) -> Self {
        ServeError::Disk(e)
    }
}

impl From<ev_mapreduce::JobError> for ServeError {
    fn from(e: ev_mapreduce::JobError) -> Self {
        ServeError::Match(e)
    }
}

/// Serve-layer result alias.
pub type ServeResult<T> = Result<T, ServeError>;

/// A match answer stamped with the snapshot it was computed on.
#[derive(Debug, Clone)]
pub struct ServeAnswer {
    /// The match report, byte-identical to an offline run over the
    /// stores as of `epoch`.
    pub report: MatchReport,
    /// The applied epoch this answer reflects.
    pub epoch: u64,
    /// Events ingested but not yet applied when the query ran — the
    /// answer's staleness bound.
    pub staleness_events: u64,
}

/// Receipt returned by [`LiveCorpus::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Events accepted by this call.
    pub accepted: u64,
    /// Events staged (ingested, not yet applied) after this call.
    pub staged_events: u64,
    /// Whether this call triggered an automatic apply
    /// ([`ServeConfig::apply_every`]).
    pub applied: bool,
}

/// A live, queryable corpus with streaming ingest.
///
/// See the [module docs](self) for the durability / visibility / index
/// layering and the staleness contract.
pub struct LiveCorpus<'t> {
    writer: IngestWriter,
    estore: EScenarioStore,
    video: VideoStore,
    staged_e: Vec<EScenario>,
    staged_v: Vec<VScenario>,
    epoch: u64,
    incr: Option<IncrementalSplit>,
    telemetry: &'t Telemetry,
    config: ServeConfig,
}

impl fmt::Debug for LiveCorpus<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveCorpus")
            .field("epoch", &self.epoch)
            .field("applied_e", &self.estore.len())
            .field("applied_v", &self.video.len())
            .field("staged_events", &self.staged_events())
            .field("watching", &self.config.watch.len())
            .finish()
    }
}

impl<'t> LiveCorpus<'t> {
    /// Opens (or creates) the on-disk corpus at `dir` and loads it into
    /// memory as epoch 0. Existing corpora are recovered under
    /// [`ServeConfig::recovery`] and a non-empty watch set is absorbed
    /// immediately, so the live index is warm before the first ingest.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disk`] on filesystem failures or damage the
    /// recovery mode does not permit healing.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ServeConfig,
        telemetry: &'t Telemetry,
    ) -> ServeResult<Self> {
        let dir = dir.as_ref();
        let store = if dir.join(MANIFEST_FILE).exists() {
            DiskStore::open_with(dir, config.recovery, telemetry)?
        } else {
            DiskStore::create(dir)?
        };
        let estore = store.load_estore()?;
        let video = store.load_video(config.cost)?;
        let incr = (!config.watch.is_empty()).then(|| {
            let mut live = IncrementalSplit::new(&config.watch, &watch_split_config(&config));
            live.absorb_instrumented(&estore, telemetry);
            live
        });
        let writer = IngestWriter::new(
            store,
            CheckpointPolicy {
                records_per_checkpoint: config.checkpoint_every,
            },
        );
        Ok(LiveCorpus {
            writer,
            estore,
            video,
            staged_e: Vec::new(),
            staged_v: Vec::new(),
            epoch: 0,
            incr: None,
            telemetry,
            config,
        }
        .with_incr(incr))
    }

    fn with_incr(mut self, incr: Option<IncrementalSplit>) -> Self {
        self.incr = incr;
        self
    }

    /// The applied epoch (bumped by every [`apply`](Self::apply)).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Events ingested but not yet applied — the current staleness of
    /// any answer returned by [`query`](Self::query).
    #[must_use]
    pub fn staged_events(&self) -> u64 {
        (self.staged_e.len() + self.staged_v.len()) as u64
    }

    /// The applied (query-visible) E-Scenario store.
    #[must_use]
    pub fn estore(&self) -> &EScenarioStore {
        &self.estore
    }

    /// The applied (query-visible) video store.
    #[must_use]
    pub fn video(&self) -> &VideoStore {
        &self.video
    }

    /// The underlying disk store (committed state only).
    #[must_use]
    pub fn disk(&self) -> &DiskStore {
        self.writer.store()
    }

    /// The live watch-set partition, padded into full scenario lists —
    /// `None` when no watch set is configured.
    #[must_use]
    pub fn watch_lists(&self) -> Option<SplitOutput> {
        self.incr.as_ref().map(|live| live.output(&self.estore))
    }

    /// Accepts a batch of arriving events: appends them to the open
    /// disk segments (durability layer) and stages them for the next
    /// [`apply`](Self::apply). Auto-applies when
    /// [`ServeConfig::apply_every`] is crossed.
    ///
    /// Events must not be older than already-applied data; within the
    /// stream, batches at the same tick merge by scenario id exactly
    /// like [`EScenarioStore::ingest`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Disk`] on append or checkpoint failure. Staged
    /// in-memory state is unchanged on error.
    pub fn ingest(
        &mut self,
        e_batch: Vec<EScenario>,
        v_batch: Vec<VScenario>,
    ) -> ServeResult<IngestReceipt> {
        let receipt = self.writer.push(&e_batch, &v_batch)?;
        if receipt.checkpoint.is_some() && self.telemetry.counters_on() {
            self.telemetry
                .registry()
                .counter(names::SERVE_CHECKPOINTS)
                .inc();
        }
        let accepted = receipt.appended;
        self.staged_e.extend(e_batch);
        self.staged_v.extend(v_batch);
        if self.telemetry.counters_on() {
            let reg = self.telemetry.registry();
            reg.counter(names::SERVE_INGEST_BATCHES).inc();
            reg.counter(names::SERVE_INGEST_EVENTS).add(accepted);
            reg.gauge(names::SERVE_STALENESS_EVENTS)
                .set(self.staged_events() as f64);
        }
        let applied =
            self.config.apply_every > 0 && self.staged_events() >= self.config.apply_every as u64;
        if applied {
            self.apply()?;
        }
        Ok(IngestReceipt {
            accepted,
            staged_events: self.staged_events(),
            applied,
        })
    }

    /// Publishes the staged events: checkpoints the disk writer
    /// (durable first), splices the events into the in-memory stores,
    /// delta-updates the watch-set index, and bumps the epoch.
    ///
    /// A no-op (no epoch bump) when nothing is staged.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disk`] on checkpoint failure; the staged events
    /// remain staged and *not* query-visible.
    pub fn apply(&mut self) -> ServeResult<()> {
        if self.staged_e.is_empty() && self.staged_v.is_empty() {
            return Ok(());
        }
        // Durability before visibility: a crash after this line can
        // only ever replay state that queries were allowed to see.
        let committed = self.writer.checkpoint()?;
        if !committed.is_empty() && self.telemetry.counters_on() {
            self.telemetry
                .registry()
                .counter(names::SERVE_CHECKPOINTS)
                .inc();
        }
        let stats = self.estore.ingest(std::mem::take(&mut self.staged_e));
        self.video.ingest(std::mem::take(&mut self.staged_v));
        if let Some(live) = &mut self.incr {
            if stats.rebuilt {
                // Out-of-order data forced a store rebuild; the delta
                // state no longer matches a chronological replay, so
                // re-absorb from scratch.
                *live =
                    IncrementalSplit::new(&self.config.watch, &watch_split_config(&self.config));
            }
            live.absorb_instrumented(&self.estore, self.telemetry);
        }
        self.epoch += 1;
        if self.telemetry.counters_on() {
            let reg = self.telemetry.registry();
            reg.counter(names::SERVE_APPLIES).inc();
            reg.gauge(names::SERVE_EPOCH).set(self.epoch as f64);
            reg.gauge(names::SERVE_STALENESS_EVENTS).set(0.0);
        }
        Ok(())
    }

    /// Answers a match query for `targets` on the current applied
    /// snapshot, routed through the full [`EvMatcher`] pipeline
    /// (sequential, parallel, or sharded per
    /// [`ServeConfig::matcher`]). The answer is stamped with the epoch
    /// it reflects and the number of staged (invisible) events.
    ///
    /// # Errors
    ///
    /// [`ServeError::Match`] only in parallel execution, when the
    /// engine rejects its configuration or exhausts retries.
    pub fn query(&self, targets: &BTreeSet<Eid>) -> ServeResult<ServeAnswer> {
        let started = Instant::now();
        let matcher = EvMatcher::new(&self.estore, &self.video, self.config.matcher.clone())
            .with_telemetry(self.telemetry);
        let report = matcher.match_many(targets)?;
        if self.telemetry.counters_on() {
            let reg = self.telemetry.registry();
            reg.counter(names::SERVE_QUERIES).inc();
            reg.histogram(names::SERVE_QUERY_LATENCY_NS)
                .record(started.elapsed().as_nanos() as u64);
        }
        Ok(ServeAnswer {
            report,
            epoch: self.epoch,
            staleness_events: self.staged_events(),
        })
    }

    /// Applies any staged events, then checkpoints and closes the disk
    /// writer, returning the store for batch use.
    ///
    /// # Errors
    ///
    /// As [`apply`](Self::apply).
    pub fn finish(mut self) -> ServeResult<DiskStore> {
        self.apply()?;
        Ok(self.writer.finish()?)
    }
}

/// The split configuration driving the watch-set index: the serve
/// layer's matcher settings with the strategy forced to
/// [`SelectionStrategy::Chronological`] — the only order under which
/// the Algorithm-1 delta update is exact (see
/// [`IncrementalSplit::new`]).
fn watch_split_config(config: &ServeConfig) -> SetSplitConfig {
    SetSplitConfig {
        strategy: SelectionStrategy::Chronological,
        ..config.matcher.split
    }
}
