//! Incremental ingestion: surveillance data arrives day by day; keep the
//! matches that are still confident and only work on what changed.
//!
//! Day 1 generates a world and matches a cohort. Day 2 appends a second
//! batch of scenarios (same people, later time range) and requests a few
//! additional EIDs; `update_matches` re-runs the pipeline only for the
//! new and previously ambiguous identities.
//!
//! ```text
//! cargo run --release --example incremental_ingest
//! ```

use evmatch::matching::incremental::update_matches;
use evmatch::matching::refine::RefineConfig;
use evmatch::prelude::*;

fn main() {
    // Day 1.
    let day1 = EvDataset::generate(&DatasetConfig {
        population: 200,
        duration: 300,
        seed: 42,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let cohort = sample_targets(&day1, 40, 1);
    let config = RefineConfig::default();
    let report1 = evmatch::matching::refine::match_with_refinement(
        &day1.estore,
        &day1.video,
        &cohort,
        &config,
    );
    let stats1 = score_report(&day1, &report1);
    println!(
        "day 1: matched {} EIDs, accuracy {:.1}%, {} scenarios extracted",
        report1.outcomes.len(),
        stats1.percent(),
        report1.selected_count(),
    );

    // Day 2: the same world keeps running (same seed family, later
    // window), and three more devices become of interest.
    let day2 = EvDataset::generate(&DatasetConfig {
        population: 200,
        duration: 300,
        seed: 43, // a fresh batch of movement
        ..DatasetConfig::default()
    })
    .expect("valid config");
    // Shift day-2 scenarios to a later time range by merging stores; ids
    // from different (time, cell) ranges never collide here because the
    // generator restarts time — in a deployment the ingest pipeline
    // carries real timestamps.
    let estore = day1.estore.merged(&day2.estore);
    let video = day1.video.merged(&day2.video);

    let mut extra = sample_targets(&day1, 43, 1);
    for eid in &cohort {
        extra.remove(eid);
    }
    println!("\nday 2: {} new EIDs requested", extra.len());

    let update = update_matches(&report1, &extra, &estore, &video, &config);
    println!(
        "kept {} confident matches untouched; re-ran {} EIDs",
        update.kept.len(),
        update.rematched.len(),
    );
    let stats2 = score_report(&day1, &update.report);
    println!(
        "combined report: {} EIDs, accuracy {:.1}%, {} total scenarios",
        update.report.outcomes.len(),
        stats2.percent(),
        update.report.selected_count(),
    );
    for eid in &update.rematched {
        let o = update.report.outcome_of(*eid).expect("present");
        println!(
            "  new: {} -> {}",
            eid,
            o.vid.map_or_else(|| "?".into(), |v| v.to_string())
        );
    }
}
