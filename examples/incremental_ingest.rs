//! Incremental ingestion over a persistent corpus: surveillance data
//! arrives day by day; persist each batch, survive a crash, and only
//! re-work what changed.
//!
//! Day 1 generates a world, persists it into an `ev-disk` segment
//! directory and matches a cohort. Day 2 appends a second batch of
//! scenarios (same people, later time range) and requests a few
//! additional EIDs. Then a crash mid-append is simulated by tearing the
//! manifest tail; reopening heals it, and `update_matches_on` re-runs
//! the pipeline against the recovered corpus only for the new and
//! previously ambiguous identities.
//!
//! ```text
//! cargo run --release --example incremental_ingest
//! ```

use evmatch::disk::{DiskBackend, DiskStore};
use evmatch::matching::incremental::update_matches_on;
use evmatch::matching::refine::{match_with_refinement_on, RefineConfig};
use evmatch::prelude::*;
use std::fs::OpenOptions;
use std::io::Write;

fn main() {
    let dir = std::env::temp_dir().join(format!("evmatch-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Day 1: generate, persist, match from the persisted corpus.
    let day1 = EvDataset::generate(&DatasetConfig {
        population: 200,
        duration: 300,
        seed: 42,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let mut store = DiskStore::create(&dir).expect("fresh corpus directory");
    let e1: Vec<_> = day1.estore.iter().cloned().collect();
    let v1: Vec<_> = day1.video.scenarios().cloned().collect();
    store.append(&e1, &v1).expect("durable day-1 append");
    println!(
        "day 1: persisted {} E-records / {} V-records into {}",
        e1.len(),
        v1.len(),
        dir.display(),
    );

    let cohort = sample_targets(&day1, 40, 1);
    let config = RefineConfig::default();
    let backend = DiskBackend::open(&dir, day1.video.cost_model()).expect("open day-1 corpus");
    let report1 = match_with_refinement_on(&backend, &cohort, &config);
    let stats1 = score_report(&day1, &report1);
    println!(
        "day 1: matched {} EIDs from disk, accuracy {:.1}%, {} scenarios extracted",
        report1.outcomes.len(),
        stats1.percent(),
        report1.selected_count(),
    );

    // Day 2: the same world keeps running (same seed family, a fresh
    // batch of movement), and three more devices become of interest.
    // Append the new batch to the same corpus; scenario ids from
    // different (time, cell) ranges never collide here because the
    // generator restarts time — in a deployment the ingest pipeline
    // carries real timestamps, and colliding snapshots are superseded
    // later-wins at load.
    let day2 = EvDataset::generate(&DatasetConfig {
        population: 200,
        duration: 300,
        seed: 43,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let mut store = DiskStore::open(&dir).expect("reopen corpus");
    let e2: Vec<_> = day2.estore.iter().cloned().collect();
    let v2: Vec<_> = day2.video.scenarios().cloned().collect();
    store.append(&e2, &v2).expect("durable day-2 append");
    drop(store);

    // Crash simulation: a third append dies midway through committing
    // its manifest entry — its segment file is fully on disk but the
    // entry naming it is only half written. That is byte-for-byte what
    // an interrupted `DiskStore::append` leaves behind: an uncommitted
    // orphan segment plus a torn manifest tail.
    let mut orphan = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(dir.join("seg-000099-e.seg"))
        .expect("orphan file");
    orphan.write_all(b"EVSG").expect("partial segment bytes");
    drop(orphan);
    let manifest = dir.join(evmatch::disk::MANIFEST_FILE);
    let mut f = OpenOptions::new()
        .append(true)
        .open(&manifest)
        .expect("open manifest");
    f.write_all(&[65, 0, 0, 0, 0xde, 0xad, 0xbe])
        .expect("half an entry frame");
    drop(f);
    println!("\ncrash simulated: manifest tail torn, orphan segment left behind");

    // Recovery is the open path: the torn tail is truncated, the orphan
    // removed, and every *committed* record survives.
    let backend = DiskBackend::open(&dir, day1.video.cost_model()).expect("recovering open");
    let rec = backend.recovery();
    println!(
        "recovered: {} entries kept, {} manifest bytes truncated, {} orphan(s) removed",
        rec.manifest_entries_kept, rec.manifest_bytes_truncated, rec.orphan_segments_removed,
    );

    let mut extra = sample_targets(&day1, 43, 1);
    for eid in &cohort {
        extra.remove(eid);
    }
    println!("\nday 2: {} new EIDs requested", extra.len());

    let update = update_matches_on(&report1, &extra, &backend, &config);
    println!(
        "kept {} confident matches untouched; re-ran {} EIDs",
        update.kept.len(),
        update.rematched.len(),
    );
    let stats2 = score_report(&day1, &update.report);
    println!(
        "combined report: {} EIDs, accuracy {:.1}%, {} total scenarios",
        update.report.outcomes.len(),
        stats2.percent(),
        update.report.selected_count(),
    );
    for eid in &update.rematched {
        let o = update.report.outcome_of(*eid).expect("present");
        println!(
            "  new: {} -> {}",
            eid,
            o.vid.map_or_else(|| "?".into(), |v| v.to_string())
        );
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
