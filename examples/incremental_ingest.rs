//! Incremental ingestion through the **live serve loop**: surveillance
//! data streams in tick by tick, queries run concurrently against a
//! consistent snapshot with explicit staleness, the process crashes
//! mid-stream, and a restarted service resumes from the applied state
//! with only the uncheckpointed tail to regret.
//!
//! Act 1 opens a [`LiveCorpus`] with a watched cohort and streams the
//! first half of the day in, querying mid-stream (stale) and after an
//! apply (fresh). Act 2 stages more events and then *drops* the corpus
//! without shutting down — exactly what a crash leaves behind: open
//! uncommitted segments. Act 3 reopens the directory, shows the
//! recovery report, replays the lost tail from the applied frontier and
//! finishes the day; the watched cohort's set-splitting partition was
//! maintained incrementally (Algorithm-1 delta updates) the whole way.
//!
//! ```text
//! cargo run --release --example incremental_ingest
//! ```

use evmatch::core::scenario::{EScenario, VScenario};
use evmatch::prelude::*;
use evmatch::serve::{LiveCorpus, ServeConfig};

/// The events of `d` whose tick falls in `[from, to)`.
fn slice(d: &EvDataset, from: u64, to: u64) -> (Vec<EScenario>, Vec<VScenario>) {
    let es = d
        .estore
        .iter()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    let vs = d
        .video
        .scenarios()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    (es, vs)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("evmatch-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The world whose sensors we are streaming from.
    let world = EvDataset::generate(&DatasetConfig {
        population: 200,
        duration: 300,
        seed: 42,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let cohort = sample_targets(&world, 40, 1);
    let config = || ServeConfig {
        cost: world.video.cost_model(),
        watch: cohort.clone(),
        // Manual applies (so the staleness is visible below) and
        // checkpoints only on apply, so the crash has a tail to lose.
        apply_every: 0,
        checkpoint_every: 0,
        ..ServeConfig::default()
    };

    // Act 1: stream the morning in, querying as it arrives.
    let mut live = LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("fresh corpus");
    let (e, v) = slice(&world, 0, 100);
    println!(
        "act 1: streaming ticks [0, 100) — {} events",
        e.len() + v.len()
    );
    live.ingest(e, v).expect("morning ingest");

    let stale = live.query(&cohort).expect("mid-stream query");
    println!(
        "  mid-stream query: epoch {} with {} events staged (invisible to this answer)",
        stale.epoch, stale.staleness_events,
    );
    live.apply().expect("publish the morning");
    let fresh = live.query(&cohort).expect("fresh query");
    let score = score_report(&world, &fresh.report);
    println!(
        "  applied: epoch {}, staleness {}, accuracy on the morning {:.1}%",
        fresh.epoch,
        fresh.staleness_events,
        score.percent(),
    );

    // Act 2: the afternoon starts arriving... and the process dies.
    // Staged-but-unapplied events were never checkpointed: their open
    // segments are uncommitted, so the crash will cost exactly them.
    let (e, v) = slice(&world, 100, 200);
    let at_risk = e.len() + v.len();
    live.ingest(e, v).expect("afternoon ingest");
    println!("\nact 2: crash with {at_risk} staged events never applied — dropping the corpus");
    drop(live); // no finish(): open segments are abandoned on disk

    // Act 3: restart. Recovery removes the orphaned open segments; the
    // applied morning survives to the byte.
    let mut live =
        LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("recovering open");
    let rec = *live.disk().recovery();
    println!(
        "act 3: recovered — {} entries kept, {} orphan segment(s) removed, {} records dropped",
        rec.manifest_entries_kept, rec.orphan_segments_removed, rec.records_dropped,
    );
    let resume = live
        .estore()
        .iter()
        .last()
        .map_or(0, |s| s.time().tick() + 1);
    println!("  applied frontier at tick {resume}; replaying the lost tail from there");

    // Replay from the frontier and finish the day. The watch index
    // absorbs each applied batch incrementally instead of re-splitting.
    let (e, v) = slice(&world, resume, 300);
    live.ingest(e, v).expect("replay + evening ingest");
    live.apply().expect("publish the rest");

    let final_answer = live.query(&cohort).expect("end-of-day query");
    let final_score = score_report(&world, &final_answer.report);
    let lists = live.watch_lists().expect("watched cohort");
    println!(
        "  end of day: epoch {}, accuracy {:.1}%, {} scenarios selected",
        final_answer.epoch,
        final_score.percent(),
        final_answer.report.selected_count(),
    );
    println!(
        "  live watch index: {} recorded splitters, fully split: {}",
        lists.recorded.len(),
        lists.fully_split(),
    );

    live.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
