//! Matching on an unreliable cluster: the MapReduce engine retries
//! injected task failures and launches speculative backups for
//! stragglers, and the matching results come out identical to a healthy
//! run (paper §V-A: "task failure recovery [is] managed by a master
//! machine").
//!
//! The flaky run carries a full-level [`Telemetry`] handle, so after it
//! finishes we can replay the engine's fault-recovery decisions as a
//! timeline of trace events.
//!
//! ```text
//! cargo run --release --example unreliable_cluster
//! ```

use ev_telemetry::{names, TraceEvent};
use evmatch::mapreduce::{ClusterConfig, FaultPlan, MapReduce};
use evmatch::matching::parallel::{parallel_match, ParallelSplitConfig};
use evmatch::matching::vfilter::VFilterConfig;
use evmatch::prelude::*;
use serde_json::Value;

/// Renders one instant event's args as `stage=map task=3 attempt=1`.
fn fmt_args(event: &TraceEvent) -> String {
    event
        .args
        .iter()
        .map(|(k, v)| match v {
            Value::Str(s) => format!("{k}={s}"),
            Value::Int(i) => format!("{k}={i}"),
            other => format!("{k}={other:?}"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let dataset = EvDataset::generate(&DatasetConfig {
        population: 150,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&dataset, 40, 9);

    let healthy = ClusterConfig {
        workers: 4,
        reduce_partitions: 4,
        split_size: 16,
        ..ClusterConfig::default()
    };
    let flaky = ClusterConfig {
        faults: FaultPlan {
            task_failure_rate: 0.25,
            straggler_rate: 0.2,
            straggler_factor: 6,
            speculative_execution: true,
            max_attempts: 20,
            seed: 99,
        },
        task_overhead_units: 20_000,
        ..healthy.clone()
    };

    let run = |name: &str, cluster: &ClusterConfig, telemetry: &Telemetry| {
        dataset.video.reset_usage();
        let engine = MapReduce::new(cluster.clone()).with_telemetry(telemetry);
        let report = parallel_match(
            &engine,
            &dataset.estore,
            &dataset.video,
            &targets,
            &ParallelSplitConfig::default(),
            &VFilterConfig::default(),
        )
        .expect("retries must absorb the injected failures");
        let stats = score_report(&dataset, &report);
        println!(
            "{name:>8}: accuracy {:.1}%, {} scenarios, E {:?} V {:?}",
            stats.percent(),
            report.selected_count(),
            report.timings.e_stage,
            report.timings.v_stage,
        );
        report
    };

    println!(
        "matching {} EIDs on a 4-worker simulated cluster...\n",
        targets.len()
    );
    let clean = run("healthy", &healthy, Telemetry::disabled());
    let tel = Telemetry::new(TelemetryLevel::Full);
    let noisy = run("flaky", &flaky, &tel);

    // Replay the engine's fault-recovery decisions, oldest first.
    let timeline: Vec<TraceEvent> = tel
        .tracer()
        .events()
        .into_iter()
        .filter(|e| {
            matches!(
                e.name.as_str(),
                "task_failed" | "retry_scheduled" | "straggler_detected" | "speculative_launched"
            )
        })
        .collect();
    println!("\nfault-recovery timeline ({} events):", timeline.len());
    for event in &timeline {
        println!(
            "  {:>9.3} ms  {:<21} {}",
            event.ts_us as f64 / 1000.0,
            event.name,
            fmt_args(event)
        );
    }
    let registry = tel.registry();
    let counter = |name| registry.counter_value(name).unwrap_or(0);
    println!(
        "attempts: {} map / {} failed / {} speculative",
        counter(names::MAPREDUCE_MAP_ATTEMPTS),
        counter(names::MAPREDUCE_FAILED_ATTEMPTS),
        counter(names::MAPREDUCE_SPECULATIVE_ATTEMPTS),
    );
    assert!(
        timeline.iter().any(|e| e.name == "retry_scheduled"),
        "a 25% failure rate must trigger at least one retry"
    );

    // Fault injection must not change what was computed — only how long
    // it took.
    let same = clean
        .outcomes
        .iter()
        .zip(&noisy.outcomes)
        .all(|(a, b)| a.eid == b.eid && a.vid == b.vid);
    println!("\nresults identical under 25% task failures + 20% stragglers: {same}");
    assert!(same, "fault tolerance must preserve results");
}
