//! Matching on an unreliable cluster: the MapReduce engine retries
//! injected task failures and launches speculative backups for
//! stragglers, and the matching results come out identical to a healthy
//! run (paper §V-A: "task failure recovery [is] managed by a master
//! machine").
//!
//! ```text
//! cargo run --release --example unreliable_cluster
//! ```

use evmatch::mapreduce::{ClusterConfig, FaultPlan, MapReduce};
use evmatch::matching::parallel::{parallel_match, ParallelSplitConfig};
use evmatch::matching::vfilter::VFilterConfig;
use evmatch::prelude::*;

fn main() {
    let dataset = EvDataset::generate(&DatasetConfig {
        population: 150,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&dataset, 40, 9);

    let healthy = ClusterConfig {
        workers: 4,
        reduce_partitions: 4,
        split_size: 16,
        ..ClusterConfig::default()
    };
    let flaky = ClusterConfig {
        faults: FaultPlan {
            task_failure_rate: 0.25,
            straggler_rate: 0.2,
            straggler_factor: 6,
            speculative_execution: true,
            max_attempts: 20,
            seed: 99,
        },
        task_overhead_units: 20_000,
        ..healthy.clone()
    };

    let run = |name: &str, cluster: &ClusterConfig| {
        dataset.video.reset_usage();
        let engine = MapReduce::new(cluster.clone());
        let report = parallel_match(
            &engine,
            &dataset.estore,
            &dataset.video,
            &targets,
            &ParallelSplitConfig::default(),
            &VFilterConfig::default(),
        )
        .expect("retries must absorb the injected failures");
        let stats = score_report(&dataset, &report);
        println!(
            "{name:>8}: accuracy {:.1}%, {} scenarios, E {:?} V {:?}",
            stats.percent(),
            report.selected_count(),
            report.timings.e_stage,
            report.timings.v_stage,
        );
        report
    };

    println!(
        "matching {} EIDs on a 4-worker simulated cluster...\n",
        targets.len()
    );
    let clean = run("healthy", &healthy);
    let noisy = run("flaky", &flaky);

    // Fault injection must not change what was computed — only how long
    // it took.
    let same = clean
        .outcomes
        .iter()
        .zip(&noisy.outcomes)
        .all(|(a, b)| a.eid == b.eid && a.vid == b.vid);
    println!("\nresults identical under 25% task failures + 20% stragglers: {same}");
    assert!(same, "fault tolerance must preserve results");
}
