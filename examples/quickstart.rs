//! Quick start: generate a synthetic EV world, match a handful of EIDs,
//! and inspect the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evmatch::prelude::*;

fn main() {
    // 1. A synthetic world: 200 people, ~7 minutes of footage over a
    //    10 x 10 grid of 100 m cells (paper §VI-A at reduced scale).
    let config = DatasetConfig {
        population: 200,
        duration: 400,
        ..DatasetConfig::default()
    };
    let dataset = EvDataset::generate(&config).expect("valid config");
    println!(
        "world: {} people, {} E-scenarios, {} V-scenarios over a {}-cell grid",
        config.population,
        dataset.estore.len(),
        dataset.video.len(),
        dataset.region.cell_count(),
    );

    // 2. Pick 30 electronic identities of interest.
    let targets = sample_targets(&dataset, 30, 7);
    println!("matching {} EIDs...", targets.len());

    // 3. Match them all at once with EID set splitting + VID filtering.
    let matcher = EvMatcher::new(&dataset.estore, &dataset.video, MatcherConfig::default());
    let report = matcher
        .match_many(&targets)
        .expect("sequential mode cannot fail");

    // 4. Inspect: how much video did we touch, and were we right?
    let stats = score_report(&dataset, &report);
    println!(
        "selected {} distinct scenarios ({:.2} per EID), {} refinement round(s)",
        report.selected_count(),
        report.scenarios_per_eid(),
        report.rounds,
    );
    println!(
        "accuracy {:.1}% ({} correct, {} wrong, {} unmatched)",
        stats.percent(),
        stats.correct,
        stats.wrong,
        stats.unmatched,
    );
    println!(
        "stage times: E = {:?}, V = {:?}",
        report.timings.e_stage, report.timings.v_stage,
    );

    // 5. Look at a few individual matches.
    for outcome in report.outcomes.iter().take(5) {
        let truth = dataset.true_vid(outcome.eid);
        println!(
            "  {} -> {}  (vote share {:.0}%, truth {})",
            outcome.eid,
            outcome
                .vid
                .map_or_else(|| "unmatched".to_string(), |v| v.to_string()),
            outcome.vote_share * 100.0,
            truth.map_or_else(|| "?".to_string(), |v| v.to_string()),
        );
    }
}
