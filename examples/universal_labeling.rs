//! Universal matching (paper §I): label *every* VID in the corpus with
//! its EID up front, so that future queries are plain index lookups —
//! "After universal labeling, it will be more efficient to do future
//! queries because all the EV raw data has been processed and indexed.
//! Note that the larger the matching size is, the less time it costs per
//! EID-VID pair."
//!
//! The example measures that per-pair economy directly: single matches
//! vs a 50-EID batch vs the universal run, then serves a fused E+V query
//! from the universal index.
//!
//! ```text
//! cargo run --release --example universal_labeling
//! ```

use evmatch::prelude::*;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let config = DatasetConfig {
        population: 250,
        duration: 400,
        ..DatasetConfig::default()
    };
    let dataset = EvDataset::generate(&config).expect("valid config");
    let matcher = EvMatcher::new(&dataset.estore, &dataset.video, MatcherConfig::default());

    // --- Elastic matching sizes: 1, 50, universal. ---
    let one = sample_targets(&dataset, 1, 3)
        .into_iter()
        .next()
        .expect("non-empty");
    dataset.video.reset_usage();
    let t = Instant::now();
    let single = matcher.match_one(one);
    println!(
        "single EID:   {:>4} scenarios, {:>8.1?} total ({:.1?} per pair)",
        single.selected_count(),
        t.elapsed(),
        t.elapsed(),
    );

    let batch = sample_targets(&dataset, 50, 3);
    dataset.video.reset_usage();
    let t = Instant::now();
    let multi = matcher
        .match_many(&batch)
        .expect("sequential mode cannot fail");
    println!(
        "50 EIDs:      {:>4} scenarios, {:>8.1?} total ({:.1?} per pair)",
        multi.selected_count(),
        t.elapsed(),
        t.elapsed() / 50,
    );

    dataset.video.reset_usage();
    let t = Instant::now();
    let universal = matcher
        .match_universal()
        .expect("sequential mode cannot fail");
    let n = universal.outcomes.len() as u32;
    println!(
        "universal:    {:>4} scenarios, {:>8.1?} total ({:.1?} per pair, {} EIDs)",
        universal.selected_count(),
        t.elapsed(),
        t.elapsed() / n.max(1),
        n,
    );

    let stats = score_report(&dataset, &universal);
    println!("universal labeling accuracy: {:.1}%", stats.percent());

    // --- The fused index: one query returns E and V info together. ---
    let index: BTreeMap<Eid, Vid> = universal
        .outcomes
        .iter()
        .filter_map(|o| o.vid.map(|v| (o.eid, v)))
        .collect();
    let query = one;
    println!("\nfused query for {query}:");
    match index.get(&query) {
        None => println!("  no visual identity on file"),
        Some(vid) => {
            println!("  visual identity: {vid}");
            // E-side: where the device was heard.
            let e_hits = dataset.estore.containing(query).count();
            println!("  electronic trail: {e_hits} scenario(s) heard the device");
            // V-side: where the person was filmed (within processed footage).
            let v_hits = universal
                .selected_scenarios
                .iter()
                .filter_map(|&id| dataset.video.extract(id))
                .filter(|v| v.contains(*vid))
                .count();
            println!("  visual trail: {v_hits} processed scenario(s) show the person");
        }
    }
}
