//! The paper's motivating scenario (§I): "a crime happened and the
//! police have the EIDs appearing around the crime scene when it
//! occurred. They want to figure out the activities of these EIDs'
//! holders in surveillance videos … in order to find the suspects."
//!
//! This example reconstructs that investigation end to end:
//! 1. find the E-Scenario covering the crime cell at the crime time;
//! 2. take every EID heard there as a person of interest;
//! 3. EV-match those EIDs to their visual identities;
//! 4. print each suspect's dossier — where else their VID was filmed.
//!
//! ```text
//! cargo run --release --example crime_scene
//! ```

use evmatch::core::scenario::ScenarioId;
use evmatch::core::time::Timestamp;
use evmatch::prelude::*;
use std::collections::BTreeSet;

fn main() {
    // The monitored city block.
    let config = DatasetConfig {
        population: 300,
        duration: 500,
        ..DatasetConfig::default()
    };
    let dataset = EvDataset::generate(&config).expect("valid config");

    // --- 1. The crime: cell #42, window starting at t=250. ---
    let crime_cell = evmatch::core::region::CellId::new(42);
    let crime_time = Timestamp::new(250);
    let crime_id = ScenarioId::new(crime_time, crime_cell);
    let Some(crime_scene) = dataset.estore.get(crime_id) else {
        println!("nobody was near {crime_cell} at {crime_time}; no E-data to go on");
        return;
    };

    // --- 2. Persons of interest: every EID heard at the scene. ---
    let suspects: BTreeSet<Eid> = crime_scene.eids().collect();
    println!(
        "crime at {crime_cell}, {crime_time}: {} device(s) heard nearby",
        suspects.len()
    );
    for eid in &suspects {
        println!("  person of interest: {eid}");
    }

    // --- 3. EV-match them to visual identities. ---
    let matcher = EvMatcher::new(&dataset.estore, &dataset.video, MatcherConfig::default());
    let report = matcher
        .match_many(&suspects)
        .expect("sequential mode cannot fail");
    println!(
        "\nmatched with {} scenario extractions instead of scanning all {} V-scenarios",
        report.selected_count(),
        dataset.video.len(),
    );

    // --- 4. Dossiers: where else was each suspect's VID filmed? ---
    for outcome in &report.outcomes {
        let Some(vid) = outcome.vid else {
            println!("\n{}: could not determine a visual identity", outcome.eid);
            continue;
        };
        let verdict = match dataset.true_vid(outcome.eid) {
            Some(truth) if truth == vid => "correct",
            Some(_) => "WRONG",
            None => "unverifiable",
        };
        println!(
            "\nsuspect {} == {vid} (vote share {:.0}%, {verdict})",
            outcome.eid,
            outcome.vote_share * 100.0
        );
        // Search the extracted footage for other sightings. Only the
        // scenarios already processed for matching are free to inspect;
        // a real deployment would now extract more as needed.
        let mut sightings = 0;
        for id in &report.selected_scenarios {
            if let Some(v) = dataset.video.extract(*id) {
                if v.contains(vid) && *id != crime_id {
                    if sightings < 4 {
                        println!("  also filmed at {} {}", id.cell, id.time);
                    }
                    sightings += 1;
                }
            }
        }
        println!("  {sightings} other sighting(s) in the processed footage");
    }

    let stats = score_report(&dataset, &report);
    println!(
        "\ninvestigation accuracy: {:.0}% of suspects matched to the right person",
        stats.percent()
    );
}
