//! The EV-Scenario abstraction (paper Definition 1).
//!
//! An **EV-Scenario** is a snapshot of the EID and VID sets appearing in a
//! specific spatial region (a grid cell) at a single time point — or, in
//! the practical setting, aggregated over a short time window. It is
//! comprised of an [`EScenario`] (EIDs only) and a [`VScenario`] (VIDs
//! only).
//!
//! E-Scenarios are cheap: they come straight from electronic capture logs.
//! V-Scenarios are expensive: extracting the VID set of a scenario means
//! running human detection and feature extraction over video. The entire
//! point of EID set splitting is to touch as few V-Scenarios as possible.

use crate::feature::FeatureVector;
use crate::ids::{Eid, Vid};
use crate::region::CellId;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one EV-Scenario: a (cell, timestamp) pair.
///
/// Scenario ids order by time first, then by cell, which matches how the
/// parallel splitting algorithm selects scenario batches (one random
/// timestamp per iteration, paper Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ScenarioId {
    /// The snapshot instant (or window start in the practical setting).
    pub time: Timestamp,
    /// The spatial cell.
    pub cell: CellId,
}

impl ScenarioId {
    /// Creates a scenario id.
    #[must_use]
    pub const fn new(time: Timestamp, cell: CellId) -> Self {
        ScenarioId { time, cell }
    }
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S({}, {})", self.time, self.cell)
    }
}

/// The zone attribute attached to an EID inside an E-Scenario
/// (paper §IV-C2): either confidently in the cell's interior, or in the
/// vague band along the border.
///
/// EIDs in the *exclusive* zone are simply absent from the scenario, so no
/// third variant is needed here (contrast with [`crate::region::Zone`],
/// which classifies arbitrary points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneAttr {
    /// The EID was observed firmly inside the cell.
    Inclusive,
    /// The EID was observed near the cell border; it may belong next door.
    Vague,
}

/// An E-Scenario: the set of EIDs heard in one cell at one time, each with
/// its zone attribute.
///
/// In the ideal setting every EID is [`ZoneAttr::Inclusive`]; the vague
/// attribute only appears under the practical drift model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EScenario {
    id: ScenarioId,
    eids: BTreeMap<Eid, ZoneAttr>,
}

impl EScenario {
    /// Creates an empty E-Scenario for `cell` at `time`.
    #[must_use]
    pub fn new(cell: CellId, time: Timestamp) -> Self {
        EScenario {
            id: ScenarioId::new(time, cell),
            eids: BTreeMap::new(),
        }
    }

    /// The scenario's identifier.
    #[must_use]
    pub fn id(&self) -> ScenarioId {
        self.id
    }

    /// The cell this scenario covers.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.id.cell
    }

    /// The snapshot instant.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        self.id.time
    }

    /// Adds (or re-attributes) an EID. Returns the previous attribute if
    /// the EID was already present.
    pub fn insert(&mut self, eid: Eid, attr: ZoneAttr) -> Option<ZoneAttr> {
        self.eids.insert(eid, attr)
    }

    /// Removes an EID, returning its attribute if it was present.
    pub fn remove(&mut self, eid: Eid) -> Option<ZoneAttr> {
        self.eids.remove(&eid)
    }

    /// Whether the EID appears in this scenario (in either zone).
    #[must_use]
    pub fn contains(&self, eid: Eid) -> bool {
        self.eids.contains_key(&eid)
    }

    /// The zone attribute of `eid`, if present.
    #[must_use]
    pub fn attr(&self, eid: Eid) -> Option<ZoneAttr> {
        self.eids.get(&eid).copied()
    }

    /// Whether the EID appears with the [`ZoneAttr::Inclusive`] attribute.
    #[must_use]
    pub fn contains_inclusive(&self, eid: Eid) -> bool {
        self.attr(eid) == Some(ZoneAttr::Inclusive)
    }

    /// Number of EIDs in the scenario.
    #[must_use]
    pub fn len(&self) -> usize {
        self.eids.len()
    }

    /// Whether the scenario holds no EIDs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.eids.is_empty()
    }

    /// Iterates over `(eid, attr)` pairs in EID order.
    pub fn iter(&self) -> impl Iterator<Item = (Eid, ZoneAttr)> + '_ {
        self.eids.iter().map(|(&e, &a)| (e, a))
    }

    /// Iterates over all EIDs in the scenario, in order.
    pub fn eids(&self) -> impl Iterator<Item = Eid> + '_ {
        self.eids.keys().copied()
    }

    /// Iterates over the EIDs with the inclusive attribute only.
    pub fn inclusive_eids(&self) -> impl Iterator<Item = Eid> + '_ {
        self.eids
            .iter()
            .filter(|(_, &a)| a == ZoneAttr::Inclusive)
            .map(|(&e, _)| e)
    }
}

/// One detected human figure in a V-Scenario: a VID handle together with
/// the appearance feature observed *in this scenario* (observations of the
/// same person differ across scenarios because of viewpoint and noise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The visual identity of the detected figure.
    pub vid: Vid,
    /// The appearance descriptor extracted from this scenario's frames.
    pub feature: FeatureVector,
}

/// A V-Scenario: the set of human figures detected in one cell's video at
/// one time, after (expensive) extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VScenario {
    id: ScenarioId,
    detections: Vec<Detection>,
}

impl VScenario {
    /// Creates an empty V-Scenario for `cell` at `time`.
    #[must_use]
    pub fn new(cell: CellId, time: Timestamp) -> Self {
        VScenario {
            id: ScenarioId::new(time, cell),
            detections: Vec::new(),
        }
    }

    /// The scenario's identifier.
    #[must_use]
    pub fn id(&self) -> ScenarioId {
        self.id
    }

    /// The cell this scenario covers.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.id.cell
    }

    /// The snapshot instant.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        self.id.time
    }

    /// Records a detection.
    pub fn push(&mut self, detection: Detection) {
        self.detections.push(detection);
    }

    /// The detections in this scenario.
    #[must_use]
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Whether a figure with the given VID was detected.
    #[must_use]
    pub fn contains(&self, vid: Vid) -> bool {
        self.detections.iter().any(|d| d.vid == vid)
    }

    /// Number of detections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// Whether no figures were detected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    /// Iterates over detected VIDs.
    pub fn vids(&self) -> impl Iterator<Item = Vid> + '_ {
        self.detections.iter().map(|d| d.vid)
    }
}

/// A full EV-Scenario: the E- and V-sides of the same (cell, time) snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvScenario {
    /// The electronic side.
    pub e: EScenario,
    /// The visual side.
    pub v: VScenario,
}

impl EvScenario {
    /// Pairs an E-Scenario with its corresponding V-Scenario.
    ///
    /// # Panics
    ///
    /// Panics if the two halves do not share the same scenario id — that
    /// pairing is a programming error, not a data condition.
    #[must_use]
    pub fn new(e: EScenario, v: VScenario) -> Self {
        assert_eq!(
            e.id(),
            v.id(),
            "E- and V-Scenario halves must describe the same (cell, time)"
        );
        EvScenario { e, v }
    }

    /// The shared scenario identifier.
    #[must_use]
    pub fn id(&self) -> ScenarioId {
        self.e.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc() -> EScenario {
        let mut s = EScenario::new(CellId::new(3), Timestamp::new(7));
        s.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
        s.insert(Eid::from_u64(2), ZoneAttr::Vague);
        s
    }

    #[test]
    fn scenario_id_orders_time_major() {
        let a = ScenarioId::new(Timestamp::new(1), CellId::new(9));
        let b = ScenarioId::new(Timestamp::new(2), CellId::new(0));
        assert!(a < b);
        let c = ScenarioId::new(Timestamp::new(1), CellId::new(10));
        assert!(a < c);
    }

    #[test]
    fn escenario_membership_and_attrs() {
        let s = esc();
        assert_eq!(s.len(), 2);
        assert!(s.contains(Eid::from_u64(1)));
        assert!(s.contains(Eid::from_u64(2)));
        assert!(!s.contains(Eid::from_u64(3)));
        assert!(s.contains_inclusive(Eid::from_u64(1)));
        assert!(!s.contains_inclusive(Eid::from_u64(2)));
        assert_eq!(s.attr(Eid::from_u64(2)), Some(ZoneAttr::Vague));
        assert_eq!(s.attr(Eid::from_u64(3)), None);
    }

    #[test]
    fn escenario_insert_returns_previous_attr() {
        let mut s = esc();
        let prev = s.insert(Eid::from_u64(2), ZoneAttr::Inclusive);
        assert_eq!(prev, Some(ZoneAttr::Vague));
        assert!(s.contains_inclusive(Eid::from_u64(2)));
        assert_eq!(s.len(), 2, "re-insert does not duplicate");
    }

    #[test]
    fn escenario_remove() {
        let mut s = esc();
        assert_eq!(s.remove(Eid::from_u64(1)), Some(ZoneAttr::Inclusive));
        assert_eq!(s.remove(Eid::from_u64(1)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn escenario_inclusive_iterator_filters() {
        let s = esc();
        let inc: Vec<Eid> = s.inclusive_eids().collect();
        assert_eq!(inc, vec![Eid::from_u64(1)]);
        let all: Vec<Eid> = s.eids().collect();
        assert_eq!(all, vec![Eid::from_u64(1), Eid::from_u64(2)]);
    }

    #[test]
    fn vscenario_detections() {
        let mut v = VScenario::new(CellId::new(3), Timestamp::new(7));
        assert!(v.is_empty());
        v.push(Detection {
            vid: Vid::new(4),
            feature: FeatureVector::new(vec![0.5, 0.5]).unwrap(),
        });
        assert_eq!(v.len(), 1);
        assert!(v.contains(Vid::new(4)));
        assert!(!v.contains(Vid::new(5)));
        assert_eq!(v.vids().collect::<Vec<_>>(), vec![Vid::new(4)]);
    }

    #[test]
    fn evscenario_pairs_matching_halves() {
        let e = esc();
        let v = VScenario::new(CellId::new(3), Timestamp::new(7));
        let ev = EvScenario::new(e, v);
        assert_eq!(ev.id(), ScenarioId::new(Timestamp::new(7), CellId::new(3)));
    }

    #[test]
    #[should_panic(expected = "same (cell, time)")]
    fn evscenario_rejects_mismatched_halves() {
        let e = esc();
        let v = VScenario::new(CellId::new(4), Timestamp::new(7));
        let _ = EvScenario::new(e, v);
    }

    #[test]
    fn scenario_display() {
        let id = ScenarioId::new(Timestamp::new(7), CellId::new(3));
        assert_eq!(id.to_string(), "S(t=7, cell#3)");
    }
}
