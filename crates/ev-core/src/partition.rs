//! Partition refinement over EID universes — the data structure behind EID
//! set splitting (paper §IV-B1).
//!
//! A group of EIDs that the algorithm cannot yet tell apart is an
//! *undistinguishable EID set*; the collection of all such sets is a
//! partition of the EID universe ([`EidPartition`]). One E-Scenario splits
//! every block into the EIDs that appear in the scenario and those that do
//! not (`SplitBy` in Algorithm 1). A scenario is **effective** when it
//! actually changes the partition.
//!
//! For the practical setting (drifting EIDs, paper §IV-C2), the analogous
//! structure is [`VagueCover`]: EIDs observed in a scenario's vague zone
//! are duplicated into *both* children of a split, so blocks may overlap
//! until an all-inclusive path distinguishes the EID, at which point its
//! tentative copies are pruned (mirroring the exclusion step in the proof
//! of Theorem 4.1).

use crate::ids::Eid;
use crate::scenario::{EScenario, ZoneAttr};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of splitting a partition (or cover) by one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitOutcome {
    /// Whether the scenario changed the structure (i.e. was *effective*
    /// and must be recorded per Algorithm 1).
    pub effective: bool,
    /// How many blocks were divided by this scenario.
    pub blocks_split: usize,
}

/// A partition of an EID universe into disjoint undistinguishable sets
/// (ideal setting).
///
/// # Examples
///
/// ```
/// use ev_core::partition::EidPartition;
/// use ev_core::Eid;
/// use std::collections::BTreeSet;
///
/// let eids: Vec<Eid> = (0..4).map(Eid::from_u64).collect();
/// let mut p = EidPartition::new(eids.iter().copied());
/// assert_eq!(p.block_count(), 1);
///
/// // Scenario containing EIDs 0 and 1 splits {0,1,2,3} into {0,1} | {2,3}.
/// let c: BTreeSet<Eid> = eids[..2].iter().copied().collect();
/// assert!(p.split_by(&c).effective);
/// assert_eq!(p.block_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EidPartition {
    /// Blocks, each a non-empty ordered set of EIDs. Indices are stable
    /// only between mutations.
    blocks: Vec<BTreeSet<Eid>>,
    /// Reverse index: which block each EID currently belongs to.
    membership: BTreeMap<Eid, usize>,
}

impl EidPartition {
    /// Creates the trivial partition `{U}` over the given universe.
    /// Duplicate EIDs in the input are collapsed. An empty universe yields
    /// a partition with zero blocks.
    #[must_use]
    pub fn new(universe: impl IntoIterator<Item = Eid>) -> Self {
        let set: BTreeSet<Eid> = universe.into_iter().collect();
        if set.is_empty() {
            return EidPartition {
                blocks: Vec::new(),
                membership: BTreeMap::new(),
            };
        }
        let membership = set.iter().map(|&e| (e, 0)).collect();
        EidPartition {
            blocks: vec![set],
            membership,
        }
    }

    /// Reassembles a partition from externally computed blocks (e.g. the
    /// merge step of the MapReduce set splitting, paper Algorithm 3).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidParameter`] if any block is empty or
    /// an EID appears in two blocks.
    pub fn from_blocks(blocks: impl IntoIterator<Item = BTreeSet<Eid>>) -> crate::Result<Self> {
        let blocks: Vec<BTreeSet<Eid>> = blocks.into_iter().collect();
        let mut membership = BTreeMap::new();
        for (i, block) in blocks.iter().enumerate() {
            if block.is_empty() {
                return Err(crate::Error::InvalidParameter {
                    name: "blocks",
                    reason: format!("block {i} is empty"),
                });
            }
            for &eid in block {
                if membership.insert(eid, i).is_some() {
                    return Err(crate::Error::InvalidParameter {
                        name: "blocks",
                        reason: format!("EID {eid} appears in more than one block"),
                    });
                }
            }
        }
        Ok(EidPartition { blocks, membership })
    }

    /// Number of EIDs in the universe.
    #[must_use]
    pub fn universe_len(&self) -> usize {
        self.membership.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// Number of blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether every block is a singleton — i.e. every EID has been
    /// distinguished from every other.
    #[must_use]
    pub fn is_fully_split(&self) -> bool {
        self.blocks.iter().all(|b| b.len() == 1)
    }

    /// The block containing `eid`, if the EID is part of the universe.
    #[must_use]
    pub fn block_of(&self, eid: Eid) -> Option<&BTreeSet<Eid>> {
        self.membership.get(&eid).map(|&i| &self.blocks[i])
    }

    /// Whether `eid` has been distinguished (is alone in its block).
    #[must_use]
    pub fn is_distinguished(&self, eid: Eid) -> bool {
        self.block_of(eid).is_some_and(|b| b.len() == 1)
    }

    /// Iterates over the blocks in unspecified order.
    pub fn blocks(&self) -> impl Iterator<Item = &BTreeSet<Eid>> {
        self.blocks.iter()
    }

    /// All EIDs that are already distinguished.
    pub fn distinguished(&self) -> impl Iterator<Item = Eid> + '_ {
        self.blocks
            .iter()
            .filter(|b| b.len() == 1)
            .filter_map(|b| b.first().copied())
    }

    /// Splits every block by the scenario EID set `c` (`SplitBy` of
    /// Algorithm 1): each block `A` becomes `A ∩ C` and `A \ C`, with empty
    /// halves discarded. EIDs in `c` that are not in the universe are
    /// ignored.
    ///
    /// Runs in `O(|c| log n + k)` where `k` is the total size of the
    /// affected blocks — it never touches blocks disjoint from `c`.
    pub fn split_by(&mut self, c: &BTreeSet<Eid>) -> SplitOutcome {
        // Group the scenario's EIDs by the block they currently live in.
        let mut hits: BTreeMap<usize, BTreeSet<Eid>> = BTreeMap::new();
        for &eid in c {
            if let Some(&b) = self.membership.get(&eid) {
                hits.entry(b).or_default().insert(eid);
            }
        }
        let mut blocks_split = 0;
        for (block_idx, inside) in hits {
            // A scenario that contains all (or none) of a block's EIDs
            // cannot split that block — skip it (paper's Remark).
            if inside.len() == self.blocks[block_idx].len() {
                continue;
            }
            debug_assert!(!inside.is_empty());
            // Shrink the existing block to `A \ C` and append `A ∩ C`.
            let block = &mut self.blocks[block_idx];
            for eid in &inside {
                block.remove(eid);
            }
            let new_idx = self.blocks.len();
            for &eid in &inside {
                self.membership.insert(eid, new_idx);
            }
            self.blocks.push(inside);
            blocks_split += 1;
        }
        SplitOutcome {
            effective: blocks_split > 0,
            blocks_split,
        }
    }

    /// Splits by the EIDs of an [`EScenario`] regardless of zone attribute
    /// (ideal-setting semantics).
    pub fn split_by_scenario(&mut self, scenario: &EScenario) -> SplitOutcome {
        let c: BTreeSet<Eid> = scenario.eids().collect();
        self.split_by(&c)
    }

    /// Removes an EID from the universe entirely (used by the refinement
    /// loop when an EID's match has been accepted). Its block shrinks; an
    /// emptied block is discarded.
    pub fn remove(&mut self, eid: Eid) -> bool {
        let Some(idx) = self.membership.remove(&eid) else {
            return false;
        };
        self.blocks[idx].remove(&eid);
        if self.blocks[idx].is_empty() {
            // Swap-remove the empty block and fix up the moved block's
            // membership entries.
            let last = self.blocks.len() - 1;
            self.blocks.swap(idx, last);
            self.blocks.pop();
            if idx < self.blocks.len() {
                for &moved in &self.blocks[idx] {
                    self.membership.insert(moved, idx);
                }
            }
        }
        true
    }

    /// Verifies the internal invariants: blocks are non-empty, pairwise
    /// disjoint, cover exactly the universe, and the reverse index agrees.
    /// Intended for tests and debug assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut seen = BTreeSet::new();
        for (i, block) in self.blocks.iter().enumerate() {
            if block.is_empty() {
                return false;
            }
            for &eid in block {
                if !seen.insert(eid) {
                    return false; // appears in two blocks
                }
                if self.membership.get(&eid) != Some(&i) {
                    return false; // reverse index disagrees
                }
            }
        }
        seen.len() == self.membership.len()
    }
}

/// An overlapping cover of the EID universe for the practical setting with
/// vague zones.
///
/// Splitting by a scenario sends scenario-inclusive EIDs to one child and
/// absent EIDs to the other, while EIDs observed in the scenario's vague
/// zone are duplicated into both (we cannot tell which side of the border
/// they are really on). Each copy carries a confidence flag: a copy is
/// *firm* when every placement along its path was inclusive, *tentative*
/// once any placement was vague. Any singleton block distinguishes its EID
/// (a tentative singleton just means its VID may be missing from some
/// selected V-Scenarios — the refinement loop copes); pruning then deletes
/// the EID's other copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VagueCover {
    /// Blocks: EID -> firmness (`true` = firm/inclusive path).
    blocks: Vec<BTreeMap<Eid, bool>>,
    universe: BTreeSet<Eid>,
}

impl VagueCover {
    /// Creates the trivial cover `{U}` with every EID firm.
    #[must_use]
    pub fn new(universe: impl IntoIterator<Item = Eid>) -> Self {
        let set: BTreeSet<Eid> = universe.into_iter().collect();
        if set.is_empty() {
            return VagueCover {
                blocks: Vec::new(),
                universe: set,
            };
        }
        let block = set.iter().map(|&e| (e, true)).collect();
        VagueCover {
            blocks: vec![block],
            universe: set,
        }
    }

    /// Number of EIDs in the universe.
    #[must_use]
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// Number of blocks in the cover.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over the blocks; each item maps EID to its firmness flag.
    pub fn blocks(&self) -> impl Iterator<Item = &BTreeMap<Eid, bool>> {
        self.blocks.iter()
    }

    /// Whether `eid` is distinguished: some block is exactly the singleton
    /// `{eid}`, meaning every other EID has been confidently ruled out of
    /// that block's scenario signature.
    ///
    /// A *tentative* singleton still distinguishes the EID — its VID may
    /// simply fail to show up in some of the selected V-Scenarios, which
    /// the matching-refining loop handles (paper §IV-C4).
    #[must_use]
    pub fn is_distinguished(&self, eid: Eid) -> bool {
        self.blocks
            .iter()
            .any(|b| b.len() == 1 && b.contains_key(&eid))
    }

    /// Whether `eid` is distinguished by a *firm* singleton: every
    /// placement on its path was inclusive, so its VID is expected in every
    /// selected V-Scenario.
    #[must_use]
    pub fn is_firmly_distinguished(&self, eid: Eid) -> bool {
        self.blocks
            .iter()
            .any(|b| b.len() == 1 && b.get(&eid) == Some(&true))
    }

    /// All currently distinguished EIDs, in order.
    #[must_use]
    pub fn distinguished(&self) -> BTreeSet<Eid> {
        self.blocks
            .iter()
            .filter(|b| b.len() == 1)
            .filter_map(|b| b.keys().next().copied())
            .collect()
    }

    /// Whether every EID of the universe is distinguished.
    #[must_use]
    pub fn is_fully_split(&self) -> bool {
        self.distinguished().len() == self.universe.len()
    }

    /// Splits every block by an [`EScenario`] with vague-zone semantics
    /// (paper §IV-C2 and the splitting rule in Theorem 4.3):
    ///
    /// * EIDs **inclusive** in the scenario go to the *in* child; the
    ///   placement is firm only if the EID was firm in the block too
    ///   ("inclusive in both the E-Scenario and the original node"),
    ///   tentative otherwise;
    /// * EIDs absent from the scenario keep their firmness in the *out*
    ///   child;
    /// * EIDs **vague** in the scenario are copied into *both* children as
    ///   tentative — electronic drift means they could be on either side.
    ///
    /// A block is only split when the scenario confidently discriminates —
    /// i.e. it has at least one inclusive member and at least one absent
    /// member in the block; otherwise the block is left untouched. Returns
    /// whether the scenario was effective anywhere.
    pub fn split_by_scenario(&mut self, scenario: &EScenario) -> SplitOutcome {
        let mut new_blocks: Vec<BTreeMap<Eid, bool>> = Vec::with_capacity(self.blocks.len());
        let mut blocks_split = 0;
        for block in self.blocks.drain(..) {
            let mut child_in: BTreeMap<Eid, bool> = BTreeMap::new();
            let mut child_out: BTreeMap<Eid, bool> = BTreeMap::new();
            let mut only_in = 0usize; // inclusive members (left side only)
            let mut only_out = 0usize; // absent members (right side only)
            for (&eid, &firm) in &block {
                match scenario.attr(eid) {
                    Some(ZoneAttr::Inclusive) => {
                        child_in.insert(eid, firm);
                        only_in += 1;
                    }
                    Some(ZoneAttr::Vague) => {
                        // Could be on either side of the border.
                        child_in.insert(eid, false);
                        child_out.insert(eid, false);
                    }
                    None => {
                        child_out.insert(eid, firm);
                        only_out += 1;
                    }
                }
            }
            if only_in > 0 && only_out > 0 {
                blocks_split += 1;
                new_blocks.push(child_in);
                new_blocks.push(child_out);
            } else {
                new_blocks.push(block);
            }
        }
        // Deduplicate identical blocks (vague duplication can converge).
        new_blocks.sort();
        new_blocks.dedup();
        self.blocks = new_blocks;
        SplitOutcome {
            effective: blocks_split > 0,
            blocks_split,
        }
    }

    /// Prunes a distinguished EID: removes it from every block except one
    /// singleton (a firm one if available), discarding blocks that empty
    /// out. Mirrors the exclusion-and-merge step in the proof of
    /// Theorem 4.1.
    pub fn prune_distinguished(&mut self, eid: Eid) -> bool {
        if !self.is_distinguished(eid) {
            return false;
        }
        let keep_firm = self.is_firmly_distinguished(eid);
        let mut kept_singleton = false;
        self.blocks.retain_mut(|b| {
            let is_keeper =
                b.len() == 1 && b.contains_key(&eid) && (!keep_firm || b.get(&eid) == Some(&true));
            if is_keeper {
                if kept_singleton {
                    return false; // duplicate singleton
                }
                kept_singleton = true;
                return true;
            }
            b.remove(&eid);
            !b.is_empty()
        });
        self.blocks.sort();
        self.blocks.dedup();
        true
    }

    /// Removes an EID from the cover entirely (accepted-match cleanup in
    /// the refinement loop).
    pub fn remove(&mut self, eid: Eid) -> bool {
        if !self.universe.remove(&eid) {
            return false;
        }
        self.blocks.retain_mut(|b| {
            b.remove(&eid);
            !b.is_empty()
        });
        self.blocks.sort();
        self.blocks.dedup();
        true
    }

    /// Verifies the cover invariants: non-empty blocks; every block EID is
    /// in the universe; every universe EID appears in at least one block.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut covered = BTreeSet::new();
        for block in &self.blocks {
            if block.is_empty() {
                return false;
            }
            for &eid in block.keys() {
                if !self.universe.contains(&eid) {
                    return false;
                }
                covered.insert(eid);
            }
        }
        covered == self.universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::CellId;
    use crate::time::Timestamp;

    fn eids(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    fn scenario(inclusive: &[u64], vague: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(0), Timestamp::ZERO);
        for &e in inclusive {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        for &e in vague {
            s.insert(Eid::from_u64(e), ZoneAttr::Vague);
        }
        s
    }

    #[test]
    fn trivial_partition_has_one_block() {
        let p = EidPartition::new(eids(0..5));
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.universe_len(), 5);
        assert!(!p.is_fully_split());
        assert!(p.check_invariants());
    }

    #[test]
    fn empty_universe_partition() {
        let p = EidPartition::new(std::iter::empty());
        assert_eq!(p.block_count(), 0);
        assert!(p.is_empty());
        assert!(p.is_fully_split(), "vacuously fully split");
        assert!(p.check_invariants());
    }

    #[test]
    fn from_blocks_validates_and_reassembles() {
        let p = EidPartition::from_blocks(vec![eids([0, 1]), eids([2])]).unwrap();
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.universe_len(), 3);
        assert!(p.is_distinguished(Eid::from_u64(2)));
        assert!(p.check_invariants());
        assert!(EidPartition::from_blocks(vec![eids([])]).is_err());
        assert!(
            EidPartition::from_blocks(vec![eids([0, 1]), eids([1])]).is_err(),
            "overlapping blocks rejected"
        );
        let empty = EidPartition::from_blocks(Vec::new()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicates_in_universe_collapse() {
        let p = EidPartition::new([1, 1, 2, 2].into_iter().map(Eid::from_u64));
        assert_eq!(p.universe_len(), 2);
    }

    #[test]
    fn split_divides_block_in_two() {
        let mut p = EidPartition::new(eids(0..4));
        let out = p.split_by(&eids([0, 1]));
        assert!(out.effective);
        assert_eq!(out.blocks_split, 1);
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.block_of(Eid::from_u64(0)), p.block_of(Eid::from_u64(1)));
        assert_ne!(p.block_of(Eid::from_u64(0)), p.block_of(Eid::from_u64(2)));
        assert!(p.check_invariants());
    }

    #[test]
    fn ineffective_scenarios_are_detected() {
        let mut p = EidPartition::new(eids(0..4));
        // Contains every EID -> no split.
        assert!(!p.split_by(&eids(0..4)).effective);
        // Contains none -> no split.
        assert!(!p.split_by(&eids(10..14)).effective);
        assert_eq!(p.block_count(), 1);
        assert!(p.check_invariants());
    }

    #[test]
    fn foreign_eids_in_scenario_are_ignored() {
        let mut p = EidPartition::new(eids(0..4));
        let out = p.split_by(&eids([2, 3, 99]));
        assert!(out.effective);
        assert_eq!(p.block_count(), 2);
        assert!(p.block_of(Eid::from_u64(99)).is_none());
        assert!(p.check_invariants());
    }

    #[test]
    fn one_scenario_can_split_several_blocks() {
        let mut p = EidPartition::new(eids(0..8));
        p.split_by(&eids(0..4)); // {0..3} | {4..7}
        let out = p.split_by(&eids([0, 1, 4, 5]));
        assert_eq!(out.blocks_split, 2);
        assert_eq!(p.block_count(), 4);
        assert!(p.check_invariants());
    }

    #[test]
    fn full_split_reached_with_log_n_scenarios_in_the_best_case() {
        // Theorem 4.2 lower bound: binary-code scenarios distinguish
        // 8 EIDs with exactly 3 scenarios.
        let mut p = EidPartition::new(eids(0..8));
        for bit in 0..3 {
            let c: BTreeSet<Eid> = (0u64..8)
                .filter(|e| (e >> bit) & 1 == 1)
                .map(Eid::from_u64)
                .collect();
            assert!(p.split_by(&c).effective);
        }
        assert!(p.is_fully_split());
        assert_eq!(p.block_count(), 8);
        for e in 0..8 {
            assert!(p.is_distinguished(Eid::from_u64(e)));
        }
    }

    #[test]
    fn upper_bound_each_effective_split_adds_at_least_one_block() {
        // Theorem 4.2 upper bound: n-1 effective scenarios always suffice.
        let mut p = EidPartition::new(eids(0..6));
        let mut effective = 0;
        // Singleton scenarios: worst-case one new block per scenario.
        for e in 0..6 {
            if p.split_by(&eids([e])).effective {
                effective += 1;
            }
        }
        assert!(p.is_fully_split());
        assert!(effective <= 5, "n-1 = 5 effective scenarios suffice");
    }

    #[test]
    fn distinguished_iterator_reports_singletons() {
        let mut p = EidPartition::new(eids(0..3));
        p.split_by(&eids([0]));
        let d: Vec<Eid> = p.distinguished().collect();
        assert_eq!(d, vec![Eid::from_u64(0)]);
    }

    #[test]
    fn remove_shrinks_universe_and_blocks() {
        let mut p = EidPartition::new(eids(0..4));
        p.split_by(&eids([0, 1]));
        assert!(p.remove(Eid::from_u64(0)));
        assert!(!p.remove(Eid::from_u64(0)), "double remove is a no-op");
        assert_eq!(p.universe_len(), 3);
        assert!(p.is_distinguished(Eid::from_u64(1)));
        assert!(p.check_invariants());
        // Removing the last element of a block drops the block.
        assert!(p.remove(Eid::from_u64(1)));
        assert_eq!(p.block_count(), 1);
        assert!(p.check_invariants());
    }

    #[test]
    fn split_by_scenario_uses_all_eids() {
        let mut p = EidPartition::new(eids(0..4));
        let s = scenario(&[0], &[1]);
        assert!(p.split_by_scenario(&s).effective);
        // Ideal semantics ignore the vague attribute: {0,1} | {2,3}.
        assert_eq!(p.block_of(Eid::from_u64(0)), p.block_of(Eid::from_u64(1)));
    }

    // ---- VagueCover ----

    #[test]
    fn vague_cover_initial_state() {
        let c = VagueCover::new(eids(0..4));
        assert_eq!(c.block_count(), 1);
        assert_eq!(c.universe_len(), 4);
        assert!(!c.is_fully_split());
        assert!(c.check_invariants());
    }

    #[test]
    fn all_inclusive_split_behaves_like_partition() {
        let mut c = VagueCover::new(eids(0..4));
        let out = c.split_by_scenario(&scenario(&[0, 1], &[]));
        assert!(out.effective);
        assert_eq!(c.block_count(), 2);
        assert!(c.check_invariants());
    }

    #[test]
    fn vague_eids_are_duplicated_into_both_children() {
        let mut c = VagueCover::new(eids(0..4));
        // EID 1 is vague: the split must keep it on both sides.
        c.split_by_scenario(&scenario(&[0], &[1]));
        let containing: usize = c
            .blocks()
            .filter(|b| b.contains_key(&Eid::from_u64(1)))
            .count();
        assert_eq!(containing, 2);
        // And its copies are tentative.
        for b in c.blocks() {
            if let Some(&firm) = b.get(&Eid::from_u64(1)) {
                assert!(!firm);
            }
        }
        assert!(c.check_invariants());
    }

    #[test]
    fn drifted_eid_resolves_through_later_confident_scenarios() {
        let mut c = VagueCover::new(eids(0..3));
        // EID 1 drifts (vague); 0 is confidently in, 2 confidently out.
        c.split_by_scenario(&scenario(&[0], &[1]));
        // Blocks: {0 firm, 1 tent} | {1 tent, 2 firm}. Nobody is alone yet.
        assert!(!c.is_distinguished(Eid::from_u64(0)));
        assert!(!c.is_distinguished(Eid::from_u64(1)));
        // A later scenario observes 1 confidently: every copy of 1 follows
        // it into the in-child and the copies deduplicate.
        c.split_by_scenario(&scenario(&[1], &[]));
        assert!(c.is_fully_split());
        assert!(c.is_distinguished(Eid::from_u64(1)));
        assert!(
            !c.is_firmly_distinguished(Eid::from_u64(1)),
            "1's path went through a vague placement"
        );
        assert!(c.is_firmly_distinguished(Eid::from_u64(0)));
        assert!(c.is_firmly_distinguished(Eid::from_u64(2)));
    }

    #[test]
    fn split_without_firm_discrimination_is_ineffective() {
        let mut c = VagueCover::new(eids(0..2));
        // Everyone vague: nothing firm on either side -> skip.
        let out = c.split_by_scenario(&scenario(&[], &[0, 1]));
        assert!(!out.effective);
        assert_eq!(c.block_count(), 1);
        // Everyone inclusive -> out-child has no firm EID -> skip.
        let out = c.split_by_scenario(&scenario(&[0, 1], &[]));
        assert!(!out.effective);
        assert!(c.check_invariants());
    }

    #[test]
    fn prune_removes_tentative_copies() {
        let mut c = VagueCover::new(eids(0..3));
        c.split_by_scenario(&scenario(&[0], &[2])); // {0,2?} | {1,2?}
        c.split_by_scenario(&scenario(&[2], &[])); // distinguishes 2 firmly
        assert!(c.is_distinguished(Eid::from_u64(2)));
        assert!(c.prune_distinguished(Eid::from_u64(2)));
        // After pruning, 2 appears only in its firm singleton.
        let containing: usize = c
            .blocks()
            .filter(|b| b.contains_key(&Eid::from_u64(2)))
            .count();
        assert_eq!(containing, 1);
        assert!(c.check_invariants());
        let mut fresh = VagueCover::new(eids(0..3));
        assert!(
            !fresh.prune_distinguished(Eid::from_u64(0)),
            "nothing distinguished in a fresh cover"
        );
    }

    #[test]
    fn cover_remove_eid() {
        let mut c = VagueCover::new(eids(0..3));
        c.split_by_scenario(&scenario(&[0], &[]));
        assert!(c.remove(Eid::from_u64(0)));
        assert!(!c.remove(Eid::from_u64(0)));
        assert_eq!(c.universe_len(), 2);
        assert!(c.check_invariants());
    }

    #[test]
    fn fully_split_cover() {
        let mut c = VagueCover::new(eids(0..3));
        c.split_by_scenario(&scenario(&[0], &[]));
        c.split_by_scenario(&scenario(&[1], &[]));
        assert!(c.is_fully_split());
        assert_eq!(c.distinguished(), eids(0..3));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_universe() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..40, 1..30)
    }

    fn arb_scenarios() -> impl Strategy<Value = Vec<Vec<u64>>> {
        prop::collection::vec(prop::collection::vec(0u64..40, 0..20), 0..20)
    }

    proptest! {
        /// Splitting preserves the partition invariants regardless of the
        /// scenario sequence.
        #[test]
        fn partition_invariants_hold_under_any_splits(
            universe in arb_universe(),
            scenarios in arb_scenarios(),
        ) {
            let mut p = EidPartition::new(universe.iter().copied().map(Eid::from_u64));
            let n = p.universe_len();
            for c in &scenarios {
                let set: BTreeSet<Eid> = c.iter().copied().map(Eid::from_u64).collect();
                let before = p.block_count();
                let out = p.split_by(&set);
                prop_assert!(p.check_invariants());
                prop_assert_eq!(p.universe_len(), n);
                // Effectiveness <=> block count grew.
                prop_assert_eq!(out.effective, p.block_count() > before);
                prop_assert_eq!(p.block_count(), before + out.blocks_split);
            }
            // Block count never exceeds the universe size.
            prop_assert!(p.block_count() <= n.max(1));
        }

        /// Two EIDs end in the same block iff every scenario either
        /// contains both or neither (signature equality).
        #[test]
        fn blocks_equal_signature_classes(
            universe in arb_universe(),
            scenarios in arb_scenarios(),
        ) {
            let eids: BTreeSet<Eid> =
                universe.iter().copied().map(Eid::from_u64).collect();
            let mut p = EidPartition::new(eids.iter().copied());
            let sets: Vec<BTreeSet<Eid>> = scenarios
                .iter()
                .map(|c| c.iter().copied().map(Eid::from_u64).collect())
                .collect();
            for c in &sets {
                p.split_by(c);
            }
            let signature = |e: Eid| -> Vec<bool> {
                sets.iter().map(|c| c.contains(&e)).collect()
            };
            for &a in &eids {
                for &b in &eids {
                    let same_block = p.block_of(a) == p.block_of(b);
                    prop_assert_eq!(same_block, signature(a) == signature(b));
                }
            }
        }

        /// The vague cover always keeps every EID covered and respects its
        /// invariants under arbitrary inclusive/vague scenario sequences.
        #[test]
        fn cover_invariants_hold(
            universe in arb_universe(),
            scenarios in prop::collection::vec(
                (prop::collection::vec(0u64..40, 0..10),
                 prop::collection::vec(0u64..40, 0..10)),
                0..12,
            ),
        ) {
            let mut cover =
                VagueCover::new(universe.iter().copied().map(Eid::from_u64));
            for (inc, vague) in &scenarios {
                let mut s = EScenario::new(
                    crate::region::CellId::new(0),
                    crate::time::Timestamp::ZERO,
                );
                for &e in inc {
                    s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
                }
                for &e in vague {
                    // Vague attribution wins on conflict to stress the
                    // duplication path.
                    s.insert(Eid::from_u64(e), ZoneAttr::Vague);
                }
                cover.split_by_scenario(&s);
                prop_assert!(cover.check_invariants());
            }
            // Prune every distinguished EID; invariants must survive.
            for eid in cover.distinguished() {
                cover.prune_distinguished(eid);
                prop_assert!(cover.check_invariants());
            }
        }
    }
}
