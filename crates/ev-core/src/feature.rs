//! Appearance feature vectors and the similarity model of paper Eq. (1).
//!
//! A [`FeatureVector`] stands in for the appearance descriptor a person
//! re-identification pipeline would extract from an image crop (the paper
//! uses CUHK02 snapshots; see DESIGN.md §2 for the substitution). The paper
//! defines VID similarity as `sim(v1, v2) = 1 − dist(f1, f2)` where `dist`
//! is a *normalized* vector distance, so all metrics here map into `[0, 1]`.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// The distance metric used to compare feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Euclidean distance normalized by the maximum possible distance of
    /// unit-box vectors (`sqrt(d)` for dimension `d`).
    #[default]
    NormalizedL2,
    /// Manhattan distance normalized by the dimension.
    NormalizedL1,
    /// Cosine distance `(1 − cos θ) / 2`, mapped into `[0, 1]`.
    Cosine,
}

/// A dense appearance descriptor with components in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ev_core::feature::{FeatureVector, Metric};
///
/// let a = FeatureVector::new(vec![0.0, 0.0, 0.0]).unwrap();
/// let b = FeatureVector::new(vec![1.0, 1.0, 1.0]).unwrap();
/// assert_eq!(a.similarity(&b, Metric::NormalizedL2).unwrap(), 0.0);
/// assert_eq!(a.similarity(&a, Metric::NormalizedL2).unwrap(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    components: Vec<f64>,
}

impl FeatureVector {
    /// Creates a feature vector, validating that every component is finite
    /// and within `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on an empty vector or on any
    /// out-of-range component.
    pub fn new(components: Vec<f64>) -> Result<Self> {
        if components.is_empty() {
            return Err(Error::InvalidParameter {
                name: "components",
                reason: "feature vector must not be empty".into(),
            });
        }
        for (i, &c) in components.iter().enumerate() {
            if !c.is_finite() || !(0.0..=1.0).contains(&c) {
                return Err(Error::InvalidParameter {
                    name: "components",
                    reason: format!("component {i} = {c} is outside [0, 1]"),
                });
            }
        }
        Ok(FeatureVector { components })
    }

    /// Creates a feature vector by clamping every component into `[0, 1]`
    /// (non-finite components become `0`). Handy when adding observation
    /// noise to a ground-truth vector.
    #[must_use]
    pub fn from_clamped(components: Vec<f64>) -> Self {
        FeatureVector {
            components: components
                .into_iter()
                .map(|c| {
                    if c.is_finite() {
                        c.clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// Dimensionality of the descriptor.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Read-only view of the components.
    #[must_use]
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Normalized distance to `other` under `metric`; always in `[0, 1]`.
    ///
    /// The metric formulas themselves live in [`crate::kernel`] (shared
    /// with the batch block kernel and the anytime bounds, so the paths
    /// cannot drift); this method contributes the per-pair dimension
    /// check.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if dimensions differ.
    pub fn distance(&self, other: &FeatureVector, metric: Metric) -> Result<f64> {
        if self.dim() != other.dim() {
            return Err(Error::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(crate::kernel::pair_distance(
            metric,
            &self.components,
            &other.components,
        ))
    }

    /// Paper Eq. (1): `sim(v1, v2) = 1 − dist(f1, f2)`; always in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if dimensions differ.
    pub fn similarity(&self, other: &FeatureVector, metric: Metric) -> Result<f64> {
        Ok(1.0 - self.distance(other, metric)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates_range() {
        assert!(FeatureVector::new(vec![]).is_err());
        assert!(FeatureVector::new(vec![1.1]).is_err());
        assert!(FeatureVector::new(vec![-0.1]).is_err());
        assert!(FeatureVector::new(vec![f64::NAN]).is_err());
        assert!(FeatureVector::new(vec![0.0, 0.5, 1.0]).is_ok());
    }

    #[test]
    fn from_clamped_sanitizes() {
        let v = FeatureVector::from_clamped(vec![-1.0, 2.0, f64::NAN, 0.5]);
        assert_eq!(v.components(), &[0.0, 1.0, 0.0, 0.5]);
    }

    #[test]
    fn identical_vectors_have_similarity_one() {
        let a = fv(&[0.2, 0.8, 0.5]);
        for m in [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine] {
            assert!((a.similarity(&a, m).unwrap() - 1.0).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn opposite_corners_have_similarity_zero_under_l_metrics() {
        let a = fv(&[0.0, 0.0]);
        let b = fv(&[1.0, 1.0]);
        assert!((a.distance(&b, Metric::NormalizedL2).unwrap() - 1.0).abs() < 1e-12);
        assert!((a.distance(&b, Metric::NormalizedL1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_half() {
        let a = fv(&[1.0, 0.0]);
        let b = fv(&[0.0, 1.0]);
        assert!((a.distance(&b, Metric::Cosine).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_neutral() {
        let a = fv(&[0.0, 0.0]);
        let b = fv(&[1.0, 0.5]);
        assert_eq!(a.distance(&b, Metric::Cosine).unwrap(), 0.5);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = fv(&[0.1, 0.2]);
        let b = fv(&[0.1, 0.2, 0.3]);
        assert!(matches!(
            a.distance(&b, Metric::NormalizedL2),
            Err(Error::DimensionMismatch { left: 2, right: 3 })
        ));
        assert!(a.similarity(&b, Metric::Cosine).is_err());
    }

    #[test]
    fn distance_is_symmetric() {
        let a = fv(&[0.1, 0.9, 0.4]);
        let b = fv(&[0.7, 0.2, 0.6]);
        for m in [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine] {
            let ab = a.distance(&b, m).unwrap();
            let ba = b.distance(&a, m).unwrap();
            assert!((ab - ba).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn similarity_complements_distance() {
        let a = fv(&[0.3, 0.6]);
        let b = fv(&[0.5, 0.1]);
        let d = a.distance(&b, Metric::NormalizedL2).unwrap();
        let s = a.similarity(&b, Metric::NormalizedL2).unwrap();
        assert!((d + s - 1.0).abs() < 1e-12);
    }
}
