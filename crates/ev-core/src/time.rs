//! The discrete time model.
//!
//! The synthetic world advances in fixed *ticks* (one tick = one second of
//! simulated time by convention). EV-Scenarios are snapshots at a tick
//! (ideal setting) or aggregates over a window of ticks (practical setting,
//! paper §IV-C2).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A discrete simulation timestamp (tick index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The first instant of the simulation.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw tick index.
    #[must_use]
    pub const fn new(tick: u64) -> Self {
        Timestamp(tick)
    }

    /// Returns the raw tick index.
    #[must_use]
    pub const fn tick(self) -> u64 {
        self.0
    }

    /// Returns the timestamp `n` ticks later, saturating at `u64::MAX`.
    #[must_use]
    pub const fn advanced(self, n: u64) -> Self {
        Timestamp(self.0.saturating_add(n))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(tick: u64) -> Self {
        Timestamp(tick)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, n: u64) -> Timestamp {
        Timestamp(self.0 + n)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    /// Number of ticks from `other` to `self`; saturates at zero when
    /// `other` is later.
    fn sub(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

/// A half-open range of ticks `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// First tick of the range (inclusive).
    pub start: Timestamp,
    /// One past the last tick of the range (exclusive).
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates the half-open range `[start, end)`; an inverted pair
    /// collapses to the empty range at `start`.
    #[must_use]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange {
            start,
            end: if end < start { start } else { end },
        }
    }

    /// The window of `len` ticks starting at `start`.
    #[must_use]
    pub fn window(start: Timestamp, len: u64) -> Self {
        TimeRange {
            start,
            end: start.advanced(len),
        }
    }

    /// Number of ticks in the range.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range contains no ticks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether tick `t` falls inside the range.
    #[must_use]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection with `other`, or `None` if disjoint.
    #[must_use]
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeRange { start, end })
        } else {
            None
        }
    }

    /// Iterates over every tick in the range.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> {
        (self.start.tick()..self.end.tick()).map(Timestamp::new)
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.tick(), self.end.tick())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::new(10);
        assert_eq!(t + 5, Timestamp::new(15));
        assert_eq!(t.advanced(5), Timestamp::new(15));
        assert_eq!(Timestamp::new(15) - t, 5);
        assert_eq!(t - Timestamp::new(15), 0, "subtraction saturates");
        assert_eq!(Timestamp::new(u64::MAX).advanced(1).tick(), u64::MAX);
    }

    #[test]
    fn range_basics() {
        let r = TimeRange::window(Timestamp::new(5), 3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.contains(Timestamp::new(5)));
        assert!(r.contains(Timestamp::new(7)));
        assert!(!r.contains(Timestamp::new(8)), "end is exclusive");
        assert!(!r.contains(Timestamp::new(4)));
    }

    #[test]
    fn inverted_range_collapses_to_empty() {
        let r = TimeRange::new(Timestamp::new(9), Timestamp::new(3));
        assert!(r.is_empty());
        assert_eq!(r.start, Timestamp::new(9));
    }

    #[test]
    fn range_intersection() {
        let a = TimeRange::window(Timestamp::new(0), 10);
        let b = TimeRange::window(Timestamp::new(5), 10);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, TimeRange::new(Timestamp::new(5), Timestamp::new(10)));
        let d = TimeRange::window(Timestamp::new(20), 5);
        assert!(a.intersect(&d).is_none());
        assert!(a
            .intersect(&TimeRange::window(Timestamp::new(10), 1))
            .is_none());
    }

    #[test]
    fn range_iteration_visits_each_tick_once() {
        let r = TimeRange::window(Timestamp::new(2), 4);
        let ticks: Vec<u64> = r.iter().map(Timestamp::tick).collect();
        assert_eq!(ticks, vec![2, 3, 4, 5]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::new(7).to_string(), "t=7");
        assert_eq!(
            TimeRange::window(Timestamp::new(1), 2).to_string(),
            "[1, 3)"
        );
    }
}
