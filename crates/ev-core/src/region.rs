//! The gridded surveillance region and its vague-zone geometry.
//!
//! The paper divides the monitored area into *scenarios* — here square grid
//! cells over a rectangular region (paper Fig. 1). For the practical
//! setting, each cell is subdivided into an **inclusive zone** (far from the
//! border), a **vague zone** (a band of configurable width along the
//! border), and everything outside the cell is its **exclusive zone**
//! (paper Fig. 2).

use crate::error::{Error, Result};
use crate::geometry::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one grid cell (one spatial scenario).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CellId(usize);

impl CellId {
    /// Creates a cell id from a raw row-major index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        CellId(index)
    }

    /// Returns the raw row-major index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

impl From<usize> for CellId {
    fn from(index: usize) -> Self {
        CellId(index)
    }
}

/// Which zone of a cell a point falls in (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Deep inside the cell: readings here are confidently attributed.
    Inclusive,
    /// Within the border band: readings may belong to a neighbouring cell.
    Vague,
    /// Outside the cell.
    Exclusive,
}

/// A rectangular surveillance region uniformly divided into square cells.
///
/// # Examples
///
/// ```
/// use ev_core::region::{GridRegion, Zone};
/// use ev_core::geometry::Point;
///
/// let region = GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap();
/// assert_eq!(region.cell_count(), 100);
///
/// let cell = region.cell_at(Point::new(150.0, 250.0)).unwrap();
/// assert_eq!(region.zone_of(cell, Point::new(150.0, 250.0)), Zone::Inclusive);
/// assert_eq!(region.zone_of(cell, Point::new(101.0, 250.0)), Zone::Vague);
/// assert_eq!(region.zone_of(cell, Point::new(50.0, 250.0)), Zone::Exclusive);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRegion {
    width: f64,
    height: f64,
    cell_size: f64,
    vague_width: f64,
    cols: usize,
    rows: usize,
}

impl GridRegion {
    /// Creates a region of `width` x `height` metres divided into square
    /// cells of `cell_size` metres, each with a vague band of `vague_width`
    /// metres along its border.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if any dimension is non-positive
    /// or non-finite, if `cell_size` exceeds a region dimension, or if the
    /// vague band is negative or at least half the cell size (which would
    /// leave no inclusive zone).
    pub fn new(width: f64, height: f64, cell_size: f64, vague_width: f64) -> Result<Self> {
        fn positive(name: &'static str, v: f64) -> Result<()> {
            if !v.is_finite() || v <= 0.0 {
                return Err(Error::InvalidParameter {
                    name,
                    reason: format!("must be a positive finite number, got {v}"),
                });
            }
            Ok(())
        }
        positive("width", width)?;
        positive("height", height)?;
        positive("cell_size", cell_size)?;
        if !vague_width.is_finite() || vague_width < 0.0 {
            return Err(Error::InvalidParameter {
                name: "vague_width",
                reason: format!("must be a non-negative finite number, got {vague_width}"),
            });
        }
        if cell_size > width || cell_size > height {
            return Err(Error::InvalidParameter {
                name: "cell_size",
                reason: "cell size exceeds the region dimensions".into(),
            });
        }
        if vague_width >= cell_size / 2.0 {
            return Err(Error::InvalidParameter {
                name: "vague_width",
                reason: "vague band must be narrower than half the cell size".into(),
            });
        }
        let cols = (width / cell_size).ceil() as usize;
        let rows = (height / cell_size).ceil() as usize;
        Ok(GridRegion {
            width,
            height,
            cell_size,
            vague_width,
            cols,
            rows,
        })
    }

    /// Region width in metres.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Region height in metres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Side length of each (square) cell in metres.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Width of the vague band along each cell border, in metres.
    #[must_use]
    pub fn vague_width(&self) -> f64 {
        self.vague_width
    }

    /// Number of cell columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The bounding rectangle of the whole region.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        Rect::from_size(self.width, self.height)
    }

    /// The cell containing `p`.
    ///
    /// Points exactly on the region's max border are attributed to the last
    /// cell, so every point of the closed region maps to some cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfRegion`] if `p` lies outside the region.
    pub fn cell_at(&self, p: Point) -> Result<CellId> {
        if !self.bounds().contains(p) {
            return Err(Error::OutOfRegion { x: p.x, y: p.y });
        }
        let col = ((p.x / self.cell_size) as usize).min(self.cols - 1);
        let row = ((p.y / self.cell_size) as usize).min(self.rows - 1);
        Ok(CellId(row * self.cols + col))
    }

    /// The bounding rectangle of `cell`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCell`] if the id is out of range.
    pub fn cell_bounds(&self, cell: CellId) -> Result<Rect> {
        if cell.0 >= self.cell_count() {
            return Err(Error::UnknownCell { index: cell.0 });
        }
        let row = cell.0 / self.cols;
        let col = cell.0 % self.cols;
        let min = Point::new(col as f64 * self.cell_size, row as f64 * self.cell_size);
        let max = Point::new(
            (min.x + self.cell_size).min(self.width),
            (min.y + self.cell_size).min(self.height),
        );
        Ok(Rect::new(min, max))
    }

    /// Classifies `p` relative to `cell` into inclusive / vague / exclusive
    /// zones (paper Fig. 2). Unknown cells classify everything as
    /// [`Zone::Exclusive`].
    ///
    /// The vague band extends `vague_width` metres on *both* sides of the
    /// cell border: a point slightly outside the cell is still `Vague`
    /// because electronic noise could equally have drifted it either way.
    #[must_use]
    pub fn zone_of(&self, cell: CellId, p: Point) -> Zone {
        let Ok(bounds) = self.cell_bounds(cell) else {
            return Zone::Exclusive;
        };
        let d = bounds.signed_border_distance(p);
        if d >= self.vague_width {
            Zone::Inclusive
        } else if d > -self.vague_width {
            Zone::Vague
        } else {
            Zone::Exclusive
        }
    }

    /// Iterates over all cell ids in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.cell_count()).map(CellId)
    }

    /// The up-to-8 neighbouring cells of `cell` (diagonals included).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCell`] if the id is out of range.
    pub fn neighbors(&self, cell: CellId) -> Result<Vec<CellId>> {
        if cell.0 >= self.cell_count() {
            return Err(Error::UnknownCell { index: cell.0 });
        }
        let row = (cell.0 / self.cols) as isize;
        let col = (cell.0 % self.cols) as isize;
        let mut out = Vec::with_capacity(8);
        for dr in -1..=1 {
            for dc in -1..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let (r, c) = (row + dr, col + dc);
                if r >= 0 && r < self.rows as isize && c >= 0 && c < self.cols as isize {
                    out.push(CellId(r as usize * self.cols + c as usize));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> GridRegion {
        GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(GridRegion::new(0.0, 10.0, 1.0, 0.0).is_err());
        assert!(GridRegion::new(10.0, -1.0, 1.0, 0.0).is_err());
        assert!(GridRegion::new(10.0, 10.0, 0.0, 0.0).is_err());
        assert!(
            GridRegion::new(10.0, 10.0, 20.0, 0.0).is_err(),
            "cell > region"
        );
        assert!(
            GridRegion::new(10.0, 10.0, 2.0, 1.0).is_err(),
            "vague >= half cell"
        );
        assert!(GridRegion::new(10.0, 10.0, 2.0, -0.1).is_err());
        assert!(GridRegion::new(f64::NAN, 10.0, 1.0, 0.0).is_err());
        assert!(
            GridRegion::new(10.0, 10.0, 2.0, 0.0).is_ok(),
            "zero vague band ok"
        );
    }

    #[test]
    fn paper_region_has_100_cells() {
        let r = region();
        assert_eq!(r.cell_count(), 100);
        assert_eq!(r.cols(), 10);
        assert_eq!(r.rows(), 10);
    }

    #[test]
    fn cell_at_maps_row_major() {
        let r = region();
        assert_eq!(r.cell_at(Point::new(0.0, 0.0)).unwrap(), CellId(0));
        assert_eq!(r.cell_at(Point::new(150.0, 0.0)).unwrap(), CellId(1));
        assert_eq!(r.cell_at(Point::new(0.0, 150.0)).unwrap(), CellId(10));
        assert_eq!(r.cell_at(Point::new(999.0, 999.0)).unwrap(), CellId(99));
    }

    #[test]
    fn max_border_points_belong_to_last_cells() {
        let r = region();
        assert_eq!(r.cell_at(Point::new(1000.0, 1000.0)).unwrap(), CellId(99));
        assert_eq!(r.cell_at(Point::new(1000.0, 0.0)).unwrap(), CellId(9));
    }

    #[test]
    fn out_of_region_points_error() {
        let r = region();
        assert!(matches!(
            r.cell_at(Point::new(-0.1, 5.0)),
            Err(Error::OutOfRegion { .. })
        ));
        assert!(r.cell_at(Point::new(5.0, 1000.1)).is_err());
    }

    #[test]
    fn cell_bounds_tile_the_region() {
        let r = region();
        let mut area = 0.0;
        for cell in r.cells() {
            area += r.cell_bounds(cell).unwrap().area();
        }
        assert!((area - 1_000_000.0).abs() < 1e-6);
        assert!(r.cell_bounds(CellId(100)).is_err());
    }

    #[test]
    fn zone_classification_matches_figure_2() {
        let r = region();
        let cell = r.cell_at(Point::new(150.0, 150.0)).unwrap();
        // Deep interior -> inclusive.
        assert_eq!(r.zone_of(cell, Point::new(150.0, 150.0)), Zone::Inclusive);
        // Within 10 m of the border, inside -> vague.
        assert_eq!(r.zone_of(cell, Point::new(105.0, 150.0)), Zone::Vague);
        // Within 10 m of the border, *outside* -> still vague (drift).
        assert_eq!(r.zone_of(cell, Point::new(95.0, 150.0)), Zone::Vague);
        // Far outside -> exclusive.
        assert_eq!(r.zone_of(cell, Point::new(50.0, 150.0)), Zone::Exclusive);
        // Exactly at the inclusive threshold counts as inclusive.
        assert_eq!(r.zone_of(cell, Point::new(110.0, 150.0)), Zone::Inclusive);
        // Unknown cell treats everything as exclusive.
        assert_eq!(
            r.zone_of(CellId(999), Point::new(1.0, 1.0)),
            Zone::Exclusive
        );
    }

    #[test]
    fn zero_vague_band_makes_interior_inclusive() {
        let r = GridRegion::new(100.0, 100.0, 10.0, 0.0).unwrap();
        let cell = r.cell_at(Point::new(15.0, 15.0)).unwrap();
        assert_eq!(r.zone_of(cell, Point::new(15.0, 15.0)), Zone::Inclusive);
        assert_eq!(r.zone_of(cell, Point::new(25.0, 15.0)), Zone::Exclusive);
    }

    #[test]
    fn neighbors_counts() {
        let r = region();
        assert_eq!(r.neighbors(CellId(0)).unwrap().len(), 3, "corner");
        assert_eq!(r.neighbors(CellId(5)).unwrap().len(), 5, "edge");
        assert_eq!(r.neighbors(CellId(55)).unwrap().len(), 8, "interior");
        assert!(r.neighbors(CellId(100)).is_err());
    }

    #[test]
    fn non_divisible_region_rounds_cell_grid_up() {
        let r = GridRegion::new(95.0, 45.0, 10.0, 0.0).unwrap();
        assert_eq!(r.cols(), 10);
        assert_eq!(r.rows(), 5);
        // Last column cells are clipped to the region border.
        let b = r.cell_bounds(CellId(9)).unwrap();
        assert!((b.width() - 5.0).abs() < 1e-12);
    }
}
