//! Hardware-fast similarity kernel: SoA gallery blocks, batch scoring,
//! and a quantized prefilter (DESIGN.md §9).
//!
//! Paper Eq. (1) makes every match decision a stream of
//! candidate-vs-gallery distance evaluations. The per-pair
//! [`FeatureVector::distance`] path re-checks dimensions, re-dispatches
//! on the metric and pointer-chases a `Vec<f64>` per gallery row on
//! every single comparison. This module hoists all of that out of the
//! inner loop:
//!
//! * [`FeatureBlock`] — a gallery packed once into contiguous,
//!   64-byte-aligned structure-of-arrays buffers (`f64` reference,
//!   `f32` mirror, `u8` quantized), validated once at build time so a
//!   mismatched gallery fails loudly with the gallery id in the error.
//! * [`Kernel`] — a prepared `(metric, dim)` pair whose batch methods
//!   score a candidate against a whole block in one streaming pass with
//!   branch-free, autovectorizer-friendly inner loops.
//!
//! # Bit-equivalence contract
//!
//! The exact `f64` block path reproduces the scalar per-pair path
//! **bitwise**, not just to a tolerance. The trick is vectorizing
//! *across gallery rows* instead of across dimensions: the block stores
//! rows in lanes of [`LANES`] and the inner loop walks dimensions in
//! index order, keeping one accumulator per row. Every row's sum is
//! therefore accumulated in exactly the sequential order the scalar
//! `zip(..).sum()` uses — same additions, same order, same rounding,
//! same bits — while the compiler lifts the independent per-row
//! accumulators into SIMD lanes. No `mul_add`/FMA enters the exact
//! `f64` path (fused rounding would change bits); the approximate
//! `f32` mirror is where FMA-shaped loops live.
//!
//! The quantized prefilter is *also* exact in its final answer: the
//! integer pass only computes provable similarity intervals, and every
//! row whose interval overlaps the best lower bound is rescored with
//! the bitwise-exact path, so the returned maximum is the maximum
//! (see [`Kernel::score_max_quantized`]).

use crate::error::{Error, Result};
use crate::feature::{FeatureVector, Metric};
use serde::{Deserialize, Serialize};

/// Gallery rows per `f64` lane group: 8 × 8 bytes = one 64-byte line.
pub const LANES: usize = 8;

/// Gallery rows per `f32` lane group: 16 × 4 bytes = one 64-byte line.
pub const LANES_F32: usize = 16;

/// Largest dimensionality the quantized prefilter accepts. Above this
/// the `u32` accumulator of the integer pass could overflow
/// (`255² · dim` must stay below `2³²`; 4096 leaves a ~16× margin) and
/// [`Kernel::score_max_quantized`] falls back to the exact block scan.
pub const QUANT_MAX_DIM: usize = 4096;

/// Which scoring path the matcher drives (CLI `--kernel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum KernelMode {
    /// The original per-pair scalar path (`FeatureVector::distance` per
    /// gallery row). Kept as the reference implementation.
    Scalar,
    /// Batch scoring against the SoA [`FeatureBlock`] — bitwise
    /// identical to `Scalar`, one streaming pass per gallery.
    #[default]
    Block,
    /// 8-bit quantized prefilter + exact rescoring of the surviving
    /// rows. Still returns bitwise-exact maxima (the prefilter only
    /// prunes rows *proven* unable to win) but is off by default
    /// because its win depends on gallery size and metric.
    Quantized,
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelMode::Scalar => write!(f, "scalar"),
            KernelMode::Block => write!(f, "block"),
            KernelMode::Quantized => write!(f, "quantized"),
        }
    }
}

impl std::str::FromStr for KernelMode {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "scalar" => Ok(KernelMode::Scalar),
            "block" => Ok(KernelMode::Block),
            "quantized" => Ok(KernelMode::Quantized),
            _ => Err(Error::InvalidParameter {
                name: "kernel",
                reason: format!("unknown kernel mode {s:?} (scalar|block|quantized)"),
            }),
        }
    }
}

/// One cache-line-sized group of `f64` row values: the components of
/// [`LANES`] consecutive gallery rows at a single dimension index.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct Lane64([f64; LANES]);

/// One cache-line-sized group of `f32` row values ([`LANES_F32`] rows).
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct Lane32([f32; LANES_F32]);

/// A gallery packed into structure-of-arrays blocks.
///
/// Rows are grouped into chunks of [`LANES`]; within a chunk, the lane
/// at index `chunk * dim + j` holds dimension `j` of all [`LANES`] rows
/// side by side. A candidate-vs-gallery pass therefore walks each
/// buffer exactly once, front to back, with unit stride — no per-row
/// heap hop, no per-pair dimension check. Rows past `len` in the last
/// chunk are zero padding; their scores are computed and discarded.
///
/// Built once per gallery (the matcher memoizes it per gallery-cache
/// entry); dimension validation happens here, so a gallery whose rows
/// disagree on dimensionality fails **once, loudly, with the gallery id
/// in the error** instead of failing per pair inside the hot loop.
#[derive(Debug, Clone)]
pub struct FeatureBlock {
    dim: usize,
    len: usize,
    /// Exact values, `ceil(len / LANES) * dim` lanes.
    lanes: Vec<Lane64>,
    /// Approximate mirror, `ceil(len / LANES_F32) * dim` lanes.
    lanes_f32: Vec<Lane32>,
    /// Per-row squared norm (`Σ c²`, accumulated in dimension order —
    /// the same order the scalar cosine path uses), for `Cosine`.
    norms_sq: Vec<f64>,
    /// Row-major `len * dim` quantized mirror (`q = round(c · 255)`),
    /// present when `dim ≤ QUANT_MAX_DIM`.
    quant: Option<Vec<u8>>,
}

impl FeatureBlock {
    /// Packs `rows` into a block, validating that every row agrees on
    /// dimensionality.
    ///
    /// An empty gallery packs into an empty block (`dim() == 0`); the
    /// kernel scores it as membership `0`, like the scalar scan of an
    /// empty scenario.
    ///
    /// # Errors
    ///
    /// Returns [`Error::GalleryDimensionMismatch`] naming `gallery` and
    /// the offending row if any row's dimensionality differs from the
    /// first row's.
    pub fn build<'a, I>(gallery: &str, rows: I) -> Result<FeatureBlock>
    where
        I: IntoIterator<Item = &'a FeatureVector>,
    {
        let rows: Vec<&FeatureVector> = rows.into_iter().collect();
        let Some(first) = rows.first() else {
            return Ok(FeatureBlock {
                dim: 0,
                len: 0,
                lanes: Vec::new(),
                lanes_f32: Vec::new(),
                norms_sq: Vec::new(),
                quant: None,
            });
        };
        let dim = first.dim();
        for (row, r) in rows.iter().enumerate() {
            if r.dim() != dim {
                return Err(Error::GalleryDimensionMismatch {
                    gallery: gallery.to_string(),
                    expected: dim,
                    found: r.dim(),
                    row,
                });
            }
        }
        let len = rows.len();

        let chunks = len.div_ceil(LANES);
        let mut lanes = vec![Lane64([0.0; LANES]); chunks * dim];
        for (row, r) in rows.iter().enumerate() {
            let (chunk, slot) = (row / LANES, row % LANES);
            for (j, &c) in r.components().iter().enumerate() {
                lanes[chunk * dim + j].0[slot] = c;
            }
        }

        let chunks32 = len.div_ceil(LANES_F32);
        let mut lanes_f32 = vec![Lane32([0.0; LANES_F32]); chunks32 * dim];
        for (row, r) in rows.iter().enumerate() {
            let (chunk, slot) = (row / LANES_F32, row % LANES_F32);
            for (j, &c) in r.components().iter().enumerate() {
                lanes_f32[chunk * dim + j].0[slot] = c as f32;
            }
        }

        // Dimension-ordered accumulation: bitwise the same squared norm
        // the scalar cosine path computes per pair.
        let norms_sq: Vec<f64> = rows
            .iter()
            .map(|r| r.components().iter().map(|c| c * c).sum())
            .collect();

        let quant = (dim <= QUANT_MAX_DIM).then(|| {
            let mut q = Vec::with_capacity(len * dim);
            for r in &rows {
                q.extend(r.components().iter().map(|&c| quantize(c)));
            }
            q
        });

        Ok(FeatureBlock {
            dim,
            len,
            lanes,
            lanes_f32,
            norms_sq,
            quant,
        })
    }

    /// Dimensionality of every row (`0` for an empty block).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of gallery rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the quantized mirror was built (`dim ≤ QUANT_MAX_DIM`).
    #[must_use]
    pub fn has_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Component `j` of row `row`, read back out of the lane layout.
    #[inline]
    fn component(&self, row: usize, j: usize) -> f64 {
        self.lanes[(row / LANES) * self.dim + j].0[row % LANES]
    }

    /// Exact distance from `x` to row `row`, accumulated in dimension
    /// order — bitwise the scalar per-pair distance.
    fn row_distance(&self, x: &[f64], row: usize, metric: Metric, x_norm_sq: f64) -> f64 {
        match metric {
            Metric::NormalizedL2 => {
                let mut sq = 0.0;
                for (j, &a) in x.iter().enumerate() {
                    let d = a - self.component(row, j);
                    sq += d * d;
                }
                l2_distance_from_sq(sq, self.dim)
            }
            Metric::NormalizedL1 => {
                let mut abs = 0.0;
                for (j, &a) in x.iter().enumerate() {
                    abs += (a - self.component(row, j)).abs();
                }
                l1_distance_from_abs(abs, self.dim)
            }
            Metric::Cosine => {
                let mut dot = 0.0;
                for (j, &a) in x.iter().enumerate() {
                    dot += a * self.component(row, j);
                }
                cosine_distance_from_parts(dot, x_norm_sq, self.norms_sq[row])
            }
        }
    }
}

/// `round(c · 255)` for a component already validated into `[0, 1]`.
#[inline]
fn quantize(c: f64) -> u8 {
    // (c * 255).round() ∈ [0, 255] exactly because c ∈ [0, 1].
    (c * 255.0).round() as u8
}

/// A prepared `(metric, dim)` scoring kernel.
///
/// Preparation is where per-call validation lives: every batch method
/// checks the candidate and block against the prepared dimensionality
/// **once**, then runs a branch-free inner loop. Comparing a kernel
/// against a block of a different dimensionality is a single
/// [`Error::DimensionMismatch`] for the whole gallery, mirroring the
/// scalar path's per-pair error (which the matcher maps to membership
/// `0` for every pair of the gallery anyway).
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    metric: Metric,
    dim: usize,
}

impl Kernel {
    /// Prepares a kernel for `metric` at dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `dim == 0`.
    pub fn prepare(metric: Metric, dim: usize) -> Result<Kernel> {
        if dim == 0 {
            return Err(Error::InvalidParameter {
                name: "dim",
                reason: "kernel dimensionality must be at least 1".into(),
            });
        }
        Ok(Kernel { metric, dim })
    }

    /// The prepared metric.
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The prepared dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Checks `candidate` and `block` against the prepared shape; the
    /// single validation point for every batch method.
    fn check(&self, candidate: &FeatureVector, block: &FeatureBlock) -> Result<()> {
        if candidate.dim() != self.dim {
            return Err(Error::DimensionMismatch {
                left: candidate.dim(),
                right: self.dim,
            });
        }
        if block.dim != self.dim {
            return Err(Error::DimensionMismatch {
                left: self.dim,
                right: block.dim,
            });
        }
        Ok(())
    }

    /// Scores `candidate` against every row of `block`, writing paper
    /// Eq. (1) similarities (`1 − dist`) into `out` in row order. Each
    /// value is bitwise identical to
    /// `candidate.similarity(&row, metric)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the candidate or the
    /// block disagree with the prepared dimensionality, or when
    /// `out.len() != block.len()`. An empty block with an empty `out`
    /// is fine.
    pub fn score_into(
        &self,
        candidate: &FeatureVector,
        block: &FeatureBlock,
        out: &mut [f64],
    ) -> Result<()> {
        if out.len() != block.len {
            return Err(Error::DimensionMismatch {
                left: out.len(),
                right: block.len,
            });
        }
        if block.is_empty() {
            return Ok(());
        }
        self.check(candidate, block)?;
        let x = candidate.components();
        let x_norm_sq = cosine_norm_sq(self.metric, x);
        let mut sims = [0.0; LANES];
        for (chunk, lanes) in block.lanes.chunks_exact(self.dim).enumerate() {
            self.score_chunk(x, x_norm_sq, block, chunk, lanes, &mut sims);
            let base = chunk * LANES;
            let rows = LANES.min(block.len - base);
            out[base..base + rows].copy_from_slice(&sims[..rows]);
        }
        Ok(())
    }

    /// Membership probability `P = max_row sim(candidate, row)` over the
    /// block, folded from `0.0` exactly like the scalar gallery scan —
    /// bitwise identical to it. An empty block scores `0.0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the candidate or a
    /// non-empty block disagree with the prepared dimensionality.
    pub fn score_max(&self, candidate: &FeatureVector, block: &FeatureBlock) -> Result<f64> {
        if block.is_empty() {
            return Ok(0.0);
        }
        self.check(candidate, block)?;
        let x = candidate.components();
        let x_norm_sq = cosine_norm_sq(self.metric, x);
        let mut best = 0.0f64;
        let mut sims = [0.0; LANES];
        for (chunk, lanes) in block.lanes.chunks_exact(self.dim).enumerate() {
            self.score_chunk(x, x_norm_sq, block, chunk, lanes, &mut sims);
            let base = chunk * LANES;
            let rows = LANES.min(block.len - base);
            for &s in &sims[..rows] {
                best = best.max(s);
            }
        }
        Ok(best)
    }

    /// Scores one chunk of [`LANES`] rows into `sims`.
    ///
    /// The dimension loop is outer and strictly in index order; the row
    /// loop is inner over a stack array of independent accumulators.
    /// Each row's terms are therefore added in exactly the scalar
    /// sequence (bit-identical sums) while the compiler vectorizes
    /// across the lanes.
    #[inline]
    fn score_chunk(
        &self,
        x: &[f64],
        x_norm_sq: f64,
        block: &FeatureBlock,
        chunk: usize,
        lanes: &[Lane64],
        sims: &mut [f64; LANES],
    ) {
        let mut acc = [0.0f64; LANES];
        match self.metric {
            Metric::NormalizedL2 => {
                for (&a, lane) in x.iter().zip(lanes) {
                    for (s, &b) in acc.iter_mut().zip(&lane.0) {
                        let d = a - b;
                        *s += d * d;
                    }
                }
                for (out, &sq) in sims.iter_mut().zip(&acc) {
                    *out = 1.0 - l2_distance_from_sq(sq, self.dim);
                }
            }
            Metric::NormalizedL1 => {
                for (&a, lane) in x.iter().zip(lanes) {
                    for (s, &b) in acc.iter_mut().zip(&lane.0) {
                        *s += (a - b).abs();
                    }
                }
                for (out, &abs) in sims.iter_mut().zip(&acc) {
                    *out = 1.0 - l1_distance_from_abs(abs, self.dim);
                }
            }
            Metric::Cosine => {
                for (&a, lane) in x.iter().zip(lanes) {
                    for (s, &b) in acc.iter_mut().zip(&lane.0) {
                        *s += a * b;
                    }
                }
                let base = chunk * LANES;
                for (r, (out, &dot)) in sims.iter_mut().zip(&acc).enumerate() {
                    let nb_sq = block.norms_sq.get(base + r).copied().unwrap_or(0.0);
                    *out = 1.0 - cosine_distance_from_parts(dot, x_norm_sq, nb_sq);
                }
            }
        }
    }

    /// Approximate `f32` batch scoring (FMA-shaped inner loops over the
    /// 64-byte-aligned `f32` mirror). Values track the exact path to
    /// roughly `f32` precision; use the `f64` methods wherever report
    /// bytes matter.
    ///
    /// # Errors
    ///
    /// Same shape contract as [`Kernel::score_into`].
    pub fn score_into_f32(
        &self,
        candidate: &FeatureVector,
        block: &FeatureBlock,
        out: &mut [f32],
    ) -> Result<()> {
        if out.len() != block.len {
            return Err(Error::DimensionMismatch {
                left: out.len(),
                right: block.len,
            });
        }
        if block.is_empty() {
            return Ok(());
        }
        self.check(candidate, block)?;
        let x: Vec<f32> = candidate.components().iter().map(|&c| c as f32).collect();
        let x_norm_sq: f32 = x.iter().map(|&c| c * c).sum();
        for (chunk, lanes) in block.lanes_f32.chunks_exact(self.dim).enumerate() {
            let mut acc = [0.0f32; LANES_F32];
            match self.metric {
                Metric::NormalizedL2 => {
                    for (&a, lane) in x.iter().zip(lanes) {
                        for (s, &b) in acc.iter_mut().zip(&lane.0) {
                            let d = a - b;
                            *s = d.mul_add(d, *s);
                        }
                    }
                    for s in &mut acc {
                        *s = 1.0 - (s.sqrt() / (self.dim as f32).sqrt()).min(1.0);
                    }
                }
                Metric::NormalizedL1 => {
                    for (&a, lane) in x.iter().zip(lanes) {
                        for (s, &b) in acc.iter_mut().zip(&lane.0) {
                            *s += (a - b).abs();
                        }
                    }
                    for s in &mut acc {
                        *s = 1.0 - (*s / self.dim as f32).min(1.0);
                    }
                }
                Metric::Cosine => {
                    for (&a, lane) in x.iter().zip(lanes) {
                        for (s, &b) in acc.iter_mut().zip(&lane.0) {
                            *s = a.mul_add(b, *s);
                        }
                    }
                    let base = chunk * LANES_F32;
                    for (r, s) in acc.iter_mut().enumerate() {
                        let nb_sq = block.norms_sq.get(base + r).copied().unwrap_or(0.0) as f32;
                        let d = if x_norm_sq == 0.0 || nb_sq == 0.0 {
                            0.5
                        } else {
                            let cos = *s / (x_norm_sq.sqrt() * nb_sq.sqrt());
                            if cos.is_nan() {
                                0.5
                            } else {
                                ((1.0 - cos) / 2.0).clamp(0.0, 1.0)
                            }
                        };
                        *s = 1.0 - d;
                    }
                }
            }
            let base = chunk * LANES_F32;
            let rows = LANES_F32.min(block.len - base);
            out[base..base + rows].copy_from_slice(&acc[..rows]);
        }
        Ok(())
    }

    /// [`Kernel::score_max`] through the 8-bit prefilter: an integer
    /// pass computes a provable similarity interval per row, rows whose
    /// upper bound falls below the best lower bound are pruned, and the
    /// survivors are rescored with the bitwise-exact path. Because the
    /// survivor set provably contains every argmax row, the returned
    /// maximum is **bitwise identical** to [`Kernel::score_max`].
    ///
    /// Returns `(membership, rows_pruned)`. Falls back to the exact
    /// block scan (`rows_pruned == 0`) for `Cosine` (no useful integer
    /// bound) and for blocks without a quantized mirror
    /// (`dim > QUANT_MAX_DIM`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the candidate or a
    /// non-empty block disagree with the prepared dimensionality.
    pub fn score_max_quantized(
        &self,
        candidate: &FeatureVector,
        block: &FeatureBlock,
    ) -> Result<(f64, usize)> {
        if block.is_empty() {
            return Ok((0.0, 0));
        }
        self.check(candidate, block)?;
        let (Some(quant), false) = (&block.quant, self.metric == Metric::Cosine) else {
            return Ok((self.score_max(candidate, block)?, 0));
        };
        let x = candidate.components();
        let qx: Vec<i32> = x.iter().map(|&c| i32::from(quantize(c))).collect();

        let mut bounds = Vec::with_capacity(block.len);
        let mut best_lb = 0.0f64;
        for q_row in quant.chunks_exact(self.dim) {
            let (sim_lb, sim_ub) = self.quant_bounds(&qx, q_row);
            best_lb = best_lb.max(sim_lb);
            bounds.push(sim_ub);
        }

        // A pruned row's similarity is ≤ its upper bound < best_lb ≤
        // the exact similarity of the row that produced best_lb, so the
        // true maximum lives among the survivors; the max over any
        // superset of the argmax rows is the same f64, bit for bit.
        let mut best = 0.0f64;
        let mut pruned = 0usize;
        let x_norm_sq = cosine_norm_sq(self.metric, x);
        for (row, &ub) in bounds.iter().enumerate() {
            if ub < best_lb {
                pruned += 1;
                continue;
            }
            let sim = 1.0 - block.row_distance(x, row, self.metric, x_norm_sq);
            best = best.max(sim);
        }
        Ok((best, pruned))
    }

    /// Prefilter-only entry point: returns the indices of every row
    /// whose similarity interval overlaps the `k`-th best lower bound —
    /// a survivor set **guaranteed to contain the exact top-`k` rows**
    /// (recall 1.0 at the reported `k`). Rescore the survivors with
    /// [`Kernel::score_into`] for exact order. Without a quantized
    /// mirror, or under `Cosine`, every row survives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the candidate or a
    /// non-empty block disagree with the prepared dimensionality.
    pub fn prefilter_topk(
        &self,
        candidate: &FeatureVector,
        block: &FeatureBlock,
        k: usize,
    ) -> Result<Vec<usize>> {
        if block.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        self.check(candidate, block)?;
        let all = || (0..block.len).collect::<Vec<usize>>();
        if k >= block.len || self.metric == Metric::Cosine {
            return Ok(all());
        }
        let Some(quant) = &block.quant else {
            return Ok(all());
        };
        let x = candidate.components();
        let qx: Vec<i32> = x.iter().map(|&c| i32::from(quantize(c))).collect();
        let mut lbs = Vec::with_capacity(block.len);
        let mut ubs = Vec::with_capacity(block.len);
        for q_row in quant.chunks_exact(self.dim) {
            let (lb, ub) = self.quant_bounds(&qx, q_row);
            lbs.push(lb);
            ubs.push(ub);
        }
        let mut order = lbs.clone();
        order.sort_by(|a, b| b.total_cmp(a));
        let threshold = order[k - 1];
        Ok((0..block.len).filter(|&r| ubs[r] >= threshold).collect())
    }

    /// Provable `(sim_lb, sim_ub)` for one row from quantized vectors.
    ///
    /// Quantization error per component is at most `1/510` per vector,
    /// so a quantized difference is within `1/255` of the true one.
    /// For L2 the error *vector* has norm at most `√dim / 255`, so by
    /// the triangle inequality
    /// `‖Δ‖ ∈ [(‖Δq‖ − √dim) / 255, (‖Δq‖ + √dim) / 255]`; for L1 the
    /// total error is at most `dim / 255`. Both bounds are widened by a
    /// relative `1e-12` so `f64` rounding in this very computation can
    /// never flip a bound past the exact value.
    fn quant_bounds(&self, qx: &[i32], q_row: &[u8]) -> (f64, f64) {
        let dim = self.dim as f64;
        let (dist_lo, dist_hi) = match self.metric {
            Metric::NormalizedL2 => {
                let mut sq: u32 = 0;
                for (&a, &b) in qx.iter().zip(q_row) {
                    let d = a - i32::from(b);
                    sq += (d * d) as u32;
                }
                // Normalized: ‖Δ‖ / √dim with the ±√dim/255 slack.
                let norm_q = f64::from(sq).sqrt();
                let lo = ((norm_q - dim.sqrt()) / (255.0 * dim.sqrt())).max(0.0);
                let hi = (norm_q + dim.sqrt()) / (255.0 * dim.sqrt());
                (lo, hi)
            }
            Metric::NormalizedL1 => {
                let mut abs: u32 = 0;
                for (&a, &b) in qx.iter().zip(q_row) {
                    abs += a.abs_diff(i32::from(b));
                }
                let lo = ((f64::from(abs) - dim) / (255.0 * dim)).max(0.0);
                let hi = (f64::from(abs) + dim) / (255.0 * dim);
                (lo, hi)
            }
            // No integer bound for Cosine: the vacuous interval.
            Metric::Cosine => (0.0, 1.0),
        };
        let dist_lo = (dist_lo * (1.0 - 1e-12)).min(1.0);
        let dist_hi = (dist_hi * (1.0 + 1e-12)).min(1.0);
        (1.0 - dist_hi, 1.0 - dist_lo)
    }
}

/// Finalizes a normalized L2 distance from a squared-difference sum —
/// the single definition shared by the scalar path, the block kernel
/// and the anytime box bound, so they can never drift.
#[inline]
#[must_use]
pub fn l2_distance_from_sq(sq: f64, dim: usize) -> f64 {
    (sq.sqrt() / (dim as f64).sqrt()).min(1.0)
}

/// Finalizes a normalized L1 distance from an absolute-difference sum.
#[inline]
#[must_use]
pub fn l1_distance_from_abs(abs: f64, dim: usize) -> f64 {
    (abs / dim as f64).min(1.0)
}

/// Finalizes a cosine distance from `Σ a·b`, `Σ a²` and `Σ b²`.
///
/// This is where the zero-norm bugfix lives: the guard is on an
/// **exactly zero squared norm** — only the true zero vector, which has
/// no direction, gets the neutral `0.5`. The old per-pair code compared
/// the *norm* against `f64::EPSILON`, silently snapping tiny-but-valid
/// vectors (norm ≤ ~2.2e-16) to `0.5` as well. A denormal-underflow
/// `0/0` (NaN) also resolves to the neutral value instead of poisoning
/// the clamp.
#[inline]
#[must_use]
pub fn cosine_distance_from_parts(dot: f64, a_norm_sq: f64, b_norm_sq: f64) -> f64 {
    if a_norm_sq == 0.0 || b_norm_sq == 0.0 {
        // A zero vector is equidistant from everything.
        return 0.5;
    }
    let cos = dot / (a_norm_sq.sqrt() * b_norm_sq.sqrt());
    if cos.is_nan() {
        // Both norms underflowed to a zero product: no direction left.
        0.5
    } else {
        ((1.0 - cos) / 2.0).clamp(0.0, 1.0)
    }
}

/// `Σ a²` when `metric` needs it (`Cosine`), else `0.0` — hoisted out
/// of the row loop so the candidate norm is computed once per gallery
/// instead of once per pair.
#[inline]
fn cosine_norm_sq(metric: Metric, x: &[f64]) -> f64 {
    match metric {
        Metric::Cosine => x.iter().map(|a| a * a).sum(),
        _ => 0.0,
    }
}

/// Scalar reference distance over pre-validated equal-length slices —
/// the per-pair path [`FeatureVector::distance`] delegates to after its
/// dimension check. Kept in this module so every metric formula has
/// exactly one home.
#[must_use]
pub fn pair_distance(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dim = a.len();
    match metric {
        Metric::NormalizedL2 => {
            let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            l2_distance_from_sq(sq, dim)
        }
        Metric::NormalizedL1 => {
            let abs: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
            l1_distance_from_abs(abs, dim)
        }
        Metric::Cosine => {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na_sq: f64 = a.iter().map(|x| x * x).sum();
            let nb_sq: f64 = b.iter().map(|y| y * y).sum();
            cosine_distance_from_parts(dot, na_sq, nb_sq)
        }
    }
}

/// Distance lower bound from a point to an axis-aligned box
/// (`lo`/`hi` per dimension) — the anytime membership upper bound's
/// geometric core. Per dimension the gap is
/// `g = max(0, lo − x, x − hi)`; gaps finalize through the same
/// functions as exact distances, so `box_bound ≤ dist(x, y)` holds
/// **bitwise** for every `y` inside the box (subtraction, `max`,
/// ordered summation, `sqrt` and division are all monotone).
/// `Cosine` has no useful box bound and returns `0.0`.
#[must_use]
pub fn box_bound_distance(metric: Metric, x: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    let dim = x.len();
    match metric {
        Metric::NormalizedL2 => {
            let sq: f64 = x
                .iter()
                .zip(lo.iter().zip(hi))
                .map(|(&x, (&l, &h))| {
                    let g = (l - x).max(x - h).max(0.0);
                    g * g
                })
                .sum();
            l2_distance_from_sq(sq, dim)
        }
        Metric::NormalizedL1 => {
            let abs: f64 = x
                .iter()
                .zip(lo.iter().zip(hi))
                .map(|(&x, (&l, &h))| (l - x).max(x - h).max(0.0))
                .sum();
            l1_distance_from_abs(abs, dim)
        }
        Metric::Cosine => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: [Metric; 3] = [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine];

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    fn block(rows: &[FeatureVector]) -> FeatureBlock {
        FeatureBlock::build("test", rows.iter()).unwrap()
    }

    /// Deterministic pseudo-random rows without pulling `rand` in.
    fn rows(dim: usize, n: usize, seed: u64) -> Vec<FeatureVector> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| fv(&(0..dim).map(|_| next()).collect::<Vec<f64>>()))
            .collect()
    }

    #[test]
    fn block_scores_match_scalar_bitwise() {
        for dim in [1, 2, 7, 8, 9, 64] {
            let gallery = rows(dim, 21, 0xE0 + dim as u64);
            let cand = rows(dim, 1, 99)[0].clone();
            let b = block(&gallery);
            for m in METRICS {
                let k = Kernel::prepare(m, dim).unwrap();
                let mut out = vec![0.0; gallery.len()];
                k.score_into(&cand, &b, &mut out).unwrap();
                for (row, sim) in gallery.iter().zip(&out) {
                    let scalar = cand.similarity(row, m).unwrap();
                    assert_eq!(scalar.to_bits(), sim.to_bits(), "{m:?} dim={dim}");
                }
                let max = k.score_max(&cand, &b).unwrap();
                let scalar_max = out.iter().fold(0.0f64, |a, &s| a.max(s));
                assert_eq!(scalar_max.to_bits(), max.to_bits());
            }
        }
    }

    #[test]
    fn quantized_max_is_bitwise_exact_and_prunes() {
        let dim = 32;
        let gallery = rows(dim, 120, 7);
        let cand = rows(dim, 1, 8)[0].clone();
        let b = block(&gallery);
        for m in [Metric::NormalizedL2, Metric::NormalizedL1] {
            let k = Kernel::prepare(m, dim).unwrap();
            let exact = k.score_max(&cand, &b).unwrap();
            let (q, pruned) = k.score_max_quantized(&cand, &b).unwrap();
            assert_eq!(exact.to_bits(), q.to_bits(), "{m:?}");
            assert!(pruned > 0, "{m:?}: a 120-row random gallery must prune");
        }
    }

    #[test]
    fn cosine_quantized_falls_back_to_exact() {
        let dim = 16;
        let gallery = rows(dim, 40, 3);
        let cand = rows(dim, 1, 4)[0].clone();
        let b = block(&gallery);
        let k = Kernel::prepare(Metric::Cosine, dim).unwrap();
        let (q, pruned) = k.score_max_quantized(&cand, &b).unwrap();
        assert_eq!(pruned, 0);
        assert_eq!(k.score_max(&cand, &b).unwrap().to_bits(), q.to_bits());
    }

    #[test]
    fn prefilter_topk_has_full_recall() {
        let dim = 24;
        let gallery = rows(dim, 90, 11);
        let cand = rows(dim, 1, 12)[0].clone();
        let b = block(&gallery);
        for m in [Metric::NormalizedL2, Metric::NormalizedL1] {
            let k = Kernel::prepare(m, dim).unwrap();
            let mut sims = vec![0.0; gallery.len()];
            k.score_into(&cand, &b, &mut sims).unwrap();
            let mut exact_order: Vec<usize> = (0..gallery.len()).collect();
            exact_order.sort_by(|&i, &j| sims[j].total_cmp(&sims[i]));
            for kk in [1, 5, 10] {
                let survivors = k.prefilter_topk(&cand, &b, kk).unwrap();
                for &top in &exact_order[..kk] {
                    assert!(survivors.contains(&top), "{m:?} k={kk} lost row {top}");
                }
            }
        }
    }

    #[test]
    fn mismatched_gallery_fails_once_with_the_gallery_id() {
        let err = FeatureBlock::build("cell-17@t3", [&fv(&[0.1, 0.2]), &fv(&[0.3])]).unwrap_err();
        match &err {
            Error::GalleryDimensionMismatch {
                gallery,
                expected,
                found,
                row,
            } => {
                assert_eq!(gallery, "cell-17@t3");
                assert_eq!((*expected, *found, *row), (2, 1, 1));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("cell-17@t3"));
    }

    #[test]
    fn empty_block_scores_zero_membership() {
        let b = FeatureBlock::build("empty", std::iter::empty::<&FeatureVector>()).unwrap();
        assert!(b.is_empty());
        let k = Kernel::prepare(Metric::NormalizedL2, 4).unwrap();
        let cand = fv(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(k.score_max(&cand, &b).unwrap(), 0.0);
        assert_eq!(k.score_max_quantized(&cand, &b).unwrap(), (0.0, 0));
        k.score_into(&cand, &b, &mut []).unwrap();
    }

    #[test]
    fn dimension_mismatch_is_reported_once_per_gallery() {
        let b = block(&rows(3, 5, 1));
        let k = Kernel::prepare(Metric::NormalizedL2, 4).unwrap();
        let cand = fv(&[0.1, 0.2, 0.3, 0.4]);
        assert!(matches!(
            k.score_max(&cand, &b),
            Err(Error::DimensionMismatch { left: 4, right: 3 })
        ));
        assert!(Kernel::prepare(Metric::Cosine, 0).is_err());
    }

    #[test]
    fn f32_path_tracks_exact_path() {
        let dim = 48;
        let gallery = rows(dim, 33, 5);
        let cand = rows(dim, 1, 6)[0].clone();
        let b = block(&gallery);
        for m in METRICS {
            let k = Kernel::prepare(m, dim).unwrap();
            let mut exact = vec![0.0f64; gallery.len()];
            let mut approx = vec![0.0f32; gallery.len()];
            k.score_into(&cand, &b, &mut exact).unwrap();
            k.score_into_f32(&cand, &b, &mut approx).unwrap();
            for (e, a) in exact.iter().zip(&approx) {
                assert!((e - f64::from(*a)).abs() < 1e-5, "{m:?}: {e} vs {a}");
            }
        }
    }

    #[test]
    fn cosine_guard_fires_only_on_the_true_zero_vector() {
        // Tiny but valid: norm far below f64::EPSILON (the old guard's
        // snap threshold), yet a direction exists — similarity to
        // itself must be exactly 1.
        let tiny = FeatureVector::new(vec![1e-30, 0.0]).unwrap();
        assert_eq!(tiny.distance(&tiny, Metric::Cosine).unwrap(), 0.0);
        assert_eq!(tiny.similarity(&tiny, Metric::Cosine).unwrap(), 1.0);
        // The true zero vector still gets the neutral distance.
        let zero = fv(&[0.0, 0.0]);
        assert_eq!(zero.distance(&tiny, Metric::Cosine).unwrap(), 0.5);
        assert_eq!(zero.distance(&zero, Metric::Cosine).unwrap(), 0.5);
        // Denormal underflow (norm² underflows to 0) resolves to the
        // guard, not NaN.
        let denormal = FeatureVector::new(vec![1e-320, 0.0]).unwrap();
        let d = denormal.distance(&denormal, Metric::Cosine).unwrap();
        assert!(!d.is_nan());
    }

    #[test]
    fn box_bound_never_exceeds_any_in_box_distance() {
        let dim = 6;
        let gallery = rows(dim, 30, 21);
        let cand = rows(dim, 1, 22)[0].clone();
        let mut lo = gallery[0].components().to_vec();
        let mut hi = lo.clone();
        for g in &gallery[1..] {
            for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(g.components()) {
                *l = l.min(c);
                *h = h.max(c);
            }
        }
        for m in METRICS {
            let bound = box_bound_distance(m, cand.components(), &lo, &hi);
            for g in &gallery {
                let d = cand.distance(g, m).unwrap();
                assert!(bound <= d, "{m:?}: bound {bound} > dist {d}");
            }
        }
    }

    #[test]
    fn kernel_mode_parses_and_displays() {
        for (s, m) in [
            ("scalar", KernelMode::Scalar),
            ("block", KernelMode::Block),
            ("quantized", KernelMode::Quantized),
        ] {
            assert_eq!(s.parse::<KernelMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("warp".parse::<KernelMode>().is_err());
        assert_eq!(KernelMode::default(), KernelMode::Block);
    }
}
