//! Identity newtypes: electronic identities (EIDs), visual identities
//! (VIDs), and ground-truth person identifiers.
//!
//! The paper's E-data carries *electronic identities* such as WiFi MAC
//! addresses or IMSIs; we model an [`Eid`] as a 48-bit MAC address. *Visual
//! identities* are the handles attached to human figures extracted from
//! video; a [`Vid`] is an opaque index into the visual gallery. The
//! synthetic world additionally knows the ground-truth [`PersonId`] that
//! both identities belong to — algorithms must never look at it except for
//! scoring accuracy.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An electronic identity: a 48-bit WiFi MAC address (the paper also
/// mentions IMSIs; any 48-bit token works).
///
/// `Eid` is a cheap `Copy` newtype ordered by its raw numeric value, so it
/// can serve directly as a map key or a sort key in the MapReduce shuffle.
///
/// # Examples
///
/// ```
/// use ev_core::Eid;
///
/// let eid: Eid = "aa:bb:cc:00:01:02".parse().unwrap();
/// assert_eq!(eid.to_string(), "aa:bb:cc:00:01:02");
/// assert_eq!(Eid::from_u64(0xaabbcc000102), eid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Eid(u64);

impl Eid {
    /// Mask of the 48 significant bits of a MAC address.
    const MAC_MASK: u64 = 0xffff_ffff_ffff;

    /// Creates an EID from the low 48 bits of `raw`.
    ///
    /// Bits above the 48th are silently discarded, mirroring how a MAC
    /// address is stored in a `u64`.
    #[must_use]
    pub const fn from_u64(raw: u64) -> Self {
        Eid(raw & Self::MAC_MASK)
    }

    /// Returns the raw 48-bit value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the six octets of the MAC address, most significant first.
    #[must_use]
    pub const fn octets(self) -> [u8; 6] {
        let v = self.0;
        [
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ]
    }

    /// Whether the address has the locally-administered bit set (bit 1 of
    /// the first octet). Synthetic datasets typically generate
    /// locally-administered addresses to avoid colliding with vendor OUIs.
    #[must_use]
    pub const fn is_locally_administered(self) -> bool {
        (self.octets()[0] & 0b10) != 0
    }
}

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for Eid {
    type Err = Error;

    /// Parses a colon- or dash-separated MAC address such as
    /// `"aa:bb:cc:dd:ee:ff"` or `"AA-BB-CC-DD-EE-FF"`.
    fn from_str(s: &str) -> Result<Self> {
        let sep = if s.contains(':') { ':' } else { '-' };
        let mut value: u64 = 0;
        let mut count = 0;
        for part in s.split(sep) {
            if part.len() != 2 {
                return Err(Error::ParseIdentity {
                    input: s.to_owned(),
                    reason: "each octet must be exactly two hex digits",
                });
            }
            let octet = u8::from_str_radix(part, 16).map_err(|_| Error::ParseIdentity {
                input: s.to_owned(),
                reason: "octet is not valid hexadecimal",
            })?;
            value = (value << 8) | u64::from(octet);
            count += 1;
        }
        if count != 6 {
            return Err(Error::ParseIdentity {
                input: s.to_owned(),
                reason: "a MAC address has exactly six octets",
            });
        }
        Ok(Eid(value))
    }
}

impl From<u64> for Eid {
    fn from(raw: u64) -> Self {
        Eid::from_u64(raw)
    }
}

/// A visual identity: the handle of one tracked human figure in the video
/// corpus.
///
/// VIDs are opaque indices; the appearance feature vector behind a VID is
/// owned by the visual substrate (`ev-vision`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Vid(u64);

impl Vid {
    /// Creates a VID from a raw index.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Vid(raw)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VID#{}", self.0)
    }
}

impl From<u64> for Vid {
    fn from(raw: u64) -> Self {
        Vid(raw)
    }
}

/// Ground-truth person identifier used only by the synthetic world and the
/// accuracy scorer — never by the matching algorithms themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PersonId(u64);

impl PersonId {
    /// Creates a person identifier from a raw index.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PersonId(raw)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Derives the canonical synthetic EID for this person: a
    /// locally-administered MAC in the `02:xx:...` range.
    ///
    /// The mapping is injective for indices below 2^40, far beyond any
    /// dataset size used here.
    #[must_use]
    pub const fn canonical_eid(self) -> Eid {
        Eid::from_u64(0x02_00_00_00_00_00 | (self.0 & 0xff_ffff_ffff))
    }

    /// Derives the canonical synthetic VID for this person (used as the
    /// ground-truth gallery key; real VIDs are assigned per detection).
    #[must_use]
    pub const fn canonical_vid(self) -> Vid {
        Vid::new(self.0)
    }
}

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u64> for PersonId {
    fn from(raw: u64) -> Self {
        PersonId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eid_roundtrips_through_display_and_parse() {
        let eid = Eid::from_u64(0x0123_4567_89ab);
        let text = eid.to_string();
        assert_eq!(text, "01:23:45:67:89:ab");
        let back: Eid = text.parse().unwrap();
        assert_eq!(back, eid);
    }

    #[test]
    fn eid_parses_dash_separated_and_uppercase() {
        let eid: Eid = "AA-BB-CC-DD-EE-FF".parse().unwrap();
        assert_eq!(eid.as_u64(), 0xaabb_ccdd_eeff);
    }

    #[test]
    fn eid_parse_rejects_malformed_input() {
        assert!("aa:bb:cc:dd:ee".parse::<Eid>().is_err(), "five octets");
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<Eid>().is_err(), "seven");
        assert!("aa:bb:cc:dd:ee:f".parse::<Eid>().is_err(), "short octet");
        assert!("zz:bb:cc:dd:ee:ff".parse::<Eid>().is_err(), "non-hex");
        assert!("".parse::<Eid>().is_err(), "empty");
    }

    #[test]
    fn eid_masks_to_48_bits() {
        let eid = Eid::from_u64(u64::MAX);
        assert_eq!(eid.as_u64(), 0xffff_ffff_ffff);
    }

    #[test]
    fn eid_octets_are_big_endian() {
        let eid = Eid::from_u64(0x0102_0304_0506);
        assert_eq!(eid.octets(), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn canonical_eid_is_locally_administered_and_injective() {
        let a = PersonId::new(17).canonical_eid();
        let b = PersonId::new(18).canonical_eid();
        assert!(a.is_locally_administered());
        assert_ne!(a, b);
    }

    #[test]
    fn vid_and_person_display() {
        assert_eq!(Vid::new(5).to_string(), "VID#5");
        assert_eq!(PersonId::new(5).to_string(), "P5");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(Eid::from_u64(1) < Eid::from_u64(2));
        assert!(Vid::new(1) < Vid::new(2));
        assert!(PersonId::new(1) < PersonId::new(2));
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let eid = Eid::from_u64(42);
        let json = serde_json::to_string(&eid).unwrap();
        assert_eq!(json, "42");
        let back: Eid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, eid);
    }
}
