//! Domain model for the EV-Matching system.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: electronic identities ([`Eid`]), visual identities ([`Vid`]),
//! ground-truth persons ([`PersonId`]), planar geometry ([`geometry`]), the
//! discrete time model ([`time`]), the gridded surveillance region with
//! vague-zone classification ([`region`]), appearance feature vectors and
//! their distance metrics ([`feature`]), the EV-Scenario abstraction
//! ([`scenario`]), and the partition-refinement data structure at the heart
//! of EID set splitting ([`partition`]).
//!
//! The types here are deliberately free of any algorithmic policy: the
//! matching algorithms live in `ev-matching`, the synthetic substrates in
//! `ev-mobility` / `ev-sensing` / `ev-vision`, and the parallel execution
//! engine in `ev-mapreduce`.
//!
//! # Example
//!
//! ```
//! use ev_core::{Eid, Vid, scenario::{EScenario, ZoneAttr}, region::GridRegion};
//! use ev_core::geometry::Point;
//!
//! // A 1000 m x 1000 m region split into 100 m cells, with a 10 m vague band.
//! let region = GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap();
//! let cell = region.cell_at(Point::new(250.0, 730.0)).unwrap();
//!
//! let mut esc = EScenario::new(cell, 42.into());
//! esc.insert(Eid::from_u64(7), ZoneAttr::Inclusive);
//! assert!(esc.contains(Eid::from_u64(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod feature;
pub mod geometry;
pub mod ids;
pub mod kernel;
pub mod partition;
pub mod region;
pub mod scenario;
pub mod time;

pub use error::{Error, Result};
pub use feature::FeatureVector;
pub use ids::{Eid, PersonId, Vid};
pub use kernel::{FeatureBlock, Kernel, KernelMode};
pub use region::{CellId, GridRegion};
pub use scenario::{EScenario, EvScenario, ScenarioId, VScenario, ZoneAttr};
pub use time::{TimeRange, Timestamp};
