//! Planar geometry used by the mobility model and the gridded region.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or position) in the surveillance plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.dx * d.dx + d.dy * d.dy
    }

    /// Linear interpolation: returns the point a fraction `t` of the way
    /// from `self` to `other` (`t` in `[0, 1]` stays on the segment; other
    /// values extrapolate).
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Clamps the point into the axis-aligned rectangle `rect`.
    #[must_use]
    pub fn clamped(self, rect: Rect) -> Point {
        Point::new(
            self.x.clamp(rect.min.x, rect.max.x),
            self.y.clamp(rect.min.y, rect.max.y),
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A displacement between two points, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    /// x component in metres.
    pub dx: f64,
    /// y component in metres.
    pub dy: f64,
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { dx: 0.0, dy: 0.0 };

    /// Creates a vector from components.
    #[must_use]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vector { dx, dy }
    }

    /// Euclidean norm (length) of the vector.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.dx.hypot(self.dy)
    }

    /// Returns a vector with the same direction and unit length, or the
    /// zero vector if this vector is (numerically) zero.
    #[must_use]
    pub fn normalized(self) -> Vector {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vector::ZERO
        } else {
            Vector::new(self.dx / n, self.dy / n)
        }
    }

    /// Dot product with `other`.
    #[must_use]
    pub fn dot(self, other: Vector) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.dx + other.dx, self.dy + other.dy)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.dx - other.dx, self.dy - other.dy)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, k: f64) -> Vector {
        Vector::new(self.dx * k, self.dy * k)
    }
}

/// An axis-aligned rectangle, closed on all sides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, normalizing the
    /// corner order.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the rectangle `[0, width] x [0, height]`.
    #[must_use]
    pub fn from_size(width: f64, height: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(width, height))
    }

    /// Width of the rectangle in metres.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle in metres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether `p` lies inside the rectangle (boundary inclusive).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The centre point of the rectangle.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns the rectangle shrunk by `margin` metres on every side, or
    /// `None` if the margin would invert it.
    ///
    /// This is how a scenario cell derives its *inclusive zone*: the region
    /// far enough from the border that electronic noise cannot have drifted
    /// the reading in from a neighbouring cell (paper §IV-C, Fig. 2).
    #[must_use]
    pub fn shrunk(&self, margin: f64) -> Option<Rect> {
        let r = Rect {
            min: Point::new(self.min.x + margin, self.min.y + margin),
            max: Point::new(self.max.x - margin, self.max.y - margin),
        };
        if r.min.x <= r.max.x && r.min.y <= r.max.y {
            Some(r)
        } else {
            None
        }
    }

    /// Distance from `p` to the nearest edge of the rectangle; positive for
    /// interior points, zero on the border, and negative outside (the
    /// distance to the rectangle itself, negated).
    #[must_use]
    pub fn signed_border_distance(&self, p: Point) -> f64 {
        if self.contains(p) {
            let dx = (p.x - self.min.x).min(self.max.x - p.x);
            let dy = (p.y - self.min.y).min(self.max.y - p.y);
            dx.min(dy)
        } else {
            let cx = p.x.clamp(self.min.x, self.max.x);
            let cy = p.y.clamp(self.min.y, self.max.y);
            -p.distance(Point::new(cx, cy))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn vector_normalization() {
        let v = Vector::new(3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vector::ZERO.normalized(), Vector::ZERO);
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 2.0) + Vector::new(3.0, 4.0);
        assert_eq!(p, Point::new(4.0, 6.0));
        let v = Point::new(4.0, 6.0) - Point::new(1.0, 2.0);
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(v * 2.0, Vector::new(6.0, 8.0));
        assert!((v.dot(v) - v.norm() * v.norm()).abs() < 1e-9);
    }

    #[test]
    fn rect_normalizes_corners_and_measures() {
        let r = Rect::new(Point::new(5.0, 7.0), Point::new(1.0, 3.0));
        assert_eq!(r.min, Point::new(1.0, 3.0));
        assert_eq!(r.max, Point::new(5.0, 7.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 16.0);
        assert_eq!(r.center(), Point::new(3.0, 5.0));
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::from_size(10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn rect_shrunk_produces_inclusive_zone() {
        let r = Rect::from_size(100.0, 100.0);
        let inner = r.shrunk(10.0).unwrap();
        assert_eq!(inner.min, Point::new(10.0, 10.0));
        assert_eq!(inner.max, Point::new(90.0, 90.0));
        assert!(r.shrunk(60.0).is_none(), "over-shrinking inverts the rect");
    }

    #[test]
    fn signed_border_distance_signs() {
        let r = Rect::from_size(100.0, 100.0);
        assert!((r.signed_border_distance(Point::new(50.0, 50.0)) - 50.0).abs() < 1e-12);
        assert!((r.signed_border_distance(Point::new(5.0, 50.0)) - 5.0).abs() < 1e-12);
        assert_eq!(r.signed_border_distance(Point::new(0.0, 50.0)), 0.0);
        assert!((r.signed_border_distance(Point::new(-3.0, 50.0)) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamped_point_enters_rect() {
        let r = Rect::from_size(10.0, 10.0);
        assert_eq!(Point::new(-5.0, 20.0).clamped(r), Point::new(0.0, 10.0));
        assert_eq!(Point::new(5.0, 5.0).clamped(r), Point::new(5.0, 5.0));
    }
}
