//! Error types shared across the EV-Matching workspace.

use std::fmt;

/// A specialized [`Result`](std::result::Result) with [`Error`] as the error
/// type, used throughout the `ev-core` crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing or manipulating core domain values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A geometric or region parameter was not strictly positive, was NaN,
    /// or otherwise outside its legal domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A point lies outside the surveillance region.
    OutOfRegion {
        /// The x coordinate of the offending point.
        x: f64,
        /// The y coordinate of the offending point.
        y: f64,
    },
    /// A cell identifier does not exist in the region it was used with.
    UnknownCell {
        /// The raw cell index that failed to resolve.
        index: usize,
    },
    /// Two feature vectors of differing dimensionality were compared.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A gallery handed to [`FeatureBlock::build`] holds rows of
    /// differing dimensionality, detected once at block construction
    /// instead of per pair inside the scoring loop.
    ///
    /// [`FeatureBlock::build`]: crate::kernel::FeatureBlock::build
    GalleryDimensionMismatch {
        /// The gallery's identity (e.g. a scenario id), so the failure
        /// names its source.
        gallery: String,
        /// Dimensionality of the gallery's first row.
        expected: usize,
        /// Dimensionality of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A textual identity (e.g. a MAC address) failed to parse.
    ParseIdentity {
        /// The input that failed to parse.
        input: String,
        /// Why parsing failed.
        reason: &'static str,
    },
    /// An operation on an EID partition referenced an EID that is not a
    /// member of the partition's universe.
    UnknownEid {
        /// The foreign EID.
        eid: crate::ids::Eid,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::OutOfRegion { x, y } => {
                write!(f, "point ({x}, {y}) lies outside the surveillance region")
            }
            Error::UnknownCell { index } => write!(f, "cell index {index} does not exist"),
            Error::DimensionMismatch { left, right } => write!(
                f,
                "feature vectors have mismatched dimensions ({left} vs {right})"
            ),
            Error::GalleryDimensionMismatch {
                gallery,
                expected,
                found,
                row,
            } => write!(
                f,
                "gallery {gallery} row {row} has dimension {found}, expected {expected}"
            ),
            Error::ParseIdentity { input, reason } => {
                write!(f, "cannot parse identity from {input:?}: {reason}")
            }
            Error::UnknownEid { eid } => {
                write!(f, "EID {eid} is not part of this partition's universe")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Eid;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidParameter {
            name: "cell_size",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("cell_size"));
        assert!(e.to_string().contains("must be positive"));

        let e = Error::OutOfRegion { x: -1.0, y: 2.0 };
        assert!(e.to_string().contains("(-1, 2)"));

        let e = Error::DimensionMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));

        let e = Error::UnknownEid {
            eid: Eid::from_u64(9),
        };
        assert!(e.to_string().contains("universe"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::UnknownCell { index: 3 });
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let a = Error::UnknownCell { index: 1 };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Error::UnknownCell { index: 2 });
    }
}
