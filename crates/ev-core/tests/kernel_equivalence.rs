//! Property suite for the similarity kernel (DESIGN.md §9): the block
//! path must reproduce the scalar per-pair path **bitwise** across all
//! three metrics and arbitrary dimensionalities, and the quantized
//! prefilter must keep exact maxima and full top-k recall.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::kernel::{FeatureBlock, Kernel};
use proptest::prelude::*;

const METRICS: [Metric; 3] = [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine];

fn metric_of(pick: u8) -> Metric {
    METRICS[pick as usize % METRICS.len()]
}

/// A gallery of `n` rows of dimension `dim`, plus a candidate: random
/// components in `[0, 1]`, with the degenerate all-zero and all-one
/// rows mixed in (they exercise the cosine zero-norm guard and the
/// `min(1.0)` clamp of the L metrics).
fn world(dim: usize, n: usize, raw: &[f64]) -> (Vec<FeatureVector>, FeatureVector) {
    let mut it = raw.iter().copied().cycle();
    let mut rows: Vec<FeatureVector> = (0..n)
        .map(|_| FeatureVector::from_clamped((0..dim).map(|_| it.next().unwrap()).collect()))
        .collect();
    rows.push(FeatureVector::from_clamped(vec![0.0; dim]));
    rows.push(FeatureVector::from_clamped(vec![1.0; dim]));
    let cand = FeatureVector::from_clamped((0..dim).map(|_| it.next().unwrap()).collect());
    (rows, cand)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch block scores are bitwise the scalar per-pair similarities,
    /// for every metric, at random dims in `1..512`.
    #[test]
    fn block_is_bitwise_equal_to_scalar(
        dim in 1usize..512,
        n in 1usize..24,
        raw in prop::collection::vec(-0.25f64..1.25, 64..256),
        pick in any::<u32>(),
    ) {
        let (rows, cand) = world(dim, n, &raw);
        let metric = metric_of(pick as u8);
        let block = FeatureBlock::build("prop", rows.iter()).expect("uniform dims");
        let kernel = Kernel::prepare(metric, dim).expect("dim >= 1");
        let mut sims = vec![0.0; rows.len()];
        kernel.score_into(&cand, &block, &mut sims).expect("shapes agree");
        for (row, sim) in rows.iter().zip(&sims) {
            let scalar = cand.similarity(row, metric).expect("same dim");
            prop_assert_eq!(scalar.to_bits(), sim.to_bits());
        }
        // The membership fold (max from 0.0) agrees bitwise too.
        let scalar_max = sims.iter().fold(0.0f64, |a, &s| a.max(s));
        let max = kernel.score_max(&cand, &block).expect("shapes agree");
        prop_assert_eq!(scalar_max.to_bits(), max.to_bits());
    }

    /// The quantized prefilter never changes the returned membership:
    /// pruning only removes rows *proven* unable to hold the maximum.
    #[test]
    fn quantized_max_is_bitwise_exact(
        dim in 1usize..128,
        n in 1usize..64,
        raw in prop::collection::vec(0.0f64..1.0, 64..256),
        pick in any::<u32>(),
    ) {
        let (rows, cand) = world(dim, n, &raw);
        let metric = metric_of(pick as u8);
        let block = FeatureBlock::build("prop", rows.iter()).expect("uniform dims");
        let kernel = Kernel::prepare(metric, dim).expect("dim >= 1");
        let exact = kernel.score_max(&cand, &block).expect("shapes agree");
        let (quant, pruned) = kernel
            .score_max_quantized(&cand, &block)
            .expect("shapes agree");
        prop_assert_eq!(exact.to_bits(), quant.to_bits());
        prop_assert!(pruned < rows.len(), "at least the argmax row survives");
    }

    /// Recall 1.0 at the reported k: the prefilter's survivor set
    /// contains the exact top-k rows for every k.
    #[test]
    fn prefilter_survivors_contain_the_exact_topk(
        dim in 1usize..96,
        n in 2usize..48,
        k in 1usize..8,
        raw in prop::collection::vec(0.0f64..1.0, 64..256),
        pick in any::<u32>(),
    ) {
        let (rows, cand) = world(dim, n, &raw);
        let metric = metric_of(pick as u8);
        let block = FeatureBlock::build("prop", rows.iter()).expect("uniform dims");
        let kernel = Kernel::prepare(metric, dim).expect("dim >= 1");
        let mut sims = vec![0.0; rows.len()];
        kernel.score_into(&cand, &block, &mut sims).expect("shapes agree");
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&i, &j| sims[j].total_cmp(&sims[i]));
        let k = k.min(rows.len());
        let survivors = kernel.prefilter_topk(&cand, &block, k).expect("shapes agree");
        for &top in &order[..k] {
            prop_assert!(
                survivors.contains(&top),
                "k={} lost exact top row {} (sim {})", k, top, sims[top]
            );
        }
    }

    /// The f32 mirror tracks the exact path within f32-scale error —
    /// it is the approximate fast path, never the report path.
    #[test]
    fn f32_mirror_stays_close(
        dim in 1usize..256,
        n in 1usize..24,
        raw in prop::collection::vec(0.0f64..1.0, 64..256),
        pick in any::<u32>(),
    ) {
        let (rows, cand) = world(dim, n, &raw);
        let metric = metric_of(pick as u8);
        let block = FeatureBlock::build("prop", rows.iter()).expect("uniform dims");
        let kernel = Kernel::prepare(metric, dim).expect("dim >= 1");
        let mut exact = vec![0.0f64; rows.len()];
        let mut approx = vec![0.0f32; rows.len()];
        kernel.score_into(&cand, &block, &mut exact).expect("shapes agree");
        kernel.score_into_f32(&cand, &block, &mut approx).expect("shapes agree");
        for (e, a) in exact.iter().zip(&approx) {
            prop_assert!((e - f64::from(*a)).abs() < 1e-4, "{} vs {}", e, a);
        }
    }
}
