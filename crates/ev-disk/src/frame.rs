//! Length-prefixed, CRC-guarded frames — the shared envelope of segment
//! records and manifest entries.
//!
//! A frame is `len u32 (LE) | payload[len] | crc u32 (LE)` where `crc`
//! is the CRC-32 of the payload only. Zero-length payloads are illegal
//! (no record or manifest entry is empty), which makes a zero-filled
//! tail — the one way a crash can *extend* a file on some filesystems —
//! unambiguously invalid rather than an infinite run of empty frames.
//!
//! [`next_frame`] classifies what it finds so callers can implement the
//! recovery state machine of `DESIGN.md` §6: a frame that cannot be
//! completed before end-of-file is a **torn tail** (the expected residue
//! of a crash mid-append — truncate and continue), while a damaged frame
//! *followed by more bytes* is **corruption** (a crash cannot rewrite
//! the middle of an append-only file).

use crate::crc::crc32;
use crate::format::MAX_FRAME_PAYLOAD;

/// What the parser found at a file position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, checksum-valid frame.
    Frame {
        /// Byte offset of the payload within the scanned slice.
        payload_start: usize,
        /// Payload length in bytes.
        payload_len: usize,
        /// Offset of the byte after the frame's trailing CRC.
        next_pos: usize,
    },
    /// Clean end of input exactly on a frame boundary.
    End,
    /// The bytes from `at` onwards cannot hold a complete frame, or hold
    /// exactly one checksum-damaged frame that runs to end-of-file:
    /// the signature of an append interrupted by a crash.
    Torn {
        /// Offset of the last good frame boundary.
        at: usize,
    },
    /// A damaged frame with more data behind it — not explicable by a
    /// crashed append; the file was corrupted in place.
    Damaged {
        /// Offset of the last good frame boundary.
        at: usize,
        /// Human-readable description of the damage.
        reason: &'static str,
    },
}

/// Appends one frame around `payload` to `out`.
///
/// # Panics
///
/// Panics if `payload` is empty or longer than
/// [`MAX_FRAME_PAYLOAD`] — both are programming errors, not data
/// conditions (the codec never produces them).
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payloads are 1..=MAX_FRAME_PAYLOAD bytes"
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Classifies the bytes at `pos` (a frame boundary) of `bytes`.
#[must_use]
pub fn next_frame(bytes: &[u8], pos: usize) -> FrameEvent {
    let remaining = bytes.len() - pos;
    if remaining == 0 {
        return FrameEvent::End;
    }
    if remaining < 4 {
        return FrameEvent::Torn { at: pos };
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_FRAME_PAYLOAD {
        // An impossible length destroys all framing behind it, so there
        // is no way to tell a partially persisted (or zero-extended)
        // tail from deeper damage; treat it as the crash-shaped case
        // and end the frame stream here.
        return FrameEvent::Torn { at: pos };
    }
    if remaining < 4 + len + 4 {
        return FrameEvent::Torn { at: pos };
    }
    let payload_start = pos + 4;
    let stored = u32::from_le_bytes(
        bytes[payload_start + len..payload_start + len + 4]
            .try_into()
            .unwrap(),
    );
    if stored != crc32(&bytes[payload_start..payload_start + len]) {
        let next_pos = payload_start + len + 4;
        return if next_pos == bytes.len() {
            // The final frame: a torn write can persist the length and
            // part of the payload, leaving stale bytes under the CRC.
            FrameEvent::Torn { at: pos }
        } else {
            FrameEvent::Damaged {
                at: pos,
                reason: "frame checksum mismatch",
            }
        };
    }
    FrameEvent::Frame {
        payload_start,
        payload_len: len,
        next_pos: payload_start + len + 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_frames() -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first payload");
        write_frame(&mut buf, b"second");
        buf
    }

    #[test]
    fn frames_round_trip() {
        let buf = two_frames();
        let FrameEvent::Frame {
            payload_start,
            payload_len,
            next_pos,
        } = next_frame(&buf, 0)
        else {
            panic!("first frame");
        };
        assert_eq!(
            &buf[payload_start..payload_start + payload_len],
            b"first payload"
        );
        let FrameEvent::Frame { next_pos: end, .. } = next_frame(&buf, next_pos) else {
            panic!("second frame");
        };
        assert_eq!(next_frame(&buf, end), FrameEvent::End);
    }

    #[test]
    fn every_truncation_is_torn_at_the_right_boundary() {
        let buf = two_frames();
        let first_end = 4 + b"first payload".len() + 4;
        for cut in 0..buf.len() {
            if cut == 0 || cut == first_end {
                continue; // clean boundaries: End, not Torn
            }
            let pos = if cut < first_end { 0 } else { first_end };
            assert_eq!(
                next_frame(&buf[..cut], pos),
                FrameEvent::Torn { at: pos },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn mid_file_damage_is_corruption_tail_damage_is_torn() {
        let mut buf = two_frames();
        let first_end = 4 + b"first payload".len() + 4;
        // Flip a payload byte of the *first* frame: damaged, more data behind.
        buf[5] ^= 0xFF;
        assert!(matches!(
            next_frame(&buf, 0),
            FrameEvent::Damaged { at: 0, .. }
        ));
        buf[5] ^= 0xFF;
        // Flip a payload byte of the *last* frame: torn tail.
        let n = buf.len();
        buf[n - 6] ^= 0xFF;
        assert_eq!(
            next_frame(&buf, first_end),
            FrameEvent::Torn { at: first_end }
        );
    }

    #[test]
    fn zero_extension_is_torn() {
        let mut buf = two_frames();
        let first_end = 4 + b"first payload".len() + 4;
        let second_end = buf.len();
        buf.extend_from_slice(&[0u8; 6]);
        assert_eq!(
            next_frame(&buf, 0),
            FrameEvent::Frame {
                payload_start: 4,
                payload_len: 13,
                next_pos: first_end,
            }
        );
        // The zero tail declares a zero-length frame: invalid, torn.
        assert_eq!(
            next_frame(&buf, second_end),
            FrameEvent::Torn { at: second_end }
        );
    }
}
