//! The pinned on-disk format constants.
//!
//! These values are the normative companion to the byte-level
//! specification in `DESIGN.md` §6 ("Persistence"): the spec quotes
//! them, and the doctest below asserts the quoted bytes so the document
//! and the code cannot drift apart silently. Bump
//! [`FORMAT_VERSION`] whenever the layout changes; readers reject
//! versions they do not know.
//!
//! ```
//! // DESIGN.md §6 quotes exactly these values; this doctest pins them.
//! assert_eq!(ev_disk::format::SEGMENT_MAGIC, *b"EVSG");
//! assert_eq!(ev_disk::format::MANIFEST_MAGIC, *b"EVMF");
//! assert_eq!(ev_disk::format::FORMAT_VERSION, 1);
//! assert_eq!(ev_disk::format::KIND_E, 0);
//! assert_eq!(ev_disk::format::KIND_V, 1);
//! assert_eq!(ev_disk::format::HEADER_LEN, 8);
//! assert_eq!(ev_disk::format::FRAME_OVERHEAD, 8);
//! assert_eq!(ev_disk::format::MANIFEST_ENTRY_PAYLOAD_LEN, 57);
//! ```

/// First four bytes of every segment file: ASCII `EVSG`.
pub const SEGMENT_MAGIC: [u8; 4] = *b"EVSG";

/// First four bytes of the manifest file: ASCII `EVMF`.
pub const MANIFEST_MAGIC: [u8; 4] = *b"EVMF";

/// On-disk format version, little-endian `u16` at byte offset 4 of both
/// file kinds. Version 1 is the initial layout.
pub const FORMAT_VERSION: u16 = 1;

/// Segment-kind byte for E-Scenario segments.
pub const KIND_E: u8 = 0;

/// Segment-kind byte for V-Scenario segments.
pub const KIND_V: u8 = 1;

/// Length of both file headers:
/// `magic[4] | version u16 | kind u8 | reserved u8` for segments,
/// `magic[4] | version u16 | reserved u16` for the manifest.
pub const HEADER_LEN: usize = 8;

/// Bytes a frame adds around its payload: `len u32` before, `crc u32`
/// (CRC-32/ISO-HDLC of the payload only) after.
pub const FRAME_OVERHEAD: usize = 8;

/// Largest payload a frame may declare. Present only to stop a
/// corrupted length field from driving a multi-gigabyte allocation;
/// real records are kilobytes.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 28;

/// Fixed size of a manifest entry payload:
/// `seq u64 | kind u8 | records u64 | min_time u64 | max_time u64 |
/// min_cell u64 | max_cell u64 | file_len u64` = 8+1+8·6.
pub const MANIFEST_ENTRY_PAYLOAD_LEN: usize = 57;
