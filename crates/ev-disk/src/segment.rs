//! Immutable segment files: a header followed by framed, checksummed
//! records.
//!
//! A segment is written once, fsync'd, and never modified (recovery may
//! *truncate* one in salvage mode, nothing else). Layout:
//!
//! ```text
//! magic   [4]  "EVSG"
//! version u16  1
//! kind    u8   0 = E-Scenario records, 1 = V-Scenario records
//! reserved u8  0
//! frames…      len u32 | payload | crc32(payload) u32, one per record
//! ```
//!
//! Record payloads use the [`codec`] layouts. The writer
//! also computes the segment's cell/time bounds, which the manifest
//! stores so loads can skip segments that cannot intersect a query.

use crate::codec;
use crate::error::{DiskError, DiskResult};
use crate::format::{FORMAT_VERSION, HEADER_LEN, KIND_E, KIND_V, SEGMENT_MAGIC};
use crate::frame::{next_frame, write_frame, FrameEvent};
use ev_core::scenario::{EScenario, VScenario};

/// Which record codec a segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// E-Scenario records.
    EScenario,
    /// V-Scenario records.
    VScenario,
}

impl SegmentKind {
    /// The on-disk kind byte.
    #[must_use]
    pub fn byte(self) -> u8 {
        match self {
            SegmentKind::EScenario => KIND_E,
            SegmentKind::VScenario => KIND_V,
        }
    }

    /// Parses the on-disk kind byte.
    ///
    /// # Errors
    ///
    /// [`DiskError::Corrupt`] on an unknown byte.
    pub fn from_byte(b: u8) -> DiskResult<Self> {
        match b {
            KIND_E => Ok(SegmentKind::EScenario),
            KIND_V => Ok(SegmentKind::VScenario),
            other => Err(DiskError::corrupt(format!(
                "unknown segment kind byte {other:#04x}"
            ))),
        }
    }

    /// Single-letter tag used in segment file names (`e` / `v`).
    #[must_use]
    pub fn tag(self) -> char {
        match self {
            SegmentKind::EScenario => 'e',
            SegmentKind::VScenario => 'v',
        }
    }
}

/// Spatiotemporal bounds of the records inside one segment, tracked by
/// the writer and persisted in the manifest for load-time pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentBounds {
    /// Smallest record timestamp (tick).
    pub min_time: u64,
    /// Largest record timestamp (tick).
    pub max_time: u64,
    /// Smallest record cell index.
    pub min_cell: u64,
    /// Largest record cell index.
    pub max_cell: u64,
}

impl SegmentBounds {
    pub(crate) fn empty() -> Self {
        SegmentBounds {
            min_time: u64::MAX,
            max_time: 0,
            min_cell: u64::MAX,
            max_cell: 0,
        }
    }

    pub(crate) fn absorb(&mut self, time: u64, cell: u64) {
        self.min_time = self.min_time.min(time);
        self.max_time = self.max_time.max(time);
        self.min_cell = self.min_cell.min(cell);
        self.max_cell = self.max_cell.max(cell);
    }

    /// Whether `[min_time, max_time]` intersects the half-open tick
    /// range `[start, end)`.
    #[must_use]
    pub fn intersects_time(&self, start: u64, end: u64) -> bool {
        self.min_time < end && self.max_time >= start
    }

    /// Whether any of `cells` (raw indices) falls inside
    /// `[min_cell, max_cell]`.
    #[must_use]
    pub fn intersects_cells(&self, cells: &[u64]) -> bool {
        cells
            .iter()
            .any(|&c| c >= self.min_cell && c <= self.max_cell)
    }
}

/// The in-memory result of encoding a segment: its bytes plus the
/// metadata the manifest entry needs.
#[derive(Debug)]
pub struct EncodedSegment {
    /// Complete file contents (header + frames).
    pub bytes: Vec<u8>,
    /// Record kind.
    pub kind: SegmentKind,
    /// Number of records framed.
    pub records: u64,
    /// Cell/time bounds over all records.
    pub bounds: SegmentBounds,
}

pub(crate) fn header(kind: SegmentKind) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN);
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(kind.byte());
    bytes.push(0);
    bytes
}

/// Encodes an E-Scenario batch as one segment.
#[must_use]
pub fn encode_e_segment(scenarios: &[EScenario]) -> EncodedSegment {
    let mut bytes = header(SegmentKind::EScenario);
    let mut bounds = SegmentBounds::empty();
    for s in scenarios {
        bounds.absorb(s.time().tick(), s.cell().index() as u64);
        write_frame(&mut bytes, &codec::encode_escenario(s));
    }
    EncodedSegment {
        bytes,
        kind: SegmentKind::EScenario,
        records: scenarios.len() as u64,
        bounds,
    }
}

/// Encodes a V-Scenario batch as one segment.
#[must_use]
pub fn encode_v_segment(scenarios: &[VScenario]) -> EncodedSegment {
    let mut bytes = header(SegmentKind::VScenario);
    let mut bounds = SegmentBounds::empty();
    for s in scenarios {
        bounds.absorb(s.time().tick(), s.cell().index() as u64);
        write_frame(&mut bytes, &codec::encode_vscenario(s));
    }
    EncodedSegment {
        bytes,
        kind: SegmentKind::VScenario,
        records: scenarios.len() as u64,
        bounds,
    }
}

/// Validates a segment header and returns its kind.
///
/// # Errors
///
/// [`DiskError::Corrupt`] on a short file, wrong magic, unknown version
/// or unknown kind byte.
pub fn parse_header(bytes: &[u8]) -> DiskResult<SegmentKind> {
    if bytes.len() < HEADER_LEN {
        return Err(DiskError::corrupt(format!(
            "segment shorter than its {HEADER_LEN}-byte header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(DiskError::corrupt("segment magic is not EVSG"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(DiskError::corrupt(format!(
            "unknown segment format version {version}"
        )));
    }
    SegmentKind::from_byte(bytes[6])
}

/// Result of a tolerant scan over a segment's frames.
#[derive(Debug)]
pub struct SegmentScan {
    /// Byte offsets `(payload_start, payload_len)` of every valid frame,
    /// in file order.
    pub payloads: Vec<(usize, usize)>,
    /// The byte length of the valid prefix (header + whole frames).
    pub valid_len: usize,
    /// `Some(reason)` when the scan stopped at a damaged frame that more
    /// data follows (true corruption); `None` when it ended cleanly or
    /// at a crash-shaped torn tail.
    pub damage: Option<&'static str>,
    /// Whether a torn tail was truncated away by the scan.
    pub torn: bool,
}

/// Walks a segment's frames, stopping at the first torn or damaged one.
///
/// # Errors
///
/// [`DiskError::Corrupt`] if the header itself is invalid (there is no
/// usable prefix to salvage).
pub fn scan(bytes: &[u8]) -> DiskResult<(SegmentKind, SegmentScan)> {
    let kind = parse_header(bytes)?;
    let mut payloads = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        match next_frame(bytes, pos) {
            FrameEvent::Frame {
                payload_start,
                payload_len,
                next_pos,
            } => {
                payloads.push((payload_start, payload_len));
                pos = next_pos;
            }
            FrameEvent::End => {
                return Ok((
                    kind,
                    SegmentScan {
                        payloads,
                        valid_len: pos,
                        damage: None,
                        torn: false,
                    },
                ))
            }
            FrameEvent::Torn { at } => {
                return Ok((
                    kind,
                    SegmentScan {
                        payloads,
                        valid_len: at,
                        damage: None,
                        torn: true,
                    },
                ))
            }
            FrameEvent::Damaged { at, reason } => {
                return Ok((
                    kind,
                    SegmentScan {
                        payloads,
                        valid_len: at,
                        damage: Some(reason),
                        torn: false,
                    },
                ))
            }
        }
    }
}

/// Decodes every E-record of a fully valid segment.
///
/// # Errors
///
/// [`DiskError::Corrupt`] when the segment is not an E segment, has a
/// torn or damaged frame, or a payload fails the record codec.
pub fn decode_e_segment(bytes: &[u8]) -> DiskResult<Vec<EScenario>> {
    let (kind, scan) = scan(bytes)?;
    if kind != SegmentKind::EScenario {
        return Err(DiskError::corrupt("expected an E segment, found kind V"));
    }
    if scan.torn || scan.damage.is_some() || scan.valid_len != bytes.len() {
        return Err(DiskError::corrupt(
            scan.damage.unwrap_or("segment has a torn tail"),
        ));
    }
    scan.payloads
        .iter()
        .map(|&(start, len)| codec::decode_escenario(&bytes[start..start + len]))
        .collect()
}

/// Decodes every V-record of a fully valid segment.
///
/// # Errors
///
/// As [`decode_e_segment`], for V segments.
pub fn decode_v_segment(bytes: &[u8]) -> DiskResult<Vec<VScenario>> {
    let (kind, scan) = scan(bytes)?;
    if kind != SegmentKind::VScenario {
        return Err(DiskError::corrupt("expected a V segment, found kind E"));
    }
    if scan.torn || scan.damage.is_some() || scan.valid_len != bytes.len() {
        return Err(DiskError::corrupt(
            scan.damage.unwrap_or("segment has a torn tail"),
        ));
    }
    scan.payloads
        .iter()
        .map(|&(start, len)| codec::decode_vscenario(&bytes[start..start + len]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ids::Eid;
    use ev_core::region::CellId;
    use ev_core::scenario::ZoneAttr;
    use ev_core::time::Timestamp;

    fn scenarios() -> Vec<EScenario> {
        (0..5u64)
            .map(|i| {
                let mut s = EScenario::new(CellId::new(3 + i as usize), Timestamp::new(10 * i));
                s.insert(Eid::from_u64(i), ZoneAttr::Inclusive);
                s.insert(Eid::from_u64(100 + i), ZoneAttr::Vague);
                s
            })
            .collect()
    }

    #[test]
    fn e_segment_round_trips() {
        let original = scenarios();
        let seg = encode_e_segment(&original);
        assert_eq!(seg.records, 5);
        assert_eq!(seg.bounds.min_time, 0);
        assert_eq!(seg.bounds.max_time, 40);
        assert_eq!(seg.bounds.min_cell, 3);
        assert_eq!(seg.bounds.max_cell, 7);
        assert_eq!(decode_e_segment(&seg.bytes).unwrap(), original);
    }

    #[test]
    fn truncated_tail_is_salvageable_prefix() {
        let seg = encode_e_segment(&scenarios());
        for cut in HEADER_LEN..seg.bytes.len() {
            let (_, scan) = scan(&seg.bytes[..cut]).unwrap();
            assert!(scan.valid_len <= cut);
            assert!(scan.damage.is_none(), "truncation is torn, not damaged");
            // Every surviving payload still decodes.
            for &(start, len) in &scan.payloads {
                codec::decode_escenario(&seg.bytes[start..start + len]).unwrap();
            }
        }
    }

    #[test]
    fn header_damage_is_unrecoverable_corruption() {
        let seg = encode_e_segment(&scenarios());
        let mut bad = seg.bytes.clone();
        bad[0] = b'X';
        assert!(scan(&bad).is_err());
        let mut wrong_version = seg.bytes.clone();
        wrong_version[4] = 0xFF;
        assert!(scan(&wrong_version).is_err());
        assert!(decode_e_segment(&seg.bytes[..4]).is_err());
    }

    #[test]
    fn kind_mismatch_is_corruption() {
        let seg = encode_e_segment(&scenarios());
        assert!(decode_v_segment(&seg.bytes).is_err());
    }

    #[test]
    fn bounds_pruning_predicates() {
        let b = SegmentBounds {
            min_time: 10,
            max_time: 20,
            min_cell: 3,
            max_cell: 5,
        };
        assert!(b.intersects_time(0, 11));
        assert!(b.intersects_time(20, 25));
        assert!(!b.intersects_time(0, 10));
        assert!(!b.intersects_time(21, 30));
        assert!(b.intersects_cells(&[5, 9]));
        assert!(!b.intersects_cells(&[0, 6]));
    }
}
