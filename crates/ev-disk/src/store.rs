//! [`DiskStore`]: a directory of immutable segments plus an append-only
//! manifest, with crash-safe appends and self-healing opens.
//!
//! # Durability protocol
//!
//! An append commits in this order, fsyncing at each arrow:
//!
//! ```text
//! write segment file → fsync(segment) → fsync(dir)
//!   → append manifest entry → fsync(manifest)
//! ```
//!
//! A crash at any point leaves exactly one of two benign shapes:
//! an **orphan segment** (file on disk, no manifest entry — the append
//! never committed; recovery deletes it) or a **torn manifest tail**
//! (partial final entry — recovery truncates it, which also orphans the
//! segment it was committing). Neither shape can lose a *committed*
//! append, and neither is reported as corruption.
//!
//! Anything else — a checksum mismatch in the middle of a file, a
//! committed segment whose length disagrees with its manifest entry —
//! cannot be produced by a crashed append and is treated per
//! [`RecoveryMode`]: [`Strict`](RecoveryMode::Strict) refuses to open,
//! [`Salvage`](RecoveryMode::Salvage) keeps every record up to the
//! first bad frame and rewrites the manifest to match.

use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ev_core::region::CellId;
use ev_core::scenario::{EScenario, VScenario};
use ev_core::time::TimeRange;
use ev_store::{EScenarioStore, VideoStore};
use ev_telemetry::{names, Telemetry};
use ev_vision::cost::CostModel;

use crate::codec;
use crate::error::{DiskError, DiskResult, RecoveryError};
use crate::manifest::{self, ManifestEntry};
use crate::segment::{self, SegmentBounds, SegmentKind};

/// File name of the manifest inside a corpus directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// How strictly an open treats bytes that a crash cannot explain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Heal crash-shaped residue (torn manifest tails, orphan
    /// segments), but refuse to open on true corruption. Committed
    /// segments get a cheap existence/length check; record checksums
    /// are verified lazily at load time. This is the default.
    #[default]
    Strict,
    /// Additionally CRC-scan every committed segment up front and keep
    /// the longest valid prefix of every damaged file, rewriting the
    /// manifest to match. Loses the damaged suffix, never errors on it.
    Salvage,
}

/// What recovery found and repaired while opening a corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed manifest entries surviving the open.
    pub manifest_entries_kept: usize,
    /// Bytes cut off a torn or damaged manifest tail.
    pub manifest_bytes_truncated: u64,
    /// Uncommitted segment files deleted.
    pub orphan_segments_removed: usize,
    /// Damaged segments truncated to a valid prefix (salvage only).
    pub segments_salvaged: usize,
    /// Committed records lost to salvage truncation or dropped entries.
    pub records_dropped: u64,
}

impl RecoveryReport {
    /// Whether the open changed anything on disk.
    #[must_use]
    pub fn repaired_anything(&self) -> bool {
        self.manifest_bytes_truncated > 0
            || self.orphan_segments_removed > 0
            || self.segments_salvaged > 0
            || self.records_dropped > 0
    }
}

/// Receipt of one committed append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Entry committed for the E-Scenario batch, if it was non-empty.
    pub e_segment: Option<ManifestEntry>,
    /// Entry committed for the V-Scenario batch, if it was non-empty.
    pub v_segment: Option<ManifestEntry>,
}

/// A persistent EV corpus rooted at one directory.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
    next_seq: u64,
    recovery: RecoveryReport,
    telemetry: Telemetry,
}

pub(crate) fn fsync_dir(dir: &Path) -> DiskResult<()> {
    // Directory fsync makes the new directory entry itself durable;
    // without it a crash can lose the file name while keeping the data.
    let d = File::open(dir).map_err(|e| DiskError::io("opening directory", dir, e))?;
    d.sync_all()
        .map_err(|e| DiskError::io("fsyncing directory", dir, e))
}

fn write_durable(path: &Path, bytes: &[u8]) -> DiskResult<()> {
    let mut f = File::create(path).map_err(|e| DiskError::io("creating", path, e))?;
    f.write_all(bytes)
        .map_err(|e| DiskError::io("writing", path, e))?;
    f.sync_all().map_err(|e| DiskError::io("fsyncing", path, e))
}

fn parse_segment_file_name(name: &str) -> Option<u64> {
    // seg-NNNNNN-e.seg / seg-NNNNNN-v.seg
    let rest = name.strip_prefix("seg-")?;
    let rest = rest.strip_suffix(".seg")?;
    let (digits, tag) = rest.split_at(rest.len().checked_sub(2)?);
    if tag != "-e" && tag != "-v" {
        return None;
    }
    digits.parse().ok()
}

impl DiskStore {
    /// Creates a fresh, empty corpus at `dir` (made if missing).
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] if the directory cannot be prepared, or if it
    /// already holds a manifest (refusing to clobber an existing
    /// corpus).
    pub fn create(dir: impl Into<PathBuf>) -> DiskResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| DiskError::io("creating directory", &dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(DiskError::io(
                "creating manifest",
                &manifest_path,
                std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "directory already holds a corpus",
                ),
            ));
        }
        write_durable(&manifest_path, &manifest::manifest_header())?;
        fsync_dir(&dir)?;
        Ok(DiskStore {
            dir,
            entries: Vec::new(),
            next_seq: 0,
            recovery: RecoveryReport::default(),
            telemetry: Telemetry::disabled().clone(),
        })
    }

    /// Opens an existing corpus in [`RecoveryMode::Strict`].
    ///
    /// # Errors
    ///
    /// See [`DiskStore::open_with`].
    pub fn open(dir: impl Into<PathBuf>) -> DiskResult<Self> {
        DiskStore::open_with(dir, RecoveryMode::Strict, Telemetry::disabled())
    }

    /// Opens `dir` if it holds a corpus, otherwise creates one.
    ///
    /// # Errors
    ///
    /// As [`DiskStore::create`] / [`DiskStore::open`].
    pub fn open_or_create(dir: impl Into<PathBuf>) -> DiskResult<Self> {
        let dir = dir.into();
        if dir.join(MANIFEST_FILE).exists() {
            DiskStore::open(dir)
        } else {
            DiskStore::create(dir)
        }
    }

    /// Opens an existing corpus, running the recovery state machine of
    /// `DESIGN.md` §6 under `mode` and recording disk telemetry on
    /// `telemetry`.
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] on filesystem failures (including a missing
    /// manifest), [`DiskError::Corrupt`] on damage that `mode` does not
    /// permit healing.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        mode: RecoveryMode,
        telemetry: &Telemetry,
    ) -> DiskResult<Self> {
        let started = Instant::now();
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = fs::read(&manifest_path)
            .map_err(|e| DiskError::io("reading manifest", &manifest_path, e))?;
        let scan = manifest::scan_manifest(&bytes)?;

        let mut report = RecoveryReport::default();
        let mut entries = scan.entries;
        let mut manifest_dirty = false;

        if let Some(reason) = scan.damage {
            match mode {
                RecoveryMode::Strict => {
                    return Err(RecoveryError::ManifestDamaged {
                        reason: reason.to_string(),
                        entries_kept: entries.len(),
                    }
                    .into())
                }
                RecoveryMode::Salvage => {
                    report.manifest_bytes_truncated += (bytes.len() - scan.valid_len) as u64;
                    manifest_dirty = true;
                }
            }
        } else if scan.torn {
            // Crash-shaped tail: truncate in both modes.
            report.manifest_bytes_truncated += (bytes.len() - scan.valid_len) as u64;
            let f = OpenOptions::new()
                .write(true)
                .open(&manifest_path)
                .map_err(|e| DiskError::io("opening manifest for truncate", &manifest_path, e))?;
            f.set_len(scan.valid_len as u64)
                .map_err(|e| DiskError::io("truncating manifest", &manifest_path, e))?;
            f.sync_all()
                .map_err(|e| DiskError::io("fsyncing manifest", &manifest_path, e))?;
        }

        // Validate committed segments against their entries.
        let mut kept = Vec::with_capacity(entries.len());
        for entry in entries.drain(..) {
            let path = dir.join(entry.file_name());
            match mode {
                RecoveryMode::Strict => {
                    let meta = fs::metadata(&path)
                        .map_err(|e| DiskError::io("stating committed segment", &path, e))?;
                    if meta.len() != entry.file_len {
                        return Err(RecoveryError::SegmentLengthMismatch {
                            segment: entry.file_name(),
                            committed: entry.file_len,
                            actual: meta.len(),
                        }
                        .into());
                    }
                    kept.push(entry);
                }
                RecoveryMode::Salvage => match Self::salvage_segment(&path, entry, &mut report)? {
                    Some(repaired) => {
                        if repaired != entry {
                            manifest_dirty = true;
                        }
                        kept.push(repaired);
                    }
                    None => manifest_dirty = true,
                },
            }
        }

        // Delete uncommitted (orphan) segment files.
        let live: BTreeSet<u64> = kept.iter().map(|e| e.seq).collect();
        let mut max_seq_seen = kept.iter().map(|e| e.seq + 1).max().unwrap_or(0);
        let listing =
            fs::read_dir(&dir).map_err(|e| DiskError::io("listing directory", &dir, e))?;
        for item in listing {
            let item = item.map_err(|e| DiskError::io("listing directory", &dir, e))?;
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = parse_segment_file_name(name) else {
                continue;
            };
            if !live.contains(&seq) {
                let path = dir.join(name);
                fs::remove_file(&path)
                    .map_err(|e| DiskError::io("removing orphan segment", &path, e))?;
                report.orphan_segments_removed += 1;
                max_seq_seen = max_seq_seen.max(seq + 1);
            }
        }
        if report.orphan_segments_removed > 0 {
            fsync_dir(&dir)?;
        }

        if manifest_dirty {
            Self::rewrite_manifest(&dir, &kept)?;
        }

        report.manifest_entries_kept = kept.len();
        if telemetry.counters_on() {
            let registry = telemetry.registry();
            let truncations = u64::from(report.manifest_bytes_truncated > 0)
                + report.orphan_segments_removed as u64
                + report.segments_salvaged as u64;
            registry
                .counter(names::DISK_RECOVERY_TRUNCATIONS)
                .add(truncations);
            registry
                .gauge(names::DISK_MANIFEST_ENTRIES)
                .set(kept.len() as f64);
            registry
                .gauge(names::DISK_OPEN_SECONDS)
                .set(started.elapsed().as_secs_f64());
        }

        Ok(DiskStore {
            dir,
            entries: kept,
            next_seq: max_seq_seen,
            recovery: report,
            telemetry: telemetry.clone(),
        })
    }

    /// Re-validates one committed segment in salvage mode. Returns the
    /// (possibly repaired) entry, or `None` when nothing of the segment
    /// survives.
    fn salvage_segment(
        path: &Path,
        entry: ManifestEntry,
        report: &mut RecoveryReport,
    ) -> DiskResult<Option<ManifestEntry>> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A committed segment vanished entirely: drop the entry.
                report.records_dropped += entry.records;
                report.segments_salvaged += 1;
                return Ok(None);
            }
            Err(e) => return Err(DiskError::io("reading committed segment", path, e)),
        };
        let Ok((kind, scan)) = segment::scan(&bytes) else {
            // Unusable header: nothing salvageable.
            report.records_dropped += entry.records;
            report.segments_salvaged += 1;
            fs::remove_file(path)
                .map_err(|e| DiskError::io("removing unsalvageable segment", path, e))?;
            return Ok(None);
        };

        // Keep frames only up to the first payload the codec rejects:
        // a checksum-valid frame with a malformed payload is still
        // corruption, and everything behind it is untrustworthy.
        let mut valid_len = crate::format::HEADER_LEN;
        let mut bounds = SegmentBounds {
            min_time: u64::MAX,
            max_time: 0,
            min_cell: u64::MAX,
            max_cell: 0,
        };
        let mut records = 0u64;
        for &(start, len) in &scan.payloads {
            let payload = &bytes[start..start + len];
            let decoded = match kind {
                SegmentKind::EScenario => codec::decode_escenario(payload)
                    .map(|s| (s.time().tick(), s.cell().index() as u64)),
                SegmentKind::VScenario => codec::decode_vscenario(payload)
                    .map(|s| (s.time().tick(), s.cell().index() as u64)),
            };
            match decoded {
                Ok((time, cell)) => {
                    bounds.min_time = bounds.min_time.min(time);
                    bounds.max_time = bounds.max_time.max(time);
                    bounds.min_cell = bounds.min_cell.min(cell);
                    bounds.max_cell = bounds.max_cell.max(cell);
                    records += 1;
                    valid_len = start + len + 4;
                }
                Err(_) => break,
            }
        }

        if records == 0 {
            report.records_dropped += entry.records;
            report.segments_salvaged += 1;
            fs::remove_file(path)
                .map_err(|e| DiskError::io("removing emptied segment", path, e))?;
            return Ok(None);
        }

        let intact = valid_len == bytes.len()
            && valid_len as u64 == entry.file_len
            && records == entry.records
            && kind == entry.kind;
        if intact {
            return Ok(Some(entry));
        }

        report.segments_salvaged += 1;
        report.records_dropped += entry.records.saturating_sub(records);
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| DiskError::io("opening segment for truncate", path, e))?;
        f.set_len(valid_len as u64)
            .map_err(|e| DiskError::io("truncating segment", path, e))?;
        f.sync_all()
            .map_err(|e| DiskError::io("fsyncing segment", path, e))?;
        Ok(Some(ManifestEntry {
            seq: entry.seq,
            kind,
            records,
            bounds,
            file_len: valid_len as u64,
        }))
    }

    /// Atomically replaces the manifest with `entries` (salvage only):
    /// write a sibling temp file, fsync, rename over, fsync the dir.
    fn rewrite_manifest(dir: &Path, entries: &[ManifestEntry]) -> DiskResult<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let mut bytes = manifest::manifest_header();
        for entry in entries {
            bytes.extend_from_slice(&manifest::encode_entry_frame(entry));
        }
        write_durable(&tmp, &bytes)?;
        let final_path = dir.join(MANIFEST_FILE);
        fs::rename(&tmp, &final_path)
            .map_err(|e| DiskError::io("renaming rewritten manifest", &final_path, e))?;
        fsync_dir(dir)
    }

    /// Directs disk telemetry to `telemetry` from now on.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The corpus directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live manifest entries, in commit order.
    #[must_use]
    pub fn segments(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Total committed records of `kind`.
    #[must_use]
    pub fn record_count(&self, kind: SegmentKind) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.records)
            .sum()
    }

    /// What the open repaired.
    #[must_use]
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Durably appends one batch of E- and/or V-Scenarios, each as one
    /// new immutable segment, committing them to the manifest.
    ///
    /// Empty slices are skipped; appending two empty batches is a
    /// no-op. Records with the same `(cell, time)` as earlier ones
    /// supersede them at load time (manifest order, later wins).
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] if any write or fsync fails; the corpus stays
    /// consistent (an interrupted append is healed by the next open).
    pub fn append(
        &mut self,
        e_batch: &[EScenario],
        v_batch: &[VScenario],
    ) -> DiskResult<AppendReceipt> {
        let mut receipt = AppendReceipt {
            e_segment: None,
            v_segment: None,
        };
        if !e_batch.is_empty() {
            receipt.e_segment = Some(self.append_segment(segment::encode_e_segment(e_batch))?);
        }
        if !v_batch.is_empty() {
            receipt.v_segment = Some(self.append_segment(segment::encode_v_segment(v_batch))?);
        }
        Ok(receipt)
    }

    fn append_segment(&mut self, encoded: segment::EncodedSegment) -> DiskResult<ManifestEntry> {
        let entry = ManifestEntry {
            seq: self.next_seq,
            kind: encoded.kind,
            records: encoded.records,
            bounds: encoded.bounds,
            file_len: encoded.bytes.len() as u64,
        };
        let seg_path = self.dir.join(entry.file_name());
        write_durable(&seg_path, &encoded.bytes)?;
        fsync_dir(&self.dir)?;

        let manifest_path = self.dir.join(MANIFEST_FILE);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| DiskError::io("opening manifest for append", &manifest_path, e))?;
        f.write_all(&manifest::encode_entry_frame(&entry))
            .map_err(|e| DiskError::io("appending manifest entry", &manifest_path, e))?;
        f.sync_all()
            .map_err(|e| DiskError::io("fsyncing manifest", &manifest_path, e))?;

        self.next_seq += 1;
        self.entries.push(entry);
        if self.telemetry.counters_on() {
            let registry = self.telemetry.registry();
            registry.counter(names::DISK_SEGMENTS_WRITTEN).inc();
            registry
                .gauge(names::DISK_MANIFEST_ENTRIES)
                .set(self.entries.len() as f64);
        }
        Ok(entry)
    }

    /// Hands out the next unused segment sequence number. The caller
    /// owns the number forever: even if the segment it names is never
    /// committed, recovery deletes the orphan file without reusing the
    /// sequence (see `orphan_segment_is_removed_on_open`).
    pub(crate) fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Commits a batch of already-durable segments in one manifest
    /// append + fsync. The caller must have fsync'd the segment files
    /// *and* the directory first; a crash mid-append leaves a torn
    /// manifest tail, which the next open truncates — keeping a prefix
    /// of `entries` and orphaning the rest.
    pub(crate) fn commit_entries(&mut self, entries: &[ManifestEntry]) -> DiskResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| DiskError::io("opening manifest for append", &manifest_path, e))?;
        let mut bytes = Vec::new();
        for entry in entries {
            bytes.extend_from_slice(&manifest::encode_entry_frame(entry));
        }
        f.write_all(&bytes)
            .map_err(|e| DiskError::io("appending manifest entries", &manifest_path, e))?;
        f.sync_all()
            .map_err(|e| DiskError::io("fsyncing manifest", &manifest_path, e))?;
        self.entries.extend_from_slice(entries);
        if self.telemetry.counters_on() {
            let registry = self.telemetry.registry();
            registry
                .counter(names::DISK_SEGMENTS_WRITTEN)
                .add(entries.len() as u64);
            registry
                .gauge(names::DISK_MANIFEST_ENTRIES)
                .set(self.entries.len() as f64);
        }
        Ok(())
    }

    /// Reads, checks and decodes the segments selected by `filter`
    /// (over the manifest's per-segment bounds), returning the decoded
    /// record payload groups in commit order.
    fn load_segments(
        &self,
        kind: SegmentKind,
        mut filter: impl FnMut(&ManifestEntry) -> bool,
    ) -> DiskResult<Vec<Vec<u8>>> {
        let mut files = Vec::new();
        let mut opened = 0u64;
        let mut pruned = 0u64;
        let mut bytes_read = 0u64;
        let mut records = 0u64;
        for entry in self.entries.iter().filter(|e| e.kind == kind) {
            if !filter(entry) {
                pruned += 1;
                continue;
            }
            let path = self.dir.join(entry.file_name());
            let bytes = fs::read(&path).map_err(|e| DiskError::io("reading segment", &path, e))?;
            if bytes.len() as u64 != entry.file_len {
                return Err(RecoveryError::SegmentLengthMismatch {
                    segment: entry.file_name(),
                    committed: entry.file_len,
                    actual: bytes.len() as u64,
                }
                .into());
            }
            opened += 1;
            bytes_read += bytes.len() as u64;
            records += entry.records;
            files.push(bytes);
        }
        if self.telemetry.counters_on() {
            let registry = self.telemetry.registry();
            registry.counter(names::DISK_SEGMENTS_OPENED).add(opened);
            registry.counter(names::DISK_SEGMENTS_PRUNED).add(pruned);
            registry.counter(names::DISK_BYTES_READ).add(bytes_read);
            registry.counter(names::DISK_RECORDS_READ).add(records);
        }
        Ok(files)
    }

    /// Loads every committed E-Scenario into an in-memory
    /// [`EScenarioStore`], later segments superseding earlier ones on
    /// `(cell, time)` collisions.
    ///
    /// # Errors
    ///
    /// [`DiskError`] on read failures or any frame/record that fails
    /// its checksum or codec.
    pub fn load_estore(&self) -> DiskResult<EScenarioStore> {
        self.load_estore_where(|_| true)
    }

    /// As [`DiskStore::load_estore`], but skips whole segments whose
    /// manifest bounds cannot intersect `cells` × `time` — the
    /// cell-range pruning path. Records inside surviving segments are
    /// *not* re-filtered; pruning is a coarse, manifest-only fast path
    /// and the result may still contain out-of-range records.
    ///
    /// # Errors
    ///
    /// As [`DiskStore::load_estore`].
    pub fn load_estore_pruned(
        &self,
        cells: &[CellId],
        time: TimeRange,
    ) -> DiskResult<EScenarioStore> {
        let raw: Vec<u64> = cells.iter().map(|c| c.index() as u64).collect();
        let (start, end) = (time.start.tick(), time.end.tick());
        self.load_estore_where(|entry| {
            entry.bounds.intersects_time(start, end) && entry.bounds.intersects_cells(&raw)
        })
    }

    fn load_estore_where(
        &self,
        filter: impl FnMut(&ManifestEntry) -> bool,
    ) -> DiskResult<EScenarioStore> {
        let mut span = self.telemetry.span("disk_load_estore", "disk");
        let files = self.load_segments(SegmentKind::EScenario, filter)?;
        let mut scenarios = Vec::new();
        for bytes in &files {
            scenarios.extend(segment::decode_e_segment(bytes)?);
        }
        span.arg("records", serde_json::Value::Int(scenarios.len() as i128));
        Ok(EScenarioStore::from_scenarios(scenarios))
    }

    /// Loads every committed V-Scenario into an in-memory
    /// [`VideoStore`] charging costs against `cost`.
    ///
    /// # Errors
    ///
    /// As [`DiskStore::load_estore`].
    pub fn load_video(&self, cost: CostModel) -> DiskResult<VideoStore> {
        let mut span = self.telemetry.span("disk_load_video", "disk");
        let files = self.load_segments(SegmentKind::VScenario, |_| true)?;
        let mut scenarios = Vec::new();
        for bytes in &files {
            scenarios.extend(segment::decode_v_segment(bytes)?);
        }
        span.arg("records", serde_json::Value::Int(scenarios.len() as i128));
        Ok(VideoStore::new(scenarios, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ids::Eid;
    use ev_core::scenario::ZoneAttr;
    use ev_core::time::Timestamp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ev-disk-store-{tag}-{}-{n}", std::process::id()))
    }

    fn e(cell: usize, time: u64, eid: u64) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        s.insert(Eid::from_u64(eid), ZoneAttr::Inclusive);
        s
    }

    #[test]
    fn create_append_reopen_load() {
        let dir = temp_dir("roundtrip");
        let mut store = DiskStore::create(&dir).unwrap();
        store.append(&[e(0, 1, 10), e(1, 2, 11)], &[]).unwrap();
        store.append(&[e(2, 3, 12)], &[]).unwrap();

        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.segments().len(), 2);
        assert!(!reopened.recovery().repaired_anything());
        let estore = reopened.load_estore().unwrap();
        assert_eq!(estore.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_segments_supersede_earlier_on_collision() {
        let dir = temp_dir("supersede");
        let mut store = DiskStore::create(&dir).unwrap();
        store.append(&[e(0, 1, 10)], &[]).unwrap();
        store.append(&[e(0, 1, 99)], &[]).unwrap(); // same (cell, time)
        let estore = DiskStore::open(&dir).unwrap().load_estore().unwrap();
        assert_eq!(estore.len(), 1);
        let only = estore.iter().next().unwrap();
        assert!(only.contains(Eid::from_u64(99)));
        assert!(!only.contains(Eid::from_u64(10)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_segment_is_removed_on_open() {
        let dir = temp_dir("orphan");
        let mut store = DiskStore::create(&dir).unwrap();
        store.append(&[e(0, 1, 10)], &[]).unwrap();
        // Simulate a crash after the segment write but before the
        // manifest append: a fully written, uncommitted segment.
        let orphan = segment::encode_e_segment(&[e(5, 5, 5)]);
        fs::write(dir.join("seg-000007-e.seg"), &orphan.bytes).unwrap();

        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.recovery().orphan_segments_removed, 1);
        assert_eq!(reopened.segments().len(), 1);
        assert!(!dir.join("seg-000007-e.seg").exists());
        // The orphan's sequence number is never reused for a live file.
        assert_eq!(reopened.next_seq, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_load_skips_disjoint_segments() {
        let dir = temp_dir("prune");
        let mut store = DiskStore::create(&dir).unwrap();
        store.append(&[e(0, 10, 1)], &[]).unwrap();
        store.append(&[e(9, 500, 2)], &[]).unwrap();
        let store = DiskStore::open(&dir).unwrap();
        let pruned = store
            .load_estore_pruned(
                &[CellId::new(0)],
                TimeRange::new(Timestamp::new(0), Timestamp::new(100)),
            )
            .unwrap();
        assert_eq!(pruned.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_create_is_refused() {
        let dir = temp_dir("recreate");
        DiskStore::create(&dir).unwrap();
        assert!(DiskStore::create(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
