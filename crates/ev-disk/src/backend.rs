//! [`DiskBackend`]: a loaded persistent corpus behind the
//! [`StoreBackend`] trait.
//!
//! Opening a backend replays the manifest, decodes every committed
//! segment, and materializes the same in-memory stores an all-RAM run
//! would build — so every pipeline downstream of
//! [`StoreBackend`] is byte-for-byte oblivious to where the corpus
//! came from.

use std::path::Path;

use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::Telemetry;
use ev_vision::cost::CostModel;

use crate::error::DiskResult;
use crate::store::{DiskStore, RecoveryMode, RecoveryReport};

/// A persistent corpus, opened, recovered and fully loaded.
#[derive(Debug)]
pub struct DiskBackend {
    store: DiskStore,
    estore: EScenarioStore,
    video: VideoStore,
}

impl DiskBackend {
    /// Opens the corpus at `dir` in [`RecoveryMode::Strict`] and loads
    /// both stores, charging video costs against `cost`.
    ///
    /// # Errors
    ///
    /// Any [`crate::DiskError`] from the open, recovery or load.
    pub fn open(dir: impl AsRef<Path>, cost: CostModel) -> DiskResult<Self> {
        DiskBackend::open_with(dir, cost, RecoveryMode::Strict, Telemetry::disabled())
    }

    /// As [`DiskBackend::open`], with an explicit recovery mode and a
    /// telemetry handle that receives the disk load spans and counters.
    ///
    /// # Errors
    ///
    /// Any [`crate::DiskError`] from the open, recovery or load.
    pub fn open_with(
        dir: impl AsRef<Path>,
        cost: CostModel,
        mode: RecoveryMode,
        telemetry: &Telemetry,
    ) -> DiskResult<Self> {
        let store = DiskStore::open_with(dir.as_ref(), mode, telemetry)?;
        let estore = store.load_estore()?;
        let video = store.load_video(cost)?;
        Ok(DiskBackend {
            store,
            estore,
            video,
        })
    }

    /// The underlying segment store (for appends or inspection).
    #[must_use]
    pub fn disk(&self) -> &DiskStore {
        &self.store
    }

    /// What recovery repaired while opening.
    #[must_use]
    pub fn recovery(&self) -> &RecoveryReport {
        self.store.recovery()
    }
}

impl StoreBackend for DiskBackend {
    fn estore(&self) -> &EScenarioStore {
        &self.estore
    }

    fn video(&self) -> &VideoStore {
        &self.video
    }
}
