//! Persistent segmented storage for EV-Matching corpora.
//!
//! The paper's pipelines assume the E-data and the video corpus are
//! simply *there*; a real deployment has to put them somewhere durable.
//! This crate is that somewhere: a directory of immutable,
//! length-prefixed, CRC-32-checksummed **segment** files of E/V-Scenario
//! records, committed by an append-only fsync'd **manifest** that names
//! every live segment together with its record count and cell/time
//! bounds. Opening a corpus replays the manifest, sequential-reads the
//! committed segments, and hands the decoded scenarios to the ordinary
//! in-memory stores — so everything downstream of
//! [`ev_store::StoreBackend`] is identical between a RAM-built and a
//! disk-loaded corpus.
//!
//! The full byte-level format, the append durability protocol, and the
//! recovery state machine are specified in `DESIGN.md` §6
//! ("Persistence"); [`format`](mod@format) pins the magic numbers that spec quotes.
//! No external dependencies: the codec ([`codec`]), checksum
//! ([`crc`]) and framing ([`frame`]) are hand-rolled and documented
//! byte by byte.
//!
//! # Quick tour
//!
//! ```
//! use ev_core::{EScenario, ZoneAttr, Eid};
//! use ev_core::region::CellId;
//! use ev_core::time::Timestamp;
//! use ev_disk::DiskStore;
//!
//! let dir = std::env::temp_dir().join(format!("ev-disk-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = DiskStore::create(&dir).unwrap();
//!
//! let mut s = EScenario::new(CellId::new(0), Timestamp::new(5));
//! s.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
//! store.append(&[s], &[]).unwrap();           // durable once it returns
//!
//! let reopened = DiskStore::open(&dir).unwrap();   // replay + recover
//! assert_eq!(reopened.load_estore().unwrap().len(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! # Crash safety
//!
//! [`DiskStore::append`] orders its writes so that a crash at any
//! instant leaves only *crash-shaped* residue — an uncommitted orphan
//! segment or a torn manifest tail — which the next
//! [`DiskStore::open`] heals silently. Damage a crash cannot explain
//! (a flipped byte mid-file) is refused in
//! [`RecoveryMode::Strict`] and truncated away in
//! [`RecoveryMode::Salvage`]. The fault-injection suite in
//! `tests/recovery.rs` cuts and corrupts corpora at every byte
//! boundary to hold that line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod crc;
pub mod error;
pub mod format;
pub mod frame;
pub mod ingest;
pub mod manifest;
pub mod segment;
pub mod store;

pub use backend::DiskBackend;
pub use error::{DiskError, DiskResult, RecoveryError};
pub use ingest::{CheckpointPolicy, IngestWriter, StreamAppendReceipt};
pub use manifest::ManifestEntry;
pub use segment::{SegmentBounds, SegmentKind};
pub use store::{AppendReceipt, DiskStore, RecoveryMode, RecoveryReport, MANIFEST_FILE};
