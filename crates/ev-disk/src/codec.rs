//! The fixed little-endian record codec.
//!
//! Every multi-byte integer is little-endian; floats are stored as the
//! little-endian bytes of their IEEE-754 `to_bits` representation, so a
//! round trip is bit-exact (NaN payloads included). The byte-for-byte
//! layout is specified in `DESIGN.md` §6 and pinned by
//! [`format`](crate::format); this module is the only place that reads
//! or writes record payloads.
//!
//! # Record payloads
//!
//! An **E-record** serialises one [`EScenario`]:
//!
//! ```text
//! time   u64    snapshot tick
//! cell   u64    grid-cell index
//! count  u32    number of (EID, attr) memberships
//! count × { eid u64, attr u8 }      in ascending EID order
//! ```
//!
//! `attr` is `0` for [`ZoneAttr::Inclusive`], `1` for
//! [`ZoneAttr::Vague`]; any other value is corruption.
//!
//! A **V-record** serialises one [`VScenario`]:
//!
//! ```text
//! time   u64    snapshot tick
//! cell   u64    grid-cell index
//! count  u32    number of detections
//! count × { vid u64, dim u32, dim × f64 }   in detection order
//! ```

use crate::error::{DiskError, DiskResult};
use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as the little-endian bytes of its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads little-endian primitives from a byte slice, tracking position.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> DiskResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DiskError::corrupt(format!(
                "record truncated: need {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> DiskResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> DiskResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> DiskResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> DiskResult<f64> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }
}

/// Encodes one E-Scenario into a record payload.
#[must_use]
pub fn encode_escenario(s: &EScenario) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(s.time().tick());
    w.put_u64(s.cell().index() as u64);
    w.put_u32(s.len() as u32);
    for (eid, attr) in s.iter() {
        w.put_u64(eid.as_u64());
        w.put_u8(match attr {
            ZoneAttr::Inclusive => 0,
            ZoneAttr::Vague => 1,
        });
    }
    w.into_bytes()
}

/// Decodes one E-Scenario record payload.
///
/// # Errors
///
/// [`DiskError::Corrupt`] on a truncated payload, an unknown zone
/// attribute, or trailing garbage after the declared memberships.
pub fn decode_escenario(payload: &[u8]) -> DiskResult<EScenario> {
    let mut r = ByteReader::new(payload);
    let time = Timestamp::new(r.get_u64("e-record time")?);
    let cell = CellId::new(r.get_u64("e-record cell")? as usize);
    let count = r.get_u32("e-record membership count")?;
    let mut s = EScenario::new(cell, time);
    for _ in 0..count {
        let eid = Eid::from_u64(r.get_u64("e-record eid")?);
        let attr = match r.get_u8("e-record zone attr")? {
            0 => ZoneAttr::Inclusive,
            1 => ZoneAttr::Vague,
            other => {
                return Err(DiskError::corrupt(format!(
                    "unknown zone attribute byte {other:#04x}"
                )))
            }
        };
        s.insert(eid, attr);
    }
    if r.remaining() != 0 {
        return Err(DiskError::corrupt(format!(
            "{} trailing bytes after e-record payload",
            r.remaining()
        )));
    }
    Ok(s)
}

/// Encodes one V-Scenario into a record payload.
#[must_use]
pub fn encode_vscenario(s: &VScenario) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(s.time().tick());
    w.put_u64(s.cell().index() as u64);
    w.put_u32(s.len() as u32);
    for d in s.detections() {
        w.put_u64(d.vid.as_u64());
        w.put_u32(d.feature.dim() as u32);
        for &c in d.feature.components() {
            w.put_f64(c);
        }
    }
    w.into_bytes()
}

/// Decodes one V-Scenario record payload.
///
/// # Errors
///
/// [`DiskError::Corrupt`] on a truncated payload, a feature vector the
/// domain model rejects, or trailing garbage.
pub fn decode_vscenario(payload: &[u8]) -> DiskResult<VScenario> {
    let mut r = ByteReader::new(payload);
    let time = Timestamp::new(r.get_u64("v-record time")?);
    let cell = CellId::new(r.get_u64("v-record cell")? as usize);
    let count = r.get_u32("v-record detection count")?;
    let mut s = VScenario::new(cell, time);
    for _ in 0..count {
        let vid = Vid::new(r.get_u64("v-record vid")?);
        let dim = r.get_u32("v-record feature dim")? as usize;
        let mut components = Vec::with_capacity(dim);
        for _ in 0..dim {
            components.push(r.get_f64("v-record feature component")?);
        }
        let feature = FeatureVector::new(components)
            .map_err(|e| DiskError::corrupt(format!("invalid stored feature vector: {e}")))?;
        s.push(Detection { vid, feature });
    }
    if r.remaining() != 0 {
        return Err(DiskError::corrupt(format!(
            "{} trailing bytes after v-record payload",
            r.remaining()
        )));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escenario() -> EScenario {
        let mut s = EScenario::new(CellId::new(7), Timestamp::new(42));
        s.insert(Eid::from_u64(0xaabb_cc00_0102), ZoneAttr::Inclusive);
        s.insert(Eid::from_u64(3), ZoneAttr::Vague);
        s
    }

    fn vscenario() -> VScenario {
        let mut s = VScenario::new(CellId::new(7), Timestamp::new(42));
        s.push(Detection {
            vid: Vid::new(9),
            feature: FeatureVector::new(vec![0.25, 0.5, 1.0]).unwrap(),
        });
        s.push(Detection {
            vid: Vid::new(11),
            feature: FeatureVector::new(vec![0.0]).unwrap(),
        });
        s
    }

    #[test]
    fn escenario_round_trips() {
        let s = escenario();
        assert_eq!(decode_escenario(&encode_escenario(&s)).unwrap(), s);
        let empty = EScenario::new(CellId::new(0), Timestamp::new(0));
        assert_eq!(decode_escenario(&encode_escenario(&empty)).unwrap(), empty);
    }

    #[test]
    fn vscenario_round_trips_bit_exact() {
        let s = vscenario();
        assert_eq!(decode_vscenario(&encode_vscenario(&s)).unwrap(), s);
    }

    #[test]
    fn e_record_layout_is_the_documented_bytes() {
        let mut s = EScenario::new(CellId::new(2), Timestamp::new(1));
        s.insert(Eid::from_u64(5), ZoneAttr::Vague);
        let bytes = encode_escenario(&s);
        let mut expect = Vec::new();
        expect.extend_from_slice(&1u64.to_le_bytes()); // time
        expect.extend_from_slice(&2u64.to_le_bytes()); // cell
        expect.extend_from_slice(&1u32.to_le_bytes()); // count
        expect.extend_from_slice(&5u64.to_le_bytes()); // eid
        expect.push(1); // vague
        assert_eq!(bytes, expect);
    }

    #[test]
    fn truncation_and_garbage_are_corruption_not_panics() {
        let bytes = encode_escenario(&escenario());
        for cut in 0..bytes.len() {
            assert!(decode_escenario(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_escenario(&padded).is_err(), "trailing byte");
        let mut bad_attr = bytes;
        let last = bad_attr.len() - 1;
        bad_attr[last] = 9;
        assert!(decode_escenario(&bad_attr).is_err(), "unknown attr");
    }

    #[test]
    fn v_record_truncation_is_corruption() {
        let bytes = encode_vscenario(&vscenario());
        for cut in 0..bytes.len() {
            assert!(decode_vscenario(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
