//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The reflected polynomial `0xEDB88320` with initial value and final
//! XOR of `0xFFFF_FFFF` — the same parametrisation as zlib, PNG and
//! Ethernet, so segment files can be checked with any standard CRC-32
//! tool. The 256-entry table is computed at compile time; no external
//! crate is involved.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"segment payload");
        let mut flipped = b"segment payload".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} flip must change the CRC");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
