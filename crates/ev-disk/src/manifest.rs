//! The append-only manifest: the single source of truth for which
//! segments are live.
//!
//! The manifest is the only mutable file in a corpus directory, and it
//! is only ever *appended to* (recovery in salvage mode may atomically
//! rewrite it via rename). Layout:
//!
//! ```text
//! magic   [4]  "EVMF"
//! version u16  1
//! reserved u16 0
//! frames…      one 57-byte entry payload per committed segment
//! ```
//!
//! Each entry commits one segment. An append becomes durable in this
//! order: segment bytes → `fsync(segment)` → `fsync(dir)` → manifest
//! entry → `fsync(manifest)`. A crash between those steps leaves either
//! an orphan segment (no entry — deleted on recovery) or a torn
//! manifest tail (truncated on recovery); it can never leave an entry
//! that points at missing or incomplete data.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{DiskError, DiskResult};
use crate::format::{FORMAT_VERSION, HEADER_LEN, MANIFEST_ENTRY_PAYLOAD_LEN, MANIFEST_MAGIC};
use crate::frame::{next_frame, write_frame, FrameEvent};
use crate::segment::{SegmentBounds, SegmentKind};

/// One committed segment, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Monotonic segment sequence number (also in the file name).
    pub seq: u64,
    /// Record kind of the segment.
    pub kind: SegmentKind,
    /// Number of records the segment holds.
    pub records: u64,
    /// Cell/time bounds over the segment's records.
    pub bounds: SegmentBounds,
    /// Expected byte length of the segment file.
    pub file_len: u64,
}

impl ManifestEntry {
    /// File name of the segment this entry commits
    /// (`seg-000042-e.seg`).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("seg-{:06}-{}.seg", self.seq, self.kind.tag())
    }

    /// Encodes the fixed 57-byte entry payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.seq);
        w.put_u8(self.kind.byte());
        w.put_u64(self.records);
        w.put_u64(self.bounds.min_time);
        w.put_u64(self.bounds.max_time);
        w.put_u64(self.bounds.min_cell);
        w.put_u64(self.bounds.max_cell);
        w.put_u64(self.file_len);
        let bytes = w.into_bytes();
        debug_assert_eq!(bytes.len(), MANIFEST_ENTRY_PAYLOAD_LEN);
        bytes
    }

    /// Decodes one entry payload.
    ///
    /// # Errors
    ///
    /// [`DiskError::Corrupt`] on a wrong payload length or unknown kind.
    pub fn decode(payload: &[u8]) -> DiskResult<Self> {
        if payload.len() != MANIFEST_ENTRY_PAYLOAD_LEN {
            return Err(DiskError::corrupt(format!(
                "manifest entry payload is {} bytes, expected {MANIFEST_ENTRY_PAYLOAD_LEN}",
                payload.len()
            )));
        }
        let mut r = ByteReader::new(payload);
        let seq = r.get_u64("manifest seq")?;
        let kind = SegmentKind::from_byte(r.get_u8("manifest kind")?)?;
        let records = r.get_u64("manifest record count")?;
        let bounds = SegmentBounds {
            min_time: r.get_u64("manifest min_time")?,
            max_time: r.get_u64("manifest max_time")?,
            min_cell: r.get_u64("manifest min_cell")?,
            max_cell: r.get_u64("manifest max_cell")?,
        };
        let file_len = r.get_u64("manifest file_len")?;
        Ok(ManifestEntry {
            seq,
            kind,
            records,
            bounds,
            file_len,
        })
    }
}

/// The 8-byte manifest file header.
#[must_use]
pub fn manifest_header() -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes
}

/// Encodes one framed manifest entry, ready to append.
#[must_use]
pub fn encode_entry_frame(entry: &ManifestEntry) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(&mut out, &entry.encode());
    out
}

/// Result of scanning a manifest file.
#[derive(Debug)]
pub struct ManifestScan {
    /// Entries of the valid prefix, in append order.
    pub entries: Vec<ManifestEntry>,
    /// Byte length of the valid prefix (header + whole frames).
    pub valid_len: usize,
    /// `Some(reason)` when the scan stopped at mid-file damage rather
    /// than a clean end or a crash-shaped torn tail.
    pub damage: Option<String>,
    /// Whether a torn tail follows the valid prefix.
    pub torn: bool,
}

/// Scans a manifest, collecting the longest valid prefix of entries.
///
/// Torn tails are reported, not errors — they are the expected residue
/// of a crash during an append. A frame that parses but whose payload
/// is not a valid entry is treated like a damaged frame.
///
/// # Errors
///
/// [`DiskError::Corrupt`] if the header itself is invalid: with no
/// trustworthy header there is no prefix worth keeping.
pub fn scan_manifest(bytes: &[u8]) -> DiskResult<ManifestScan> {
    if bytes.len() < HEADER_LEN {
        return Err(DiskError::corrupt(format!(
            "manifest shorter than its {HEADER_LEN}-byte header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..4] != MANIFEST_MAGIC {
        return Err(DiskError::corrupt("manifest magic is not EVMF"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(DiskError::corrupt(format!(
            "unknown manifest format version {version}"
        )));
    }
    let mut entries = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        match next_frame(bytes, pos) {
            FrameEvent::Frame {
                payload_start,
                payload_len,
                next_pos,
            } => {
                match ManifestEntry::decode(&bytes[payload_start..payload_start + payload_len]) {
                    Ok(entry) => {
                        entries.push(entry);
                        pos = next_pos;
                    }
                    Err(e) => {
                        // A checksum-valid frame holding a malformed
                        // entry cannot come from a torn append.
                        return Ok(ManifestScan {
                            entries,
                            valid_len: pos,
                            damage: Some(format!("undecodable manifest entry: {e}")),
                            torn: false,
                        });
                    }
                }
            }
            FrameEvent::End => {
                return Ok(ManifestScan {
                    entries,
                    valid_len: pos,
                    damage: None,
                    torn: false,
                })
            }
            FrameEvent::Torn { at } => {
                return Ok(ManifestScan {
                    entries,
                    valid_len: at,
                    damage: None,
                    torn: true,
                })
            }
            FrameEvent::Damaged { at, reason } => {
                return Ok(ManifestScan {
                    entries,
                    valid_len: at,
                    damage: Some(reason.to_string()),
                    torn: false,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> ManifestEntry {
        ManifestEntry {
            seq,
            kind: if seq.is_multiple_of(2) {
                SegmentKind::EScenario
            } else {
                SegmentKind::VScenario
            },
            records: 10 + seq,
            bounds: SegmentBounds {
                min_time: seq,
                max_time: seq + 100,
                min_cell: 0,
                max_cell: 24,
            },
            file_len: 1000 + seq,
        }
    }

    fn manifest_with(n: u64) -> Vec<u8> {
        let mut bytes = manifest_header();
        for seq in 0..n {
            bytes.extend_from_slice(&encode_entry_frame(&entry(seq)));
        }
        bytes
    }

    #[test]
    fn entries_round_trip() {
        let e = entry(42);
        assert_eq!(ManifestEntry::decode(&e.encode()).unwrap(), e);
        assert_eq!(e.encode().len(), MANIFEST_ENTRY_PAYLOAD_LEN);
        assert_eq!(e.file_name(), "seg-000042-e.seg");
        assert_eq!(entry(43).file_name(), "seg-000043-v.seg");
    }

    #[test]
    fn scan_reads_all_entries() {
        let bytes = manifest_with(4);
        let scan = scan_manifest(&bytes).unwrap();
        assert_eq!(scan.entries.len(), 4);
        assert_eq!(scan.valid_len, bytes.len());
        assert!(!scan.torn);
        assert!(scan.damage.is_none());
        assert_eq!(scan.entries[3], entry(3));
    }

    #[test]
    fn every_truncation_keeps_the_whole_prefix() {
        let bytes = manifest_with(3);
        let frame_len = encode_entry_frame(&entry(0)).len();
        for cut in HEADER_LEN..bytes.len() {
            let scan = scan_manifest(&bytes[..cut]).unwrap();
            let whole = (cut - HEADER_LEN) / frame_len;
            assert_eq!(scan.entries.len(), whole, "cut at {cut}");
            assert_eq!(scan.valid_len, HEADER_LEN + whole * frame_len);
            assert!(scan.damage.is_none());
        }
    }

    #[test]
    fn header_damage_is_an_error() {
        let bytes = manifest_with(1);
        assert!(scan_manifest(&bytes[..6]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(scan_manifest(&bad).is_err());
        let mut ver = bytes;
        ver[4] = 9;
        assert!(scan_manifest(&ver).is_err());
    }

    #[test]
    fn mid_file_flip_is_damage_not_torn() {
        let mut bytes = manifest_with(3);
        // Flip a payload byte of the first entry.
        bytes[HEADER_LEN + 6] ^= 0xFF;
        let scan = scan_manifest(&bytes).unwrap();
        assert!(scan.entries.is_empty());
        assert!(scan.damage.is_some());
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, HEADER_LEN);
    }
}
