//! Error type of the persistent backend.

use std::fmt;
use std::io;
use std::path::Path;

/// Result alias for disk operations.
pub type DiskResult<T> = Result<T, DiskError>;

/// Damage found while opening or reading a corpus that the requested
/// [`RecoveryMode`](crate::RecoveryMode) refuses to heal.
///
/// Unlike the free-text [`DiskError::Corrupt`] (reserved for malformed
/// bytes with no structure to report), recovery refusals carry the
/// fields a caller needs to decide what to do next — retry under
/// `Salvage`, alert with the exact segment name, or surface how much
/// data survives — without parsing a message string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The manifest is damaged **mid-file** — not a torn tail (which
    /// heals in every mode) but bytes that cannot be part of any
    /// crash-shaped append. Strict mode refuses; salvage keeps the
    /// committed prefix.
    ManifestDamaged {
        /// What the scanner found (frame CRC mismatch, bad length, ...).
        reason: String,
        /// Committed entries decoded before the damage — what a
        /// `Salvage` reopen would keep.
        entries_kept: usize,
    },
    /// A committed segment's on-disk length disagrees with its manifest
    /// entry. The manifest is fsynced after the segment, so this is
    /// post-commit damage, never an interrupted append.
    SegmentLengthMismatch {
        /// Segment file name (`seg-000001-e.seg`).
        segment: String,
        /// Length the manifest committed, in bytes.
        committed: u64,
        /// Length actually on disk, in bytes.
        actual: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::ManifestDamaged {
                reason,
                entries_kept,
            } => write!(
                f,
                "manifest damaged mid-file ({reason}); reopen with RecoveryMode::Salvage \
                 to keep the {entries_kept} committed entries before the damage"
            ),
            RecoveryError::SegmentLengthMismatch {
                segment,
                committed,
                actual,
            } => write!(
                f,
                "segment {segment} is {actual} bytes, manifest committed {committed}; \
                 reopen with RecoveryMode::Salvage to keep its valid prefix"
            ),
        }
    }
}

/// What went wrong while reading or writing a persistent corpus.
///
/// Corruption is always an `Err`, never a panic: a damaged disk must
/// not take the process down, and the recovery paths in
/// [`DiskStore::open_with`](crate::DiskStore::open_with) rely on being
/// able to inspect the failure.
#[derive(Debug)]
pub enum DiskError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the store was doing (`"writing segment seg-000001-e.seg"`).
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The bytes on disk do not parse as the documented format.
    Corrupt {
        /// What was malformed and where.
        context: String,
    },
    /// Structured damage the active [`RecoveryMode`](crate::RecoveryMode)
    /// refuses to heal; see [`RecoveryError`] for the variants.
    Recovery(RecoveryError),
}

impl DiskError {
    /// A corruption error with the given description.
    #[must_use]
    pub fn corrupt(context: impl Into<String>) -> Self {
        DiskError::Corrupt {
            context: context.into(),
        }
    }

    /// Wraps an I/O error with the operation and path it interrupted.
    #[must_use]
    pub fn io(action: &str, path: &Path, source: io::Error) -> Self {
        DiskError::Io {
            context: format!("{action} {}", path.display()),
            source,
        }
    }

    /// Whether this is a corruption (vs. operating-system) failure.
    /// Recovery refusals are corruption: the bytes are damaged, the
    /// mode just declined to heal around them.
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(self, DiskError::Corrupt { .. } | DiskError::Recovery(_))
    }

    /// The structured recovery refusal, if that is what this error is.
    #[must_use]
    pub fn as_recovery(&self) -> Option<&RecoveryError> {
        match self {
            DiskError::Recovery(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io { context, source } => write!(f, "i/o error {context}: {source}"),
            DiskError::Corrupt { context } => write!(f, "corrupt store: {context}"),
            DiskError::Recovery(r) => write!(f, "corrupt store: {r}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io { source, .. } => Some(source),
            DiskError::Corrupt { .. } | DiskError::Recovery(_) => None,
        }
    }
}

impl From<RecoveryError> for DiskError {
    fn from(value: RecoveryError) -> Self {
        DiskError::Recovery(value)
    }
}
