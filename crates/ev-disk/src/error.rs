//! Error type of the persistent backend.

use std::fmt;
use std::io;
use std::path::Path;

/// Result alias for disk operations.
pub type DiskResult<T> = Result<T, DiskError>;

/// What went wrong while reading or writing a persistent corpus.
///
/// Corruption is always an `Err`, never a panic: a damaged disk must
/// not take the process down, and the recovery paths in
/// [`DiskStore::open_with`](crate::DiskStore::open_with) rely on being
/// able to inspect the failure.
#[derive(Debug)]
pub enum DiskError {
    /// An operating-system I/O failure, with the operation that hit it.
    Io {
        /// What the store was doing (`"writing segment seg-000001-e.seg"`).
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The bytes on disk do not parse as the documented format.
    Corrupt {
        /// What was malformed and where.
        context: String,
    },
}

impl DiskError {
    /// A corruption error with the given description.
    #[must_use]
    pub fn corrupt(context: impl Into<String>) -> Self {
        DiskError::Corrupt {
            context: context.into(),
        }
    }

    /// Wraps an I/O error with the operation and path it interrupted.
    #[must_use]
    pub fn io(action: &str, path: &Path, source: io::Error) -> Self {
        DiskError::Io {
            context: format!("{action} {}", path.display()),
            source,
        }
    }

    /// Whether this is a corruption (vs. operating-system) failure.
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(self, DiskError::Corrupt { .. })
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io { context, source } => write!(f, "i/o error {context}: {source}"),
            DiskError::Corrupt { context } => write!(f, "corrupt store: {context}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io { source, .. } => Some(source),
            DiskError::Corrupt { .. } => None,
        }
    }
}
