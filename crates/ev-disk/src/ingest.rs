//! Streaming append path: open segments with periodic manifest
//! checkpoints.
//!
//! [`DiskStore::append`] is batch-shaped — every call seals one or two
//! brand-new segments and pays two `fsync`s plus a manifest commit. A
//! live serve loop ingests *small* batches continuously, so the
//! [`IngestWriter`] amortizes that cost: arriving records are framed
//! into **open** segment files (one per [`SegmentKind`], same
//! CRC-framed format as batch segments) and only a periodic
//! **checkpoint** pays the durability protocol of `DESIGN.md` §6:
//!
//! ```text
//! fsync(open segments) → fsync(dir) → append manifest entries → fsync(manifest)
//! ```
//!
//! Everything a checkpoint has committed is exactly as durable as a
//! batch append. Everything after the last checkpoint is *crash-shaped
//! residue*: the open segment files have no manifest entry, so the next
//! [`DiskStore::open`] removes them as orphans — in **both**
//! [`Strict`](crate::RecoveryMode::Strict) and
//! [`Salvage`](crate::RecoveryMode::Salvage) mode, exactly as if a
//! batch append had crashed between the segment write and the manifest
//! commit. Recovery therefore always restores a checkpoint-aligned
//! prefix of the stream, and the durability loss of a crash is bounded
//! by [`CheckpointPolicy::records_per_checkpoint`].
//!
//! The writer takes the [`DiskStore`] by value, so no interleaved batch
//! append can commit a manifest entry out of stream order while
//! segments are open; [`IngestWriter::finish`] checkpoints and hands
//! the store back.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;

use ev_core::scenario::{EScenario, VScenario};

use crate::codec;
use crate::error::{DiskError, DiskResult};
use crate::frame::write_frame;
use crate::manifest::ManifestEntry;
use crate::segment::{self, SegmentBounds, SegmentKind};
use crate::store::{fsync_dir, DiskStore};

/// When the writer checkpoints on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint automatically once at least this many records have
    /// accumulated since the last checkpoint. `0` disables automatic
    /// checkpoints (the caller drives [`IngestWriter::checkpoint`]).
    /// This bounds how many records a crash can lose.
    pub records_per_checkpoint: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            records_per_checkpoint: 1024,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that never checkpoints automatically.
    #[must_use]
    pub fn manual() -> Self {
        CheckpointPolicy {
            records_per_checkpoint: 0,
        }
    }
}

/// Receipt of one [`IngestWriter::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAppendReceipt {
    /// Records written by this push.
    pub appended: u64,
    /// Records staged in open segments after this push (zero when the
    /// push triggered an automatic checkpoint).
    pub staged_records: u64,
    /// The manifest entries committed, when this push crossed the
    /// [`CheckpointPolicy`] threshold.
    pub checkpoint: Option<Vec<ManifestEntry>>,
}

/// One segment file being grown in place; sealed at checkpoint time.
#[derive(Debug)]
struct OpenSegment {
    seq: u64,
    kind: SegmentKind,
    path: PathBuf,
    file: File,
    records: u64,
    bounds: SegmentBounds,
    len: u64,
}

impl OpenSegment {
    fn create(store: &mut DiskStore, kind: SegmentKind) -> DiskResult<Self> {
        let seq = store.reserve_seq();
        let path = store.dir().join(format!("seg-{seq:06}-{}.seg", kind.tag()));
        let mut file = File::create(&path).map_err(|e| DiskError::io("creating", &path, e))?;
        let header = segment::header(kind);
        file.write_all(&header)
            .map_err(|e| DiskError::io("writing segment header", &path, e))?;
        Ok(OpenSegment {
            seq,
            kind,
            path,
            file,
            records: 0,
            bounds: SegmentBounds::empty(),
            len: header.len() as u64,
        })
    }

    /// Frames one batch of encoded records into the open file with a
    /// single write.
    fn push(&mut self, records: &[(u64, u64, Vec<u8>)]) -> DiskResult<()> {
        let mut buf = Vec::new();
        for (time, cell, payload) in records {
            self.bounds.absorb(*time, *cell);
            write_frame(&mut buf, payload);
        }
        self.file
            .write_all(&buf)
            .map_err(|e| DiskError::io("appending to open segment", &self.path, e))?;
        self.records += records.len() as u64;
        self.len += buf.len() as u64;
        Ok(())
    }

    /// Makes the file durable and returns the manifest entry committing
    /// it.
    fn seal(self) -> DiskResult<ManifestEntry> {
        self.file
            .sync_all()
            .map_err(|e| DiskError::io("fsyncing open segment", &self.path, e))?;
        Ok(ManifestEntry {
            seq: self.seq,
            kind: self.kind,
            records: self.records,
            bounds: self.bounds,
            file_len: self.len,
        })
    }
}

/// Streaming writer over a [`DiskStore`]: frames arriving E/V-Scenarios
/// into open segments and commits them with periodic manifest
/// checkpoints. See the [module docs](self) for the durability
/// contract.
///
/// Dropping the writer without [`finish`](IngestWriter::finish) (or a
/// final [`checkpoint`](IngestWriter::checkpoint)) abandons the open
/// segments — deliberately crash-shaped: the next open heals them like
/// any interrupted append.
///
/// ```
/// use ev_core::{EScenario, ZoneAttr, Eid};
/// use ev_core::region::CellId;
/// use ev_core::time::Timestamp;
/// use ev_disk::{CheckpointPolicy, DiskStore, IngestWriter};
///
/// let dir = std::env::temp_dir().join(format!("ev-ingest-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let store = DiskStore::create(&dir).unwrap();
/// let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());
///
/// let mut s = EScenario::new(CellId::new(0), Timestamp::new(5));
/// s.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
/// writer.push(&[s], &[]).unwrap();        // staged, not yet committed
/// assert_eq!(writer.staged_records(), 1);
/// let store = writer.finish().unwrap();   // checkpoint: now durable
/// assert_eq!(store.record_count(ev_disk::SegmentKind::EScenario), 1);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct IngestWriter {
    store: DiskStore,
    open_e: Option<OpenSegment>,
    open_v: Option<OpenSegment>,
    staged: u64,
    policy: CheckpointPolicy,
}

impl IngestWriter {
    /// Wraps `store` for streaming appends under `policy`.
    #[must_use]
    pub fn new(store: DiskStore, policy: CheckpointPolicy) -> Self {
        IngestWriter {
            store,
            open_e: None,
            open_v: None,
            staged: 0,
            policy,
        }
    }

    /// The underlying store (committed segments only; open segments are
    /// not visible until a checkpoint).
    #[must_use]
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// Records staged in open segments since the last checkpoint.
    #[must_use]
    pub fn staged_records(&self) -> u64 {
        self.staged
    }

    /// Frames both batches into their open segments (creating them on
    /// first use) and auto-checkpoints when the policy threshold is
    /// crossed.
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] on write or fsync failure. The open segments
    /// stay uncommitted, so a failed push never damages committed data.
    pub fn push(
        &mut self,
        e_batch: &[EScenario],
        v_batch: &[VScenario],
    ) -> DiskResult<StreamAppendReceipt> {
        if !e_batch.is_empty() {
            if self.open_e.is_none() {
                self.open_e = Some(OpenSegment::create(
                    &mut self.store,
                    SegmentKind::EScenario,
                )?);
            }
            let records: Vec<(u64, u64, Vec<u8>)> = e_batch
                .iter()
                .map(|s| {
                    (
                        s.time().tick(),
                        s.cell().index() as u64,
                        codec::encode_escenario(s),
                    )
                })
                .collect();
            self.open_e
                .as_mut()
                .expect("open E segment just ensured")
                .push(&records)?;
        }
        if !v_batch.is_empty() {
            if self.open_v.is_none() {
                self.open_v = Some(OpenSegment::create(
                    &mut self.store,
                    SegmentKind::VScenario,
                )?);
            }
            let records: Vec<(u64, u64, Vec<u8>)> = v_batch
                .iter()
                .map(|s| {
                    (
                        s.time().tick(),
                        s.cell().index() as u64,
                        codec::encode_vscenario(s),
                    )
                })
                .collect();
            self.open_v
                .as_mut()
                .expect("open V segment just ensured")
                .push(&records)?;
        }
        let appended = (e_batch.len() + v_batch.len()) as u64;
        self.staged += appended;
        let checkpoint = if self.policy.records_per_checkpoint > 0
            && self.staged >= self.policy.records_per_checkpoint
        {
            Some(self.checkpoint()?)
        } else {
            None
        };
        Ok(StreamAppendReceipt {
            appended,
            staged_records: self.staged,
            checkpoint,
        })
    }

    /// Seals the open segments and commits them to the manifest,
    /// making every record pushed so far durable. Returns the entries
    /// committed (empty when nothing was staged).
    ///
    /// # Errors
    ///
    /// [`DiskError::Io`] on fsync or manifest-append failure.
    pub fn checkpoint(&mut self) -> DiskResult<Vec<ManifestEntry>> {
        let mut entries = Vec::new();
        for open in [self.open_e.take(), self.open_v.take()]
            .into_iter()
            .flatten()
        {
            entries.push(open.seal()?);
        }
        if entries.is_empty() {
            return Ok(entries);
        }
        // Segment contents are durable; now make their directory names
        // durable, then commit them in one manifest append.
        fsync_dir(self.store.dir())?;
        self.store.commit_entries(&entries)?;
        self.staged = 0;
        Ok(entries)
    }

    /// Final checkpoint, then hands the store back for batch use.
    ///
    /// # Errors
    ///
    /// As [`IngestWriter::checkpoint`].
    pub fn finish(mut self) -> DiskResult<DiskStore> {
        self.checkpoint()?;
        Ok(self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ids::Eid;
    use ev_core::region::CellId;
    use ev_core::scenario::ZoneAttr;
    use ev_core::time::Timestamp;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ev-disk-ingest-{tag}-{}-{n}", std::process::id()))
    }

    fn e(cell: usize, time: u64, eid: u64) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        s.insert(Eid::from_u64(eid), ZoneAttr::Inclusive);
        s
    }

    #[test]
    fn staged_records_commit_at_checkpoint_and_reload() {
        let dir = temp_dir("commit");
        let store = DiskStore::create(&dir).unwrap();
        let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());
        writer.push(&[e(0, 1, 10)], &[]).unwrap();
        writer.push(&[e(1, 2, 11), e(2, 3, 12)], &[]).unwrap();
        assert_eq!(writer.staged_records(), 3);
        assert_eq!(writer.store().segments().len(), 0, "nothing committed yet");

        let entries = writer.checkpoint().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].records, 3);
        assert_eq!(writer.staged_records(), 0);

        // More pushes open a fresh segment with a fresh sequence.
        writer.push(&[e(3, 4, 13)], &[]).unwrap();
        let store = writer.finish().unwrap();
        assert_eq!(store.segments().len(), 2);

        let estore = DiskStore::open(&dir).unwrap().load_estore().unwrap();
        assert_eq!(estore.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_auto_checkpoints_on_threshold() {
        let dir = temp_dir("auto");
        let store = DiskStore::create(&dir).unwrap();
        let mut writer = IngestWriter::new(
            store,
            CheckpointPolicy {
                records_per_checkpoint: 4,
            },
        );
        let r = writer.push(&[e(0, 1, 1), e(1, 2, 2)], &[]).unwrap();
        assert!(r.checkpoint.is_none());
        let r = writer.push(&[e(2, 3, 3), e(3, 4, 4)], &[]).unwrap();
        let entries = r.checkpoint.expect("threshold crossed");
        assert_eq!(entries.iter().map(|e| e.records).sum::<u64>(), 4);
        assert_eq!(r.staged_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_open_segments_are_healed_as_orphans() {
        let dir = temp_dir("abandon");
        let store = DiskStore::create(&dir).unwrap();
        let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());
        writer.push(&[e(0, 1, 10)], &[]).unwrap();
        writer.checkpoint().unwrap();
        writer.push(&[e(1, 2, 11)], &[]).unwrap();
        drop(writer); // crash: open segment never committed

        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.recovery().orphan_segments_removed, 1);
        let estore = reopened.load_estore().unwrap();
        assert_eq!(estore.len(), 1, "checkpoint-aligned prefix survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_e_and_v_batches_commit_one_entry_per_kind() {
        let dir = temp_dir("mixed");
        let store = DiskStore::create(&dir).unwrap();
        let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());
        let mut v = ev_core::scenario::VScenario::new(CellId::new(0), Timestamp::new(1));
        v.push(ev_core::scenario::Detection {
            vid: ev_core::Vid::new(7),
            feature: ev_core::feature::FeatureVector::new(vec![0.5, 0.5]).unwrap(),
        });
        writer
            .push(&[e(0, 1, 10)], std::slice::from_ref(&v))
            .unwrap();
        let entries = writer.checkpoint().unwrap();
        assert_eq!(entries.len(), 2);
        let store = writer.finish().unwrap();
        assert_eq!(store.record_count(SegmentKind::EScenario), 1);
        assert_eq!(store.record_count(SegmentKind::VScenario), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
