//! Property tests for the record codec and segment framing.
//!
//! The codec is hand-rolled (no serde on the disk path), so the
//! round-trip and rejection behaviour is pinned by generated evidence:
//! arbitrary scenarios survive encode → decode byte-identically,
//! arbitrary junk never panics a decoder, and any prefix cut of a
//! segment scans to a prefix of its records.

use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_disk::codec::{decode_escenario, decode_vscenario, encode_escenario, encode_vscenario};
use ev_disk::format::HEADER_LEN;
use ev_disk::segment::{decode_e_segment, encode_e_segment, encode_v_segment, scan};
use proptest::prelude::*;

/// Raw draw for an E-Scenario: time, cell, `(eid, attr)` entries.
type ERaw = (u64, usize, Vec<(u64, u8)>);

fn arb_e_raw() -> impl Strategy<Value = ERaw> {
    (
        any::<u64>(),
        0usize..10_000,
        prop::collection::vec((any::<u64>(), 0u8..2), 0..24),
    )
}

fn build_e(raw: &ERaw) -> EScenario {
    let (t, c, ref entries) = *raw;
    let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
    for &(eid, raw_attr) in entries {
        let attr = if raw_attr == 0 {
            ZoneAttr::Inclusive
        } else {
            ZoneAttr::Vague
        };
        e.insert(Eid::from_u64(eid), attr);
    }
    e
}

/// Raw draw for a V-Scenario: time, cell, feature dimension, and
/// detections carrying an 8-wide unit draw truncated to the dimension.
type VRaw = (u64, usize, usize, Vec<(u64, Vec<f64>)>);

fn arb_v_raw() -> impl Strategy<Value = VRaw> {
    (
        any::<u64>(),
        0usize..10_000,
        1usize..8,
        prop::collection::vec(
            (any::<u64>(), prop::collection::vec(0.0f64..=1.0, 8)),
            0..12,
        ),
    )
}

fn build_v(raw: &VRaw) -> VScenario {
    let (t, c, dim, ref dets) = *raw;
    let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
    for (vid, wide) in dets {
        v.push(Detection {
            vid: Vid::new(*vid),
            feature: FeatureVector::new(wide[..dim].to_vec()).expect("components in [0, 1]"),
        });
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// E-Scenarios round-trip byte-identically, whatever the EID set,
    /// attribute mix, timestamp or cell.
    #[test]
    fn escenario_roundtrips(raw in arb_e_raw()) {
        let s = build_e(&raw);
        let payload = encode_escenario(&s);
        let back = decode_escenario(&payload).expect("own encoding decodes");
        prop_assert_eq!(back, s);
    }

    /// V-Scenarios round-trip with exact `f64` bit patterns — features
    /// go through `to_bits`, never a lossy text form.
    #[test]
    fn vscenario_roundtrips(raw in arb_v_raw()) {
        let s = build_v(&raw);
        let payload = encode_vscenario(&s);
        let back = decode_vscenario(&payload).expect("own encoding decodes");
        prop_assert_eq!(back, s);
    }

    /// Arbitrary junk must be *rejected*, not trusted and not panicked
    /// on — the decoders guard every length and every enum byte.
    #[test]
    fn junk_never_panics_a_decoder(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_escenario(&bytes);
        let _ = decode_vscenario(&bytes);
        let _ = scan(&bytes);
    }

    /// A decoded payload with trailing garbage is rejected: record
    /// boundaries come from the frame, so slack bytes mean corruption.
    #[test]
    fn trailing_bytes_are_rejected(raw in arb_e_raw(), extra in 1usize..16) {
        let mut payload = encode_escenario(&build_e(&raw));
        payload.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(decode_escenario(&payload).is_err());
    }

    /// Whole segments round-trip in order, and the absorbed bounds are
    /// exactly the min/max of the records' times and cells.
    #[test]
    fn e_segment_roundtrips_with_tight_bounds(
        raws in prop::collection::vec(arb_e_raw(), 1..10)
    ) {
        let scenarios: Vec<EScenario> = raws.iter().map(build_e).collect();
        let seg = encode_e_segment(&scenarios);
        prop_assert_eq!(seg.records, scenarios.len() as u64);
        let back = decode_e_segment(&seg.bytes).expect("own segment decodes");
        prop_assert_eq!(&back, &scenarios);
        let times: Vec<u64> = scenarios.iter().map(|s| s.time().tick()).collect();
        let cells: Vec<u64> = scenarios.iter().map(|s| s.cell().index() as u64).collect();
        prop_assert_eq!(seg.bounds.min_time, *times.iter().min().expect("non-empty"));
        prop_assert_eq!(seg.bounds.max_time, *times.iter().max().expect("non-empty"));
        prop_assert_eq!(seg.bounds.min_cell, *cells.iter().min().expect("non-empty"));
        prop_assert_eq!(seg.bounds.max_cell, *cells.iter().max().expect("non-empty"));
    }

    /// Cutting a segment at any byte yields a scan whose complete
    /// frames are a prefix of the original records and whose tail is
    /// classified torn — the foundation of salvage recovery.
    #[test]
    fn any_prefix_cut_scans_to_a_record_prefix(
        raws in prop::collection::vec(arb_v_raw(), 1..6),
        cut in any::<prop::sample::Index>(),
    ) {
        let scenarios: Vec<VScenario> = raws.iter().map(build_v).collect();
        let seg = encode_v_segment(&scenarios);
        let len = cut.index(seg.bytes.len() - HEADER_LEN) + HEADER_LEN;
        let (kind, partial) = scan(&seg.bytes[..len]).expect("header intact");
        prop_assert_eq!(kind, seg.kind);
        prop_assert!(partial.payloads.len() <= scenarios.len());
        // A cut exactly on a frame boundary leaves a shorter *valid*
        // file; anything else is a torn tail. Never damage.
        prop_assert_eq!(partial.torn, partial.valid_len < len);
        prop_assert!(partial.damage.is_none(), "a clean cut is torn, never damaged");
        for (i, &(start, plen)) in partial.payloads.iter().enumerate() {
            let record = decode_vscenario(&seg.bytes[start..start + plen])
                .expect("complete frames decode");
            prop_assert_eq!(&record, &scenarios[i]);
        }
    }
}
