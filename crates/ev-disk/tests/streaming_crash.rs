//! Crash injection for the streaming append path: a kill between the
//! open-segment writes and the manifest checkpoint must leave a corpus
//! that recovery — Strict *and* Salvage — restores to the last
//! checkpoint-aligned prefix of the stream.

use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_disk::{CheckpointPolicy, DiskStore, IngestWriter, RecoveryMode, MANIFEST_FILE};
use ev_telemetry::Telemetry;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ev-stream-crash-{tag}-{}-{n}", std::process::id()))
}

fn e(cell: usize, time: u64, eid: u64) -> EScenario {
    let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
    s.insert(Eid::from_u64(eid), ZoneAttr::Inclusive);
    s
}

fn v(cell: usize, time: u64, vid: u64) -> VScenario {
    let mut s = VScenario::new(CellId::new(cell), Timestamp::new(time));
    s.push(Detection {
        vid: Vid::new(vid),
        feature: FeatureVector::new(vec![0.25, 0.75]).unwrap(),
    });
    s
}

/// Stream two checkpointed batches plus a third that never commits,
/// then "crash" by dropping the writer. Both recovery modes must keep
/// exactly the two committed batches and report the open segments as
/// orphans, never as corruption.
#[test]
fn crash_between_append_and_checkpoint_recovers_checkpoint_prefix() {
    let dir = temp_dir("prefix");
    let store = DiskStore::create(&dir).unwrap();
    let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());

    writer
        .push(&[e(0, 1, 10), e(1, 2, 11)], &[v(0, 1, 1)])
        .unwrap();
    writer.checkpoint().unwrap();
    writer.push(&[e(2, 3, 12)], &[]).unwrap();
    writer.checkpoint().unwrap();
    // Batch three: written to open segments, manifest never updated.
    writer
        .push(&[e(3, 4, 13), e(4, 5, 14)], &[v(3, 4, 2)])
        .unwrap();
    assert_eq!(writer.staged_records(), 3);
    drop(writer); // kill -9 between segment append and checkpoint

    for mode in [RecoveryMode::Strict, RecoveryMode::Salvage] {
        let reopened = DiskStore::open_with(&dir, mode, Telemetry::disabled()).unwrap();
        let report = reopened.recovery();
        assert_eq!(
            report.orphan_segments_removed,
            if mode == RecoveryMode::Strict { 2 } else { 0 },
            "{mode:?}: first open removes the E+V open segments"
        );
        assert_eq!(report.records_dropped, 0, "{mode:?}: committed data intact");
        let estore = reopened.load_estore().unwrap();
        assert_eq!(estore.len(), 3, "{mode:?}: checkpoint-aligned E prefix");
        assert!(estore.iter().all(|s| s.time().tick() <= 3));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A crash *during* the checkpoint's manifest append leaves a torn
/// manifest tail. Recovery truncates the tail, keeping a prefix of the
/// checkpoint's entries and orphaning the segment files the lost
/// entries were committing.
#[test]
fn torn_manifest_checkpoint_keeps_entry_prefix() {
    let dir = temp_dir("torn");
    let store = DiskStore::create(&dir).unwrap();
    let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());

    writer.push(&[e(0, 1, 10)], &[]).unwrap();
    writer.checkpoint().unwrap();
    // One checkpoint committing two entries (an E and a V segment).
    writer.push(&[e(1, 2, 11)], &[v(1, 2, 3)]).unwrap();
    let entries = writer.checkpoint().unwrap();
    assert_eq!(entries.len(), 2);
    drop(writer.finish().unwrap());

    // Tear the manifest mid-way through its final entry frame.
    let manifest = dir.join(MANIFEST_FILE);
    let bytes = fs::read(&manifest).unwrap();
    fs::write(&manifest, &bytes[..bytes.len() - 7]).unwrap();

    let reopened = DiskStore::open(&dir).unwrap();
    let report = reopened.recovery();
    assert!(report.manifest_bytes_truncated > 0, "torn tail truncated");
    assert_eq!(report.orphan_segments_removed, 1, "uncommitted V segment");
    assert_eq!(reopened.segments().len(), 2, "prefix of the checkpoint");
    let estore = reopened.load_estore().unwrap();
    assert_eq!(estore.len(), 2);
    fs::remove_dir_all(&dir).unwrap();
}

/// Garbage appended to an open segment (a torn frame from the crash
/// itself) must not poison recovery: the file is uncommitted, so both
/// modes delete it wholesale.
#[test]
fn torn_frame_in_open_segment_is_still_just_an_orphan() {
    let dir = temp_dir("garbage");
    let store = DiskStore::create(&dir).unwrap();
    let mut writer = IngestWriter::new(store, CheckpointPolicy::manual());
    writer.push(&[e(0, 1, 10)], &[]).unwrap();
    writer.checkpoint().unwrap();
    writer.push(&[e(1, 2, 11)], &[]).unwrap();
    drop(writer);

    // The crash persisted half a frame at the open segment's tail.
    let orphan = dir.join("seg-000001-e.seg");
    assert!(orphan.exists());
    let mut bytes = fs::read(&orphan).unwrap();
    bytes.extend_from_slice(&[0x2a, 0x00, 0x00, 0x00, 0xde, 0xad]);
    fs::write(&orphan, &bytes).unwrap();

    let reopened =
        DiskStore::open_with(&dir, RecoveryMode::Salvage, Telemetry::disabled()).unwrap();
    assert_eq!(reopened.recovery().orphan_segments_removed, 1);
    assert!(!orphan.exists());
    assert_eq!(reopened.load_estore().unwrap().len(), 1);
    fs::remove_dir_all(&dir).unwrap();
}

/// The auto-checkpoint policy bounds crash loss: stream many tiny
/// batches through a `records_per_checkpoint = 8` writer, crash at an
/// arbitrary point, and recovery must retain all but at most the last
/// (uncheckpointed) 8 records.
#[test]
fn auto_checkpoint_bounds_crash_loss() {
    let dir = temp_dir("bounded");
    let store = DiskStore::create(&dir).unwrap();
    let mut writer = IngestWriter::new(
        store,
        CheckpointPolicy {
            records_per_checkpoint: 8,
        },
    );
    for i in 0..45u64 {
        writer.push(&[e(i as usize % 7, i, 100 + i)], &[]).unwrap();
    }
    let staged = writer.staged_records();
    assert!(staged < 8, "policy keeps the uncommitted tail below 8");
    drop(writer); // crash

    let estore = DiskStore::open(&dir).unwrap().load_estore().unwrap();
    assert_eq!(estore.len() as u64, 45 - staged);
    // The survivors are exactly the stream's oldest records: a prefix.
    let max_tick = estore.iter().map(|s| s.time().tick()).max().unwrap();
    assert_eq!(max_tick, 45 - staged - 1);
    fs::remove_dir_all(&dir).unwrap();
}
