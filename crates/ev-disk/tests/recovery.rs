//! Fault-injection tests for the recovery state machine.
//!
//! A corpus is built once per test, then damaged at **every byte
//! boundary** — truncations and bit flips in the manifest and in each
//! committed segment, plus whole-file deletion — and reopened in both
//! [`RecoveryMode::Strict`] and [`RecoveryMode::Salvage`]. The
//! invariants under test:
//!
//! * opening never panics, whatever the bytes look like;
//! * Strict heals crash-shaped residue (torn manifest tail, orphan
//!   segments) and refuses everything else;
//! * Salvage keeps the longest valid committed prefix and never errors
//!   on damage past the manifest header;
//! * every record that survives recovery is byte-identical to a record
//!   that was committed — recovery may lose a suffix, never invent or
//!   alter data;
//! * a salvaged corpus reopens cleanly in Strict mode (repairs are
//!   written back, not recomputed on every open).

use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_disk::format::{FRAME_OVERHEAD, HEADER_LEN, MANIFEST_ENTRY_PAYLOAD_LEN};
use ev_disk::{
    DiskError, DiskStore, ManifestEntry, RecoveryError, RecoveryMode, SegmentKind, MANIFEST_FILE,
};
use ev_telemetry::Telemetry;
use ev_vision::cost::CostModel;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ev-disk-recovery-{}-{tag}-{n}", std::process::id()))
}

fn escenario(t: u64, c: usize, eids: &[u64]) -> EScenario {
    let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
    for &p in eids {
        let attr = if p % 2 == 0 {
            ZoneAttr::Inclusive
        } else {
            ZoneAttr::Vague
        };
        e.insert(Eid::from_u64(p), attr);
    }
    e
}

fn vscenario(t: u64, c: usize, vids: &[u64]) -> VScenario {
    let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
    for &p in vids {
        let mut f = vec![0.25; 4];
        f[(p % 4) as usize] = 0.75;
        v.push(Detection {
            vid: Vid::new(p),
            feature: FeatureVector::new(f).expect("valid feature"),
        });
    }
    v
}

/// Two committed appends → four committed segments. Returns everything
/// that was durably committed, for prefix checks.
fn build_corpus(dir: &Path) -> (Vec<EScenario>, Vec<VScenario>) {
    let mut store = DiskStore::create(dir).expect("fresh corpus");
    let e1 = vec![escenario(0, 0, &[1, 2, 3]), escenario(0, 1, &[4, 5])];
    let v1 = vec![vscenario(0, 0, &[1, 2]), vscenario(0, 1, &[3])];
    store.append(&e1, &v1).expect("day-1 append");
    let e2 = vec![escenario(10, 0, &[1, 6]), escenario(10, 2, &[2])];
    let v2 = vec![vscenario(10, 0, &[1]), vscenario(10, 2, &[2, 4])];
    store.append(&e2, &v2).expect("day-2 append");
    (
        e1.into_iter().chain(e2).collect(),
        v1.into_iter().chain(v2).collect(),
    )
}

fn clone_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("trial dir");
    for entry in fs::read_dir(src).expect("read golden dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy");
    }
}

fn committed_entries(dir: &Path) -> Vec<ManifestEntry> {
    DiskStore::open(dir)
        .expect("golden opens")
        .segments()
        .to_vec()
}

/// Asserts every loaded record is byte-identical to a committed one —
/// recovery may drop a suffix but must never alter or invent records.
fn assert_records_committed(
    store: &DiskStore,
    committed_e: &[EScenario],
    committed_v: &[VScenario],
) {
    let by_id_e: BTreeMap<_, _> = committed_e.iter().map(|s| (s.id(), s)).collect();
    let es = store.load_estore().expect("recovered E-data loads");
    for s in es.iter() {
        assert_eq!(by_id_e.get(&s.id()).copied(), Some(s), "E record altered");
    }
    let by_id_v: BTreeMap<_, _> = committed_v.iter().map(|s| (s.id(), s)).collect();
    let vs = store
        .load_video(CostModel::free())
        .expect("recovered V-data loads");
    for s in vs.scenarios() {
        assert_eq!(by_id_v.get(&s.id()).copied(), Some(s), "V record altered");
    }
}

#[test]
fn manifest_truncated_at_every_byte_boundary() {
    let golden = temp_dir("golden-mtrunc");
    let (all_e, all_v) = build_corpus(&golden);
    let full = fs::read(golden.join(MANIFEST_FILE)).expect("manifest bytes");
    let entry_frame = FRAME_OVERHEAD + MANIFEST_ENTRY_PAYLOAD_LEN;
    let trial = temp_dir("mtrunc");

    for len in 0..full.len() {
        let _ = fs::remove_dir_all(&trial);
        clone_dir(&golden, &trial);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(trial.join(MANIFEST_FILE))
            .expect("open manifest");
        f.set_len(len as u64).expect("truncate");
        f.sync_all().expect("sync");
        drop(f);

        match DiskStore::open(&trial) {
            Ok(store) => {
                // A cut inside the header cannot open; past it, a torn
                // tail is exactly crash-shaped and must heal to the
                // committed prefix.
                assert!(len >= HEADER_LEN, "len {len}: short header must not open");
                assert_eq!(
                    store.segments().len(),
                    (len - HEADER_LEN) / entry_frame,
                    "len {len}: survivors must be the complete-frame prefix"
                );
                assert_records_committed(&store, &all_e, &all_v);
                // The heal is durable: reopening finds nothing to fix.
                drop(store);
                let again = DiskStore::open(&trial).expect("healed corpus reopens");
                assert!(
                    !again.recovery().repaired_anything(),
                    "len {len}: second open must find a clean corpus"
                );
            }
            Err(_) => {
                assert!(
                    len < HEADER_LEN,
                    "len {len}: a torn tail past the header must heal, not error"
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&trial);
    let _ = fs::remove_dir_all(&golden);
}

#[test]
fn segment_truncated_at_every_byte_boundary() {
    let golden = temp_dir("golden-strunc");
    let (all_e, all_v) = build_corpus(&golden);
    let entries = committed_entries(&golden);
    assert_eq!(entries.len(), 4, "two appends commit four segments");
    let trial = temp_dir("strunc");

    for entry in &entries {
        let name = entry.file_name();
        for len in 0..entry.file_len {
            let _ = fs::remove_dir_all(&trial);
            clone_dir(&golden, &trial);
            let f = fs::OpenOptions::new()
                .write(true)
                .open(trial.join(&name))
                .expect("open segment");
            f.set_len(len).expect("truncate");
            f.sync_all().expect("sync");
            drop(f);

            // Strict: a committed segment shorter than its manifest entry
            // is corruption, not crash residue — reported as the typed
            // refusal carrying the exact segment and both lengths.
            let strict = DiskStore::open(&trial);
            match strict {
                Ok(_) => {
                    panic!("{name} cut to {len}: strict open must refuse a short committed segment")
                }
                Err(err) => {
                    assert!(err.is_corruption(), "{name} cut to {len}: {err}");
                    match err.as_recovery() {
                        Some(RecoveryError::SegmentLengthMismatch {
                            segment,
                            committed,
                            actual,
                        }) => {
                            assert_eq!(segment, &name, "cut to {len}");
                            assert_eq!(*committed, entry.file_len, "cut to {len}");
                            assert_eq!(*actual, len, "cut to {len}");
                        }
                        other => panic!(
                            "{name} cut to {len}: expected SegmentLengthMismatch, got {other:?}"
                        ),
                    }
                }
            }

            // Salvage: keep the valid prefix (or drop the segment when
            // even the header is gone), and never alter surviving data.
            let store = DiskStore::open_with(&trial, RecoveryMode::Salvage, Telemetry::disabled())
                .unwrap_or_else(|e| panic!("{name} cut to {len}: salvage must open: {e}"));
            assert!(
                store.recovery().repaired_anything(),
                "{name} cut to {len}: salvage must report the repair"
            );
            assert!(
                store.record_count(entry.kind) < all_records(&entries, entry.kind),
                "{name} cut to {len}: a truncated segment must lose at least one record"
            );
            assert_records_committed(&store, &all_e, &all_v);

            // Repairs are written back: the salvaged corpus is a clean
            // corpus, so a Strict reopen succeeds without further work.
            drop(store);
            let again = DiskStore::open(&trial)
                .unwrap_or_else(|e| panic!("{name} cut to {len}: salvaged corpus reopens: {e}"));
            assert!(!again.recovery().repaired_anything());
        }
    }
    let _ = fs::remove_dir_all(&trial);
    let _ = fs::remove_dir_all(&golden);
}

fn all_records(entries: &[ManifestEntry], kind: SegmentKind) -> u64 {
    entries
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.records)
        .sum()
}

#[test]
fn provable_mid_file_manifest_damage_is_a_typed_refusal() {
    // Flip one byte inside the FIRST committed entry frame: intact
    // frames follow, so the scanner can prove the damage is mid-file
    // (not a torn tail) and a strict open must refuse with the typed
    // `ManifestDamaged` error counting the entries before the damage.
    let dir = temp_dir("mdamage-typed");
    build_corpus(&dir);
    assert_eq!(committed_entries(&dir).len(), 4);
    let mut bytes = fs::read(dir.join(MANIFEST_FILE)).expect("manifest bytes");
    bytes[HEADER_LEN] ^= 0xFF;
    fs::write(dir.join(MANIFEST_FILE), &bytes).expect("write damaged manifest");

    let err = DiskStore::open(&dir).expect_err("strict must refuse mid-file damage");
    assert!(err.is_corruption());
    assert!(
        matches!(&err, DiskError::Recovery(_)),
        "expected the typed recovery refusal, got {err:?}"
    );
    match err.as_recovery() {
        Some(RecoveryError::ManifestDamaged {
            reason,
            entries_kept,
        }) => {
            assert_eq!(
                *entries_kept, 0,
                "damage in the first frame leaves no entries before it"
            );
            assert!(!reason.is_empty(), "the refusal must say what it found");
        }
        other => panic!("expected ManifestDamaged, got {other:?}"),
    }
    // The salvage hint in the rendered message stays intact for humans.
    assert!(err.to_string().contains("RecoveryMode::Salvage"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifest_byte_flips_never_panic() {
    let golden = temp_dir("golden-mflip");
    let (all_e, all_v) = build_corpus(&golden);
    let full = fs::read(golden.join(MANIFEST_FILE)).expect("manifest bytes");
    let trial = temp_dir("mflip");

    for pos in 0..full.len() {
        let _ = fs::remove_dir_all(&trial);
        clone_dir(&golden, &trial);
        let mut bytes = full.clone();
        bytes[pos] ^= 0xFF;
        fs::write(trial.join(MANIFEST_FILE), &bytes).expect("write flipped manifest");

        // Strict: a flip in the final frame is indistinguishable from a
        // torn tail (the damage ends at EOF) and heals; a flip that can
        // be proven mid-file is corruption and must be refused. Either
        // way: no panic, and whatever opens must load committed bytes.
        if let Ok(store) = DiskStore::open(&trial) {
            assert_records_committed(&store, &all_e, &all_v);
        }

        // Salvage: only header damage (the first HEADER_LEN bytes) is
        // unrecoverable — there is no committed prefix to keep.
        let _ = fs::remove_dir_all(&trial);
        clone_dir(&golden, &trial);
        fs::write(trial.join(MANIFEST_FILE), &bytes).expect("write flipped manifest");
        match DiskStore::open_with(&trial, RecoveryMode::Salvage, Telemetry::disabled()) {
            Ok(store) => assert_records_committed(&store, &all_e, &all_v),
            Err(_) => assert!(
                pos < HEADER_LEN,
                "pos {pos}: salvage may only fail on manifest-header damage"
            ),
        }
    }
    let _ = fs::remove_dir_all(&trial);
    let _ = fs::remove_dir_all(&golden);
}

#[test]
fn segment_byte_flips_never_panic_and_salvage_always_recovers() {
    let golden = temp_dir("golden-sflip");
    let (all_e, all_v) = build_corpus(&golden);
    let entries = committed_entries(&golden);
    let trial = temp_dir("sflip");

    for entry in &entries {
        let name = entry.file_name();
        let full = fs::read(golden.join(&name)).expect("segment bytes");
        for pos in 0..full.len() {
            let _ = fs::remove_dir_all(&trial);
            clone_dir(&golden, &trial);
            let mut bytes = full.clone();
            bytes[pos] ^= 0xFF;
            fs::write(trial.join(&name), &bytes).expect("write flipped segment");

            // Strict open itself succeeds (the length matches; checksums
            // are verified at load time) — but loading must surface the
            // damage as an error, never a panic or a silently wrong
            // record. A flip the format cannot detect (e.g. the reserved
            // header byte) may load clean; then records must be intact.
            let store = DiskStore::open(&trial)
                .unwrap_or_else(|e| panic!("{name} flip at {pos}: strict open: {e}"));
            let strict_load = match entry.kind {
                SegmentKind::EScenario => store.load_estore().map(|_| ()),
                SegmentKind::VScenario => store.load_video(CostModel::free()).map(|_| ()),
            };
            if strict_load.is_ok() {
                assert_records_committed(&store, &all_e, &all_v);
            }
            drop(store);

            // Salvage always produces a loadable corpus.
            let store = DiskStore::open_with(&trial, RecoveryMode::Salvage, Telemetry::disabled())
                .unwrap_or_else(|e| panic!("{name} flip at {pos}: salvage must open: {e}"));
            assert_records_committed(&store, &all_e, &all_v);
        }
    }
    let _ = fs::remove_dir_all(&trial);
    let _ = fs::remove_dir_all(&golden);
}

#[test]
fn missing_segment_is_refused_strict_and_dropped_salvage() {
    let golden = temp_dir("golden-missing");
    let (all_e, all_v) = build_corpus(&golden);
    let entries = committed_entries(&golden);
    let trial = temp_dir("missing");

    for entry in &entries {
        let name = entry.file_name();
        let _ = fs::remove_dir_all(&trial);
        clone_dir(&golden, &trial);
        fs::remove_file(trial.join(&name)).expect("delete segment");

        assert!(
            DiskStore::open(&trial).is_err(),
            "{name} missing: strict open must refuse"
        );

        let store = DiskStore::open_with(&trial, RecoveryMode::Salvage, Telemetry::disabled())
            .unwrap_or_else(|e| panic!("{name} missing: salvage must open: {e}"));
        assert_eq!(store.recovery().records_dropped, entry.records);
        assert_eq!(
            store.record_count(entry.kind),
            all_records(&entries, entry.kind) - entry.records,
            "only the missing segment's records are lost"
        );
        assert_records_committed(&store, &all_e, &all_v);
    }
    let _ = fs::remove_dir_all(&trial);
    let _ = fs::remove_dir_all(&golden);
}

#[test]
fn the_canonical_crash_shape_heals_to_the_committed_prefix() {
    // An interrupted third append leaves a fully-written orphan segment
    // plus a half-written manifest entry: the exact residue
    // `DiskStore::append`'s fsync ordering guarantees.
    let dir = temp_dir("crash-shape");
    let (all_e, all_v) = build_corpus(&dir);
    fs::write(dir.join("seg-000031-e.seg"), b"EVSG\x01\x00\x00").expect("orphan");
    let mut manifest = fs::read(dir.join(MANIFEST_FILE)).expect("manifest");
    let committed_len = manifest.len();
    manifest.extend_from_slice(&[65, 0, 0, 0, 0xde, 0xad]);
    fs::write(dir.join(MANIFEST_FILE), &manifest).expect("torn tail");

    let store = DiskStore::open(&dir).expect("strict open heals a crash");
    let rec = store.recovery();
    assert_eq!(rec.manifest_entries_kept, 4);
    assert_eq!(rec.manifest_bytes_truncated, 6);
    assert_eq!(rec.orphan_segments_removed, 1);
    assert_eq!(rec.records_dropped, 0, "every committed record survives");
    assert_eq!(
        fs::read(dir.join(MANIFEST_FILE)).expect("manifest").len(),
        committed_len
    );
    assert!(!dir.join("seg-000031-e.seg").exists());

    // Not just prefix-consistent: *everything* committed is still there.
    let es = store.load_estore().expect("loads");
    assert_eq!(es.iter().count(), all_e.len());
    let vs = store.load_video(CostModel::free()).expect("loads");
    assert_eq!(vs.scenarios().count(), all_v.len());
    assert_records_committed(&store, &all_e, &all_v);
    let _ = fs::remove_dir_all(&dir);
}
