//! Property tests: the engine must compute exactly what a sequential
//! reference computes, for any input, any cluster shape, and any
//! (survivable) fault plan.

use ev_mapreduce::{Backend, ClusterConfig, Emitter, FaultPlan, MapReduce, Mapper, Reducer};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Mapper: emit (value mod k, value) for each record.
struct ModMapper {
    k: u64,
}
impl Mapper<u64> for ModMapper {
    type Key = u64;
    type Value = u64;
    fn map(&self, input: &u64, out: &mut Emitter<u64, u64>) {
        out.emit(input % self.k, *input);
    }
}

/// Reducer: (key, sum, count, min, max) per group.
struct StatsReducer;
impl Reducer<u64, u64> for StatsReducer {
    type Output = (u64, u64, usize, u64, u64);
    fn reduce(&self, key: &u64, values: &[u64]) -> Vec<(u64, u64, usize, u64, u64)> {
        let sum = values.iter().sum();
        let min = *values.iter().min().expect("non-empty group");
        let max = *values.iter().max().expect("non-empty group");
        vec![(*key, sum, values.len(), min, max)]
    }
}

/// The sequential reference implementation.
fn reference(inputs: &[u64], k: u64) -> Vec<(u64, u64, usize, u64, u64)> {
    let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &v in inputs {
        groups.entry(v % k).or_default().push(v);
    }
    groups
        .into_iter()
        .map(|(key, values)| {
            (
                key,
                values.iter().sum(),
                values.len(),
                *values.iter().min().expect("non-empty"),
                *values.iter().max().expect("non-empty"),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_matches_sequential_reference(
        inputs in prop::collection::vec(0u64..10_000, 0..300),
        k in 1u64..20,
        workers in 1usize..6,
        split_size in 1usize..40,
        reduce_partitions in 1usize..6,
    ) {
        let engine = MapReduce::new(ClusterConfig {
            workers,
            split_size,
            reduce_partitions,
            ..ClusterConfig::default()
        });
        let result = engine
            .run(inputs.clone(), &ModMapper { k }, &StatsReducer)
            .expect("healthy cluster");
        prop_assert_eq!(result.output, reference(&inputs, k));
    }

    #[test]
    fn faults_never_change_results(
        inputs in prop::collection::vec(0u64..10_000, 1..200),
        k in 1u64..10,
        failure_rate in 0.0f64..0.5,
        straggler_rate in 0.0f64..0.5,
        speculative in any::<bool>(),
        seed in any::<u64>(),
        simulated in any::<bool>(),
    ) {
        let engine = MapReduce::new(ClusterConfig {
            workers: 3,
            split_size: 7,
            reduce_partitions: 3,
            faults: FaultPlan {
                task_failure_rate: failure_rate,
                straggler_rate,
                straggler_factor: 3,
                speculative_execution: speculative,
                max_attempts: 100,
                seed,
            },
            task_overhead_units: 100,
            backend: if simulated { Backend::Simulated } else { Backend::WorkStealing },
        });
        let result = engine
            .run(inputs.clone(), &ModMapper { k }, &StatsReducer)
            .expect("100 attempts absorb any sub-certain failure rate");
        prop_assert_eq!(result.output, reference(&inputs, k));
    }

    #[test]
    fn metrics_are_internally_consistent(
        inputs in prop::collection::vec(0u64..1_000, 0..200),
        split_size in 1usize..50,
    ) {
        let engine = MapReduce::new(ClusterConfig {
            split_size,
            ..ClusterConfig::default()
        });
        let result = engine
            .run(inputs.clone(), &ModMapper { k: 5 }, &StatsReducer)
            .expect("healthy cluster");
        let m = &result.metrics;
        prop_assert_eq!(m.map_tasks, inputs.len().div_ceil(split_size));
        prop_assert_eq!(m.shuffled_pairs, inputs.len() as u64);
        prop_assert_eq!(m.pre_combine_pairs, inputs.len() as u64);
        prop_assert_eq!(m.distinct_keys as usize, result.grouped.len());
        prop_assert!(m.map_attempts >= m.map_tasks as u64);
        prop_assert_eq!(m.failed_attempts, 0);
    }
}
