//! Property tests for the stage-DAG scheduler: for random DAG shapes
//! and thread counts, the execution order must respect every declared
//! dependency, and the outputs must not depend on the thread count.

use ev_mapreduce::{DagConfig, DagSpec, DepKind, StageDep, StageId};
use ev_telemetry::{Telemetry, TraceCtx};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A random DAG shape: per stage, a partition count plus raw dependency
/// draws (resolved modulo the number of earlier stages), and a thread
/// count to run it on.
type Shape = Vec<(usize, Vec<(usize, bool)>)>;

fn arb_shape() -> impl Strategy<Value = (Shape, usize)> {
    (
        prop::collection::vec(
            (
                1usize..4,
                prop::collection::vec((0usize..64, any::<bool>()), 0..3),
            ),
            1..7,
        ),
        1usize..5,
    )
}

/// Resolved edges per stage: `(parent index, kind)`, one per parent.
fn resolve(shape: &Shape) -> Vec<(usize, Vec<(usize, DepKind)>)> {
    shape
        .iter()
        .enumerate()
        .map(|(i, (partitions, raw))| {
            let mut edges: Vec<(usize, DepKind)> = Vec::new();
            if i > 0 {
                for &(draw, shuffle) in raw {
                    let parent = draw % i;
                    if edges.iter().any(|(p, _)| *p == parent) {
                        continue; // one edge per parent
                    }
                    let kind = if shuffle {
                        DepKind::Shuffle
                    } else {
                        DepKind::Narrow
                    };
                    edges.push((parent, kind));
                }
            }
            (*partitions, edges)
        })
        .collect()
}

/// The input partitions task `(stage, partition)` reads, from the
/// declared edge semantics: narrow → `p % parent_partitions`, shuffle →
/// every parent partition.
fn required_inputs(
    stages: &[(usize, Vec<(usize, DepKind)>)],
    stage: usize,
    partition: usize,
) -> Vec<(usize, usize)> {
    let mut inputs = Vec::new();
    for &(parent, kind) in &stages[stage].1 {
        let parent_partitions = stages[parent].0;
        match kind {
            DepKind::Narrow => inputs.push((parent, partition % parent_partitions)),
            DepKind::Shuffle => inputs.extend((0..parent_partitions).map(|q| (parent, q))),
        }
    }
    inputs
}

/// Execution-order log `(stage, partition)` per started task.
type StartLog = Vec<(usize, usize)>;
/// Kept/terminal outputs per stage: `(stage, partition values)`.
type StageOutputs = Vec<(usize, Vec<u64>)>;

fn run_shape(
    stages: &[(usize, Vec<(usize, DepKind)>)],
    threads: usize,
) -> (StartLog, StageOutputs) {
    let log: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
    let mut dag: DagSpec<'_, u64> = DagSpec::new();
    for (partitions, edges) in stages {
        let deps: Vec<StageDep> = edges
            .iter()
            .map(|&(parent, kind)| match kind {
                DepKind::Narrow => StageDep::narrow(StageId(parent)),
                DepKind::Shuffle => StageDep::shuffle(StageId(parent)),
            })
            .collect();
        let log_ref = &log;
        dag.stage("prop_stage", *partitions, deps, move |ctx, inputs| {
            log_ref
                .lock()
                .unwrap()
                .push((ctx.stage_id.0, ctx.partition));
            let carried: u64 = inputs.iter().map(|i| **i).sum();
            carried + (ctx.stage_id.0 as u64) * 31 + ctx.partition as u64 + 1
        });
    }
    let run = dag
        .run(
            &DagConfig::new(threads),
            Telemetry::disabled(),
            TraceCtx::root(),
        )
        .expect("no faults injected");
    let outputs: Vec<(usize, Vec<u64>)> = run
        .outputs
        .iter()
        .map(|(id, parts)| (id.0, parts.iter().map(|p| **p).collect()))
        .collect();
    drop(dag);
    (log.into_inner().unwrap(), outputs)
}

proptest! {
    /// Every task starts only after every partition it reads has
    /// already started (and, since a task is launched only on its
    /// inputs' *completion*, finished).
    #[test]
    fn execution_order_respects_declared_dependencies(
        (shape, threads) in arb_shape(),
    ) {
        let stages = resolve(&shape);
        let (order, _) = run_shape(&stages, threads);

        let total: usize = stages.iter().map(|(p, _)| *p).sum();
        prop_assert_eq!(order.len(), total, "each task runs exactly once");
        let position: BTreeMap<(usize, usize), usize> = order
            .iter()
            .enumerate()
            .map(|(at, &task)| (task, at))
            .collect();
        prop_assert_eq!(position.len(), total, "no task ran twice");

        for (stage, (partitions, _)) in stages.iter().enumerate() {
            for partition in 0..*partitions {
                let at = position[&(stage, partition)];
                for input in required_inputs(&stages, stage, partition) {
                    prop_assert!(
                        position[&input] < at,
                        "task {:?} ran at {} before its input {:?} at {}",
                        (stage, partition),
                        at,
                        input,
                        position[&input],
                    );
                }
            }
        }
    }

    /// Kept/terminal outputs are a pure function of the DAG — the
    /// thread count never changes them.
    #[test]
    fn outputs_do_not_depend_on_the_thread_count(
        (shape, threads) in arb_shape(),
    ) {
        let stages = resolve(&shape);
        let (_, reference) = run_shape(&stages, 1);
        let (_, outputs) = run_shape(&stages, threads);
        prop_assert_eq!(outputs, reference);
    }
}
