//! Job execution metrics.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters and timings reported by a finished MapReduce job.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions with at least the shuffle run).
    pub reduce_tasks: usize,
    /// Total map-task attempts, including retries and speculative copies.
    pub map_attempts: u64,
    /// Attempts that failed and were retried.
    pub failed_attempts: u64,
    /// Speculative backup attempts launched for stragglers.
    pub speculative_attempts: u64,
    /// Intermediate pairs leaving the map stage (after combining).
    pub shuffled_pairs: u64,
    /// Intermediate pairs before the combiner ran (equals
    /// `shuffled_pairs` when no combiner is configured).
    pub pre_combine_pairs: u64,
    /// Distinct keys seen by the reduce stage.
    pub distinct_keys: u64,
    /// Wall time of the map stage.
    pub map_time: Duration,
    /// Wall time of the shuffle (partition + sort + group).
    pub shuffle_time: Duration,
    /// Wall time of the reduce stage.
    pub reduce_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Posting lists fetched from a driver-side inverted index while
    /// preparing or post-processing job inputs.
    pub index_postings_probed: u64,
    /// Driver-side gallery/extraction cache hits.
    pub index_cache_hits: u64,
    /// Full-store scans avoided by answering from an index instead.
    pub index_scans_avoided: u64,
}

impl JobMetrics {
    /// Combiner effectiveness: fraction of pairs eliminated before the
    /// shuffle (0 when no combining happened).
    #[must_use]
    pub fn combine_ratio(&self) -> f64 {
        if self.pre_combine_pairs == 0 {
            return 0.0;
        }
        1.0 - self.shuffled_pairs as f64 / self.pre_combine_pairs as f64
    }

    /// Merges another job's metrics into this one (for multi-job
    /// pipelines such as iterative set splitting).
    pub fn absorb(&mut self, other: &JobMetrics) {
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
        self.map_attempts += other.map_attempts;
        self.failed_attempts += other.failed_attempts;
        self.speculative_attempts += other.speculative_attempts;
        self.shuffled_pairs += other.shuffled_pairs;
        self.pre_combine_pairs += other.pre_combine_pairs;
        self.distinct_keys += other.distinct_keys;
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.total_time += other.total_time;
        self.index_postings_probed += other.index_postings_probed;
        self.index_cache_hits += other.index_cache_hits;
        self.index_scans_avoided += other.index_scans_avoided;
    }

    /// Adds one batch of index-layer counters (the engine itself never
    /// touches an index; drivers report through this).
    pub fn record_index_stats(
        &mut self,
        postings_probed: u64,
        cache_hits: u64,
        scans_avoided: u64,
    ) {
        self.index_postings_probed += postings_probed;
        self.index_cache_hits += cache_hits;
        self.index_scans_avoided += scans_avoided;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_ratio_handles_edge_cases() {
        let m = JobMetrics::default();
        assert_eq!(m.combine_ratio(), 0.0);
        let m = JobMetrics {
            pre_combine_pairs: 100,
            shuffled_pairs: 25,
            ..JobMetrics::default()
        };
        assert!((m.combine_ratio() - 0.75).abs() < 1e-12);
        let m = JobMetrics {
            pre_combine_pairs: 100,
            shuffled_pairs: 100,
            ..JobMetrics::default()
        };
        assert_eq!(m.combine_ratio(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = JobMetrics {
            map_tasks: 2,
            shuffled_pairs: 10,
            map_time: Duration::from_millis(5),
            ..JobMetrics::default()
        };
        let b = JobMetrics {
            map_tasks: 3,
            shuffled_pairs: 7,
            map_time: Duration::from_millis(3),
            ..JobMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.map_tasks, 5);
        assert_eq!(a.shuffled_pairs, 17);
        assert_eq!(a.map_time, Duration::from_millis(8));
    }

    #[test]
    fn index_stats_record_and_absorb() {
        let mut a = JobMetrics::default();
        a.record_index_stats(5, 2, 9);
        a.record_index_stats(1, 1, 1);
        let mut b = JobMetrics::default();
        b.record_index_stats(10, 20, 30);
        a.absorb(&b);
        assert_eq!(a.index_postings_probed, 16);
        assert_eq!(a.index_cache_hits, 23);
        assert_eq!(a.index_scans_avoided, 40);
    }
}
