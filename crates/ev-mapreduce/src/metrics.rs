//! Job execution metrics.

use ev_telemetry::{names, IndexCounters, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters and timings reported by a finished MapReduce job.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks (partitions with at least the shuffle run).
    pub reduce_tasks: usize,
    /// Total map-task attempts, including retries and speculative copies.
    pub map_attempts: u64,
    /// Attempts that failed and were retried.
    pub failed_attempts: u64,
    /// Speculative backup attempts launched for stragglers.
    pub speculative_attempts: u64,
    /// Intermediate pairs leaving the map stage (after combining).
    pub shuffled_pairs: u64,
    /// Intermediate pairs before the combiner ran (equals
    /// `shuffled_pairs` when no combiner is configured).
    pub pre_combine_pairs: u64,
    /// Distinct keys seen by the reduce stage.
    pub distinct_keys: u64,
    /// Work-stealing backend: successful steal operations across stages.
    pub steal_ops: u64,
    /// Work-stealing backend: tasks migrated between worker deques.
    pub tasks_stolen: u64,
    /// Work-stealing backend: per-stage worker-deque high-water marks,
    /// summed over stages.
    pub queue_depth_peaks: u64,
    /// Simulated backend: virtual scheduling units from job start to the
    /// last attempt completion, summed over stages (the deterministic
    /// makespan the Figure 9 cluster-scaling model reports).
    pub virtual_makespan_units: u64,
    /// Wall time of the map stage.
    pub map_time: Duration,
    /// Wall time of the shuffle (partition + sort + group).
    pub shuffle_time: Duration,
    /// Wall time of the reduce stage.
    pub reduce_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Index/cache-layer work absorbed while preparing or
    /// post-processing job inputs (the engine itself never touches an
    /// index; drivers report through
    /// [`JobMetrics::record_index_counters`]). Shared with the
    /// sequential pipeline's `StageTimings` via
    /// [`ev_telemetry::IndexCounters`].
    pub index: IndexCounters,
}

impl JobMetrics {
    /// Combiner effectiveness: fraction of pairs eliminated before the
    /// shuffle (0 when no combining happened).
    #[must_use]
    pub fn combine_ratio(&self) -> f64 {
        if self.pre_combine_pairs == 0 {
            return 0.0;
        }
        1.0 - self.shuffled_pairs as f64 / self.pre_combine_pairs as f64
    }

    /// Merges another job's metrics into this one (for multi-job
    /// pipelines such as iterative set splitting).
    pub fn absorb(&mut self, other: &JobMetrics) {
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
        self.map_attempts += other.map_attempts;
        self.failed_attempts += other.failed_attempts;
        self.speculative_attempts += other.speculative_attempts;
        self.shuffled_pairs += other.shuffled_pairs;
        self.pre_combine_pairs += other.pre_combine_pairs;
        self.distinct_keys += other.distinct_keys;
        self.steal_ops += other.steal_ops;
        self.tasks_stolen += other.tasks_stolen;
        self.queue_depth_peaks += other.queue_depth_peaks;
        self.virtual_makespan_units += other.virtual_makespan_units;
        self.map_time += other.map_time;
        self.shuffle_time += other.shuffle_time;
        self.reduce_time += other.reduce_time;
        self.total_time += other.total_time;
        self.index.absorb(&other.index);
    }

    /// The index/cache counter triple shared with the sequential
    /// pipeline.
    #[must_use]
    pub fn index_counters(&self) -> IndexCounters {
        self.index
    }

    /// Folds one batch of index-layer counters into the job totals —
    /// the single conversion path between driver-side counters and job
    /// metrics.
    pub fn record_index_counters(&mut self, counters: &IndexCounters) {
        self.index.absorb(counters);
    }

    /// Adds every field to its canonical `evm_mapreduce_*` /
    /// `evm_index_*` metric in `registry`.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        registry
            .counter(names::MAPREDUCE_MAP_TASKS)
            .add(self.map_tasks as u64);
        registry
            .counter(names::MAPREDUCE_REDUCE_TASKS)
            .add(self.reduce_tasks as u64);
        registry
            .counter(names::MAPREDUCE_MAP_ATTEMPTS)
            .add(self.map_attempts);
        registry
            .counter(names::MAPREDUCE_FAILED_ATTEMPTS)
            .add(self.failed_attempts);
        registry
            .counter(names::MAPREDUCE_SPECULATIVE_ATTEMPTS)
            .add(self.speculative_attempts);
        registry
            .counter(names::MAPREDUCE_SHUFFLED_PAIRS)
            .add(self.shuffled_pairs);
        registry
            .counter(names::MAPREDUCE_PRE_COMBINE_PAIRS)
            .add(self.pre_combine_pairs);
        registry
            .counter(names::MAPREDUCE_DISTINCT_KEYS)
            .add(self.distinct_keys);
        registry
            .counter(names::MAPREDUCE_STEAL_OPS)
            .add(self.steal_ops);
        registry
            .counter(names::MAPREDUCE_TASKS_STOLEN)
            .add(self.tasks_stolen);
        registry
            .counter(names::MAPREDUCE_QUEUE_DEPTH_PEAKS)
            .add(self.queue_depth_peaks);
        registry
            .counter(names::MAPREDUCE_VIRTUAL_MAKESPAN_UNITS)
            .add(self.virtual_makespan_units);
        registry
            .gauge(names::MAPREDUCE_MAP_TIME_SECONDS)
            .set(self.map_time.as_secs_f64());
        registry
            .gauge(names::MAPREDUCE_SHUFFLE_TIME_SECONDS)
            .set(self.shuffle_time.as_secs_f64());
        registry
            .gauge(names::MAPREDUCE_REDUCE_TIME_SECONDS)
            .set(self.reduce_time.as_secs_f64());
        registry
            .gauge(names::MAPREDUCE_TOTAL_TIME_SECONDS)
            .set(self.total_time.as_secs_f64());
        self.index.record_to(registry);
    }

    /// Folds one executor session's counters into the job totals.
    pub fn record_exec_session(&mut self, stats: &ev_exec::ExecStats) {
        self.steal_ops += stats.steal_ops;
        self.tasks_stolen += stats.tasks_stolen;
        self.queue_depth_peaks += stats.queue_depth_peak;
    }
}

/// Exports one `ev-exec` session's counters to the canonical
/// `evm_exec_*` metrics: aggregate counters, the per-session worker
/// count and queue-depth peak as gauges, and the per-worker executed
/// task counts as observations of the `evm_exec_worker_tasks`
/// histogram (its spread shows how evenly stealing balanced the load).
pub fn record_exec_stats(registry: &MetricsRegistry, stats: &ev_exec::ExecStats) {
    registry
        .counter(names::EXEC_TASKS_EXECUTED)
        .add(stats.tasks_executed);
    registry
        .counter(names::EXEC_TASKS_PANICKED)
        .add(stats.tasks_panicked);
    registry.counter(names::EXEC_STEAL_OPS).add(stats.steal_ops);
    registry
        .counter(names::EXEC_TASKS_STOLEN)
        .add(stats.tasks_stolen);
    registry
        .gauge(names::EXEC_WORKERS)
        .set(stats.threads as f64);
    registry
        .gauge(names::EXEC_QUEUE_DEPTH_PEAK)
        .set(stats.queue_depth_peak as f64);
    let histogram = registry.histogram(names::EXEC_WORKER_TASKS);
    for &count in &stats.per_worker_executed {
        histogram.record(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn combine_ratio_handles_edge_cases() {
        let m = JobMetrics::default();
        assert_eq!(m.combine_ratio(), 0.0);
        let m = JobMetrics {
            pre_combine_pairs: 100,
            shuffled_pairs: 25,
            ..JobMetrics::default()
        };
        assert!((m.combine_ratio() - 0.75).abs() < 1e-12);
        let m = JobMetrics {
            pre_combine_pairs: 100,
            shuffled_pairs: 100,
            ..JobMetrics::default()
        };
        assert_eq!(m.combine_ratio(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = JobMetrics {
            map_tasks: 2,
            shuffled_pairs: 10,
            map_time: Duration::from_millis(5),
            ..JobMetrics::default()
        };
        let b = JobMetrics {
            map_tasks: 3,
            shuffled_pairs: 7,
            map_time: Duration::from_millis(3),
            ..JobMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.map_tasks, 5);
        assert_eq!(a.shuffled_pairs, 17);
        assert_eq!(a.map_time, Duration::from_millis(8));
    }

    #[test]
    fn index_counters_record_and_absorb() {
        let mut a = JobMetrics::default();
        a.record_index_counters(&IndexCounters {
            postings_probed: 5,
            cache_hits: 2,
            scans_avoided: 9,
        });
        a.record_index_counters(&IndexCounters {
            postings_probed: 1,
            cache_hits: 1,
            scans_avoided: 1,
        });
        let mut b = JobMetrics::default();
        b.record_index_counters(&IndexCounters {
            postings_probed: 10,
            cache_hits: 20,
            scans_avoided: 30,
        });
        a.absorb(&b);
        assert_eq!(
            a.index_counters(),
            IndexCounters {
                postings_probed: 16,
                cache_hits: 23,
                scans_avoided: 40,
            }
        );
    }

    /// Fills every serialized leaf with a distinct non-zero value so
    /// any field `absorb`/`record_to` forgets shows up as an exact
    /// mismatch.
    fn distinct_metrics() -> JobMetrics {
        fn fill(value: &Value, next: &mut i128) -> Value {
            match value {
                Value::Int(_) => {
                    *next += 1;
                    Value::Int(*next)
                }
                Value::Obj(fields) => Value::Obj(
                    fields
                        .iter()
                        .map(|(k, v)| {
                            // Keep Duration nanos at zero so doubling
                            // secs never carries.
                            if k == "nanos" {
                                (k.clone(), Value::Int(0))
                            } else {
                                (k.clone(), fill(v, next))
                            }
                        })
                        .collect(),
                ),
                other => other.clone(),
            }
        }
        let template = JobMetrics::default().to_value();
        let mut next = 0i128;
        let filled = fill(&template, &mut next);
        JobMetrics::from_value(&filled).expect("JobMetrics round-trips")
    }

    /// Field-enumeration guard: absorbing a copy of itself must double
    /// *every* serialized leaf, so a newly added counter cannot be
    /// silently dropped from `JobMetrics::absorb`.
    #[test]
    fn absorb_covers_every_field() {
        fn assert_doubled(path: &str, before: &Value, after: &Value) {
            match (before, after) {
                (Value::Int(a), Value::Int(b)) => {
                    assert_eq!(*b, 2 * *a, "absorb dropped or mis-merged field {path}");
                }
                (Value::Obj(xs), Value::Obj(ys)) => {
                    assert_eq!(xs.len(), ys.len());
                    for ((k, x), (_, y)) in xs.iter().zip(ys) {
                        assert_doubled(&format!("{path}.{k}"), x, y);
                    }
                }
                other => panic!("unexpected field shape at {path}: {other:?}"),
            }
        }
        let base = distinct_metrics();
        let mut doubled = base.clone();
        doubled.absorb(&base);
        assert_doubled("metrics", &base.to_value(), &doubled.to_value());
    }

    /// Every serialized field must surface in the registry under its
    /// canonical name.
    #[test]
    fn record_to_exports_every_field() {
        let base = distinct_metrics();
        let registry = MetricsRegistry::new();
        base.record_to(&registry);
        let snapshot = registry.snapshot();
        let exported = |prefix: &str| {
            snapshot
                .counters
                .keys()
                .chain(snapshot.gauges.keys())
                .any(|k| k.starts_with(prefix))
        };
        for (field, value) in base.to_value().as_obj().unwrap() {
            if field == "index" {
                for (leaf, _) in value.as_obj().unwrap() {
                    assert!(
                        exported(&format!("evm_index_{leaf}")),
                        "index counter {leaf} not exported"
                    );
                }
            } else {
                assert!(
                    exported(&format!("evm_mapreduce_{field}")),
                    "field {field} not exported to the registry"
                );
            }
        }
    }
}
