//! A from-scratch MapReduce engine.
//!
//! The paper parallelizes EV-Matching with MapReduce on a 14-node Spark
//! cluster (paper §V). This workspace has no Spark, so this crate
//! reimplements the programming model the algorithms actually rely on
//! (see DESIGN.md §2): a deterministic, multi-threaded engine with the
//! four classic stages —
//!
//! 1. **split** — the input is chunked into fixed-size splits (optionally
//!    placed on the simulated distributed file system in [`dfs`]);
//! 2. **map** — map tasks run in parallel, emitting `(key, value)` pairs
//!    through an [`Emitter`]; the [`Backend`] decides whether "in
//!    parallel" means real work-stealing threads (`ev-exec`) or a
//!    deterministic virtual-time simulation of the cluster;
//! 3. **shuffle** — pairs are hash-partitioned by key, routed to their
//!    reduce partition, sorted and grouped (deterministically, regardless
//!    of task scheduling);
//! 4. **reduce** — reduce tasks aggregate each key's values in parallel.
//!
//! On top of the happy path the engine simulates the failure modes a real
//! cluster master must handle: injected task failures with bounded retry,
//! deterministic stragglers, and **speculative execution** that launches
//! backup attempts for straggling tasks and keeps whichever finishes
//! first. [`JobMetrics`] reports per-stage timings and counters.
//!
//! # Example
//!
//! ```
//! use ev_mapreduce::{ClusterConfig, Emitter, MapReduce, Mapper, Reducer};
//!
//! /// Classic word count.
//! struct Tokenize;
//! impl Mapper<&'static str> for Tokenize {
//!     type Key = String;
//!     type Value = u64;
//!     fn map(&self, line: &&'static str, out: &mut Emitter<String, u64>) {
//!         for w in line.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer<String, u64> for Sum {
//!     type Output = (String, u64);
//!     fn reduce(&self, key: &String, values: &[u64]) -> Vec<(String, u64)> {
//!         vec![(key.clone(), values.iter().sum())]
//!     }
//! }
//!
//! let engine = MapReduce::new(ClusterConfig::default());
//! let result = engine
//!     .run(vec!["a b a", "b c"], &Tokenize, &Sum)
//!     .unwrap();
//! assert_eq!(
//!     result.output,
//!     vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)],
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod config;
pub mod dag;
pub mod dfs;
mod engine;
mod metrics;

pub use api::{Combiner, Emitter, HashPartitioner, Mapper, Partitioner, Reducer};
pub use config::{Backend, ClusterConfig, FaultPlan};
pub use dag::{DagConfig, DagMetrics, DagRun, DagSpec, DepKind, StageDep, StageId, TaskCtx};
pub use engine::{JobError, JobResult, MapReduce, TelemetryExecObserver};
pub use metrics::{record_exec_stats, JobMetrics};
