//! The job executor: split → map → shuffle → reduce with retries and
//! speculative execution.

use crate::api::{Combiner, Emitter, HashPartitioner, Mapper, Partitioner, Reducer};
use crate::config::{Backend, ClusterConfig, FaultPlan};
use crate::metrics::JobMetrics;
use ev_telemetry::{Telemetry, TraceCtx};
use serde::Value;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::hash::Hash;
use std::time::Instant;

/// Errors a job can end with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The cluster configuration failed validation.
    InvalidConfig(ev_core::Error),
    /// A task exhausted its retry budget.
    TaskExhausted {
        /// Which stage the task belonged to.
        stage: &'static str,
        /// Task index within the stage.
        task: usize,
        /// Attempts consumed.
        attempts: u32,
    },
    /// A task panicked on the work-stealing backend and the panic
    /// exhausted its retry budget. Panics are isolated per task attempt
    /// and retried like injected failures; this error means every
    /// allowed attempt panicked.
    WorkerPanicked {
        /// Which stage the task belonged to.
        stage: &'static str,
        /// The panic payload message of the final attempt.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::InvalidConfig(e) => write!(f, "invalid cluster configuration: {e}"),
            JobError::TaskExhausted {
                stage,
                task,
                attempts,
            } => write!(f, "{stage} task {task} failed after {attempts} attempts"),
            JobError::WorkerPanicked { stage, message } => {
                write!(
                    f,
                    "{stage} task panicked on every allowed attempt: {message}"
                )
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::InvalidConfig(e) => Some(e),
            JobError::TaskExhausted { .. } | JobError::WorkerPanicked { .. } => None,
        }
    }
}

/// A finished job: outputs plus execution metrics.
#[derive(Debug, Clone)]
pub struct JobResult<K, T> {
    /// Flattened reduce outputs, ordered by key.
    pub output: Vec<T>,
    /// Reduce outputs grouped per key, ordered by key.
    pub grouped: Vec<(K, Vec<T>)>,
    /// Execution counters and timings.
    pub metrics: JobMetrics,
}

/// The MapReduce engine. Create one per cluster configuration and submit
/// jobs with [`run`](MapReduce::run) or
/// [`run_with`](MapReduce::run_with).
#[derive(Debug, Clone)]
pub struct MapReduce {
    config: ClusterConfig,
    telemetry: Telemetry,
    parent_ctx: TraceCtx,
}

/// SplitMix64: cheap deterministic per-(seed, task, attempt) draw.
pub(crate) fn fault_draw(seed: u64, stage: u64, task: u64, attempt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(stage.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(task.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d049bb133111eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Burns `units` of deterministic CPU work (same kernel as the vision
/// cost model, duplicated to avoid a dependency cycle).
fn burn(units: u64) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
        acc ^= acc >> 29;
    }
    std::hint::black_box(acc)
}

/// Does this attempt fail, per the fault plan? Pure in (plan, stage,
/// task, attempt) — both backends consult the same draw.
pub(crate) fn attempt_fails(faults: &FaultPlan, stage_id: u64, task: usize, attempt: u32) -> bool {
    faults.task_failure_rate > 0.0
        && fault_draw(faults.seed, stage_id, task as u64, attempt.into()) < faults.task_failure_rate
}

/// Does this attempt straggle? Same determinism contract as
/// [`attempt_fails`], drawn from an independent stream.
fn attempt_straggles(faults: &FaultPlan, stage_id: u64, task: usize, attempt: u32) -> bool {
    faults.straggler_rate > 0.0
        && fault_draw(faults.seed ^ 0x5757, stage_id, task as u64, attempt.into())
            < faults.straggler_rate
}

/// A map task's payload: the (possibly combined) pairs plus the raw
/// pre-combine emit count.
type MapPayload<K, V> = (Vec<(K, V)>, u64);
/// Reduce outputs grouped by key.
type Grouped<K, T> = Vec<(K, Vec<T>)>;

enum TaskOutcome<T> {
    Done { task: usize, payload: T },
    Failed { task: usize },
}

/// Schedules the next attempt of `task` through `submit`, plus an
/// immediate speculative backup when the fault plan marks the attempt
/// straggling. Shared by both backends so attempt numbering, metrics
/// and telemetry events are identical regardless of how attempts
/// actually execute.
#[allow(clippy::too_many_arguments)]
fn schedule(
    task: usize,
    attempts_next: &mut [u32],
    metrics: &mut JobMetrics,
    submit: &mut dyn FnMut(usize, u32),
    faults: &FaultPlan,
    stage_id: u64,
    stage_name: &'static str,
    tel: &Telemetry,
    stage_ctx: TraceCtx,
) {
    let attempt = attempts_next[task];
    attempts_next[task] += 1;
    metrics.map_attempts += u64::from(stage_id == 0);
    submit(task, attempt);
    let straggles = attempt_straggles(faults, stage_id, task, attempt);
    if straggles {
        let args = vec![
            ("stage".to_string(), Value::Str(stage_name.to_string())),
            ("task".to_string(), Value::Int(task as i128)),
            ("attempt".to_string(), Value::Int(i128::from(attempt))),
        ];
        tel.event_ctx("straggler_detected", stage_ctx, args.clone());
        tel.flight().instant("straggler_detected", stage_ctx, args);
    }
    if straggles && faults.speculative_execution {
        let backup = attempts_next[task];
        attempts_next[task] += 1;
        metrics.speculative_attempts += 1;
        metrics.map_attempts += u64::from(stage_id == 0);
        let args = vec![
            ("stage".to_string(), Value::Str(stage_name.to_string())),
            ("task".to_string(), Value::Int(task as i128)),
            ("attempt".to_string(), Value::Int(i128::from(backup))),
        ];
        tel.event_ctx("speculative_launched", stage_ctx, args.clone());
        tel.flight()
            .instant("speculative_launched", stage_ctx, args);
        submit(task, backup);
    }
}

/// The [`ev_exec::ExecObserver`] bridging worker-side executor events
/// into telemetry: steals become `task_stolen` trace instants and
/// flight entries attributed to the stage's [`TraceCtx`], and task
/// durations feed the exact-latency reservoir behind the
/// `evm_exec_task_latency_p*` gauges. Usable by any direct `ev-exec`
/// embedder (the sharded matcher passes one to `map_ordered_observed`).
#[derive(Debug, Clone)]
pub struct TelemetryExecObserver {
    telemetry: Telemetry,
    stage: &'static str,
    ctx: TraceCtx,
}

impl TelemetryExecObserver {
    /// An observer attributing events to `stage` under `ctx`.
    #[must_use]
    pub fn new(telemetry: &Telemetry, stage: &'static str, ctx: TraceCtx) -> Self {
        TelemetryExecObserver {
            telemetry: telemetry.clone(),
            stage,
            ctx,
        }
    }
}

impl ev_exec::ExecObserver for TelemetryExecObserver {
    fn wants_timing(&self) -> bool {
        self.telemetry.counters_on()
    }

    fn steal(&self, thief: usize, victim: usize, moved: usize) {
        let args = vec![
            ("stage".to_string(), Value::Str(self.stage.to_string())),
            ("thief".to_string(), Value::Int(thief as i128)),
            ("victim".to_string(), Value::Int(victim as i128)),
            ("moved".to_string(), Value::Int(moved as i128)),
        ];
        self.telemetry
            .event_ctx("task_stolen", self.ctx, args.clone());
        self.telemetry
            .flight()
            .instant("task_stolen", self.ctx, args);
    }

    fn task_finished(&self, _ctx: ev_exec::WorkerCtx, dur_ns: u64, _panicked: bool) {
        if dur_ns > 0 {
            self.telemetry.task_latency().record(dur_ns);
        }
    }
}

impl MapReduce {
    /// Creates an engine with the given configuration and telemetry
    /// disabled.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        MapReduce {
            config,
            telemetry: Telemetry::disabled().clone(),
            parent_ctx: TraceCtx::default(),
        }
    }

    /// Attaches a telemetry handle: finished jobs record their
    /// [`JobMetrics`] into its registry, and at the `full` level every
    /// task attempt becomes a trace span with retry / speculative /
    /// straggler instant events.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Parents every job span under `ctx` (e.g. a matching pipeline's
    /// span), so the exported trace links the job → round → task →
    /// attempt tree back to the query that submitted it. Jobs run
    /// without a parent start a fresh trace.
    #[must_use]
    pub fn with_parent_ctx(mut self, ctx: TraceCtx) -> Self {
        self.parent_ctx = ctx;
        self
    }

    /// The telemetry handle in force (the shared disabled instance by
    /// default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs a job with the default hash partitioner and no combiner.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidConfig`] for a bad configuration or
    /// [`JobError::TaskExhausted`] if fault injection defeats the retry
    /// budget.
    pub fn run<I, M, R>(
        &self,
        inputs: Vec<I>,
        mapper: &M,
        reducer: &R,
    ) -> Result<JobResult<M::Key, R::Output>, JobError>
    where
        I: Send + Sync,
        M: Mapper<I>,
        M::Key: Ord + Hash + Clone + Send + Sync,
        M::Value: Send + Sync,
        R: Reducer<M::Key, M::Value>,
        R::Output: Send + Clone,
    {
        self.run_with(
            inputs,
            mapper,
            reducer,
            None::<&NoCombiner>,
            &HashPartitioner,
        )
    }

    /// Runs a job with an optional combiner and a custom partitioner.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidConfig`] for a bad configuration or
    /// [`JobError::TaskExhausted`] if fault injection defeats the retry
    /// budget.
    pub fn run_with<I, M, R, C, P>(
        &self,
        inputs: Vec<I>,
        mapper: &M,
        reducer: &R,
        combiner: Option<&C>,
        partitioner: &P,
    ) -> Result<JobResult<M::Key, R::Output>, JobError>
    where
        I: Send + Sync,
        M: Mapper<I>,
        M::Key: Ord + Hash + Clone + Send + Sync,
        M::Value: Send + Sync,
        R: Reducer<M::Key, M::Value>,
        R::Output: Send + Clone,
        C: Combiner<M::Key, M::Value>,
        P: Partitioner<M::Key>,
    {
        self.config.validate().map_err(JobError::InvalidConfig)?;
        let job_ctx = self.parent_ctx.child();
        let mut job_span = self.telemetry.span_ctx("mapreduce_job", "round", job_ctx);
        self.telemetry
            .flight()
            .instant("job_started", job_ctx, Vec::new());
        let job_start = Instant::now();
        let mut metrics = JobMetrics::default();

        // ---- split ----
        let splits: Vec<&[I]> = inputs.chunks(self.config.split_size).collect();
        metrics.map_tasks = splits.len();

        // ---- map ----
        let map_start = Instant::now();
        let map_outputs: Vec<MapPayload<M::Key, M::Value>> = self.run_stage(
            "map",
            0,
            job_ctx,
            splits.len(),
            &mut metrics,
            |task| {
                let mut emitter = Emitter::new();
                for record in splits[task] {
                    mapper.map(record, &mut emitter);
                }
                let pairs = emitter.into_pairs();
                let raw = pairs.len() as u64;
                let combined = match combiner {
                    None => pairs,
                    Some(c) => {
                        // Group this task's pairs by key, combine each
                        // group locally.
                        let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
                        for (k, v) in pairs {
                            groups.entry(k).or_default().push(v);
                        }
                        let mut combined = Vec::new();
                        for (k, vs) in groups {
                            for v in c.combine(&k, vs) {
                                combined.push((k.clone(), v));
                            }
                        }
                        combined
                    }
                };
                (combined, raw)
            },
            |payload: &MapPayload<M::Key, M::Value>| payload.1,
            &mut |m, raw| m.pre_combine_pairs += raw,
        )?;
        metrics.map_time = map_start.elapsed();

        // ---- shuffle: partition, route, sort, group ----
        let shuffle_start = Instant::now();
        let partitions = self.config.reduce_partitions;
        let mut buckets: Vec<BTreeMap<M::Key, Vec<M::Value>>> =
            (0..partitions).map(|_| BTreeMap::new()).collect();
        // Iterate tasks in task order so value order is deterministic
        // regardless of which worker ran which task when.
        for (pairs, _) in map_outputs {
            metrics.shuffled_pairs += pairs.len() as u64;
            for (k, v) in pairs {
                let p = partitioner.partition(&k, partitions);
                buckets[p].entry(k).or_default().push(v);
            }
        }
        if combiner.is_none() {
            metrics.pre_combine_pairs = metrics.shuffled_pairs;
        }
        metrics.distinct_keys = buckets.iter().map(|b| b.len() as u64).sum();
        metrics.shuffle_time = shuffle_start.elapsed();

        // ---- reduce ----
        let reduce_start = Instant::now();
        let nonempty: Vec<usize> = (0..partitions)
            .filter(|&p| !buckets[p].is_empty())
            .collect();
        metrics.reduce_tasks = nonempty.len();
        let reduced: Vec<Grouped<M::Key, R::Output>> = self.run_stage(
            "reduce",
            1,
            job_ctx,
            nonempty.len(),
            &mut metrics,
            |idx| {
                let bucket = &buckets[nonempty[idx]];
                bucket
                    .iter()
                    .map(|(k, vs)| (k.clone(), reducer.reduce(k, vs)))
                    .collect()
            },
            |_out: &Grouped<M::Key, R::Output>| 0,
            &mut |_m, _raw| {},
        )?;
        metrics.reduce_time = reduce_start.elapsed();

        // Merge partitions into key order.
        let mut grouped: Vec<(M::Key, Vec<R::Output>)> = reduced.into_iter().flatten().collect();
        grouped.sort_by(|a, b| a.0.cmp(&b.0));
        let output = grouped
            .iter()
            .flat_map(|(_, outs)| outs.iter())
            .cloned()
            .collect::<Vec<_>>();

        metrics.total_time = job_start.elapsed();
        if self.telemetry.counters_on() {
            metrics.record_to(self.telemetry.registry());
        }
        let flight = self.telemetry.flight();
        flight.counter_delta(
            ev_telemetry::names::MAPREDUCE_FAILED_ATTEMPTS,
            job_ctx,
            metrics.failed_attempts,
        );
        flight.counter_delta(
            ev_telemetry::names::MAPREDUCE_SPECULATIVE_ATTEMPTS,
            job_ctx,
            metrics.speculative_attempts,
        );
        flight.span(
            "mapreduce_job",
            job_ctx,
            job_start,
            vec![
                (
                    "map_tasks".to_string(),
                    Value::Int(metrics.map_tasks as i128),
                ),
                (
                    "map_attempts".to_string(),
                    Value::Int(i128::from(metrics.map_attempts)),
                ),
            ],
        );
        job_span.arg("map_tasks", Value::Int(metrics.map_tasks as i128));
        job_span.arg("reduce_tasks", Value::Int(metrics.reduce_tasks as i128));
        job_span.arg("map_attempts", Value::Int(i128::from(metrics.map_attempts)));
        drop(job_span);
        Ok(JobResult {
            output,
            grouped,
            metrics,
        })
    }

    /// Runs one stage's tasks with retry, straggler simulation and
    /// speculative execution, dispatching on the configured
    /// [`Backend`]. `work` must be safe to run multiple times for the
    /// same task (pure).
    #[allow(clippy::too_many_arguments)]
    fn run_stage<T, F, S>(
        &self,
        stage_name: &'static str,
        stage_id: u64,
        job_ctx: TraceCtx,
        task_count: usize,
        metrics: &mut JobMetrics,
        work: F,
        size_of: S,
        on_raw: &mut dyn FnMut(&mut JobMetrics, u64),
    ) -> Result<Vec<T>, JobError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        S: Fn(&T) -> u64 + Sync,
    {
        if task_count == 0 {
            return Ok(Vec::new());
        }
        let stage_ctx = job_ctx.child();
        let mut stage_span = self.telemetry.span_ctx(stage_name, "stage", stage_ctx);
        stage_span.arg("tasks", Value::Int(task_count as i128));
        self.telemetry.flight().instant(
            "stage_started",
            stage_ctx,
            vec![
                ("stage".to_string(), Value::Str(stage_name.to_string())),
                ("tasks".to_string(), Value::Int(task_count as i128)),
            ],
        );
        let results = match self.config.backend {
            Backend::WorkStealing => self
                .run_stage_stealing(stage_name, stage_id, stage_ctx, task_count, metrics, &work)?,
            Backend::Simulated => self
                .run_stage_simulated(stage_name, stage_id, stage_ctx, task_count, metrics, &work)?,
        };
        let mut out = Vec::with_capacity(task_count);
        for payload in results {
            let payload = payload.expect("all tasks completed");
            on_raw(metrics, size_of(&payload));
            out.push(payload);
        }
        Ok(out)
    }

    /// The real-thread backend: every scheduled attempt becomes an
    /// `ev-exec` task on a work-stealing pool of `workers` OS threads.
    /// The driver loop below runs on the submitting thread and owns all
    /// retry / speculation bookkeeping; workers only execute attempts.
    ///
    /// A worker panic is isolated to its attempt and surfaces here as a
    /// failed attempt (retried up to the budget, then
    /// [`JobError::WorkerPanicked`]).
    #[allow(clippy::too_many_arguments)]
    fn run_stage_stealing<T, F>(
        &self,
        stage_name: &'static str,
        stage_id: u64,
        stage_ctx: TraceCtx,
        task_count: usize,
        metrics: &mut JobMetrics,
        work: &F,
    ) -> Result<Vec<Option<T>>, JobError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let tel = &self.telemetry;
        let faults = self.config.faults;
        let overhead = self.config.task_overhead_units;
        let exec = ev_exec::Executor::new(self.config.workers);
        let observer = TelemetryExecObserver::new(tel, stage_name, stage_ctx);

        // One attempt, executed on whichever worker claims it. The
        // payload carries the attempt's TraceCtx (child of the stage
        // span), allocated at submission — so the span the worker
        // records is causally parented no matter which thread runs it,
        // or whether it was stolen first.
        let attempt_work =
            |_ctx: ev_exec::WorkerCtx, (task, attempt, attempt_ctx): (usize, u32, TraceCtx)| {
                let attempt_start = (tel.tracing_on() || tel.flight().enabled()).then(Instant::now);
                let close_span = |outcome: &'static str| {
                    if let Some(start) = attempt_start {
                        let args = vec![
                            ("stage".to_string(), Value::Str(stage_name.to_string())),
                            ("task".to_string(), Value::Int(task as i128)),
                            ("attempt".to_string(), Value::Int(i128::from(attempt))),
                            ("outcome".to_string(), Value::Str(outcome.to_string())),
                        ];
                        if tel.tracing_on() {
                            tel.tracer().complete_ctx(
                                format!("{stage_name}[{task}]#{attempt}"),
                                "task",
                                start,
                                attempt_ctx,
                                args.clone(),
                            );
                        }
                        tel.flight().span(
                            format!("{stage_name}[{task}]#{attempt}"),
                            attempt_ctx,
                            start,
                            args,
                        );
                    }
                };
                if attempt_fails(&faults, stage_id, task, attempt) {
                    tel.event_ctx(
                        "task_failed",
                        attempt_ctx,
                        vec![
                            ("stage".to_string(), Value::Str(stage_name.to_string())),
                            ("task".to_string(), Value::Int(task as i128)),
                            ("attempt".to_string(), Value::Int(i128::from(attempt))),
                        ],
                    );
                    close_span("failed");
                    return TaskOutcome::Failed { task };
                }
                // Fixed task overhead; stragglers burn a multiple.
                if overhead > 0 {
                    let units = if attempt_straggles(&faults, stage_id, task, attempt) {
                        overhead * faults.straggler_factor
                    } else {
                        overhead
                    };
                    let _ = burn(units);
                }
                let payload = work(task);
                close_span("done");
                TaskOutcome::Done { task, payload }
            };

        let (outcome, stats) = exec.session_observed(
            attempt_work,
            |handle| {
                let mut attempts_next: Vec<u32> = vec![0; task_count];
                let mut failures: Vec<u32> = vec![0; task_count];
                let mut results: Vec<Option<T>> = (0..task_count).map(|_| None).collect();
                let mut remaining = task_count;
                let mut submit = |task: usize, attempt: u32| {
                    handle.submit(task as u64, (task, attempt, stage_ctx.child()));
                };
                for task in 0..task_count {
                    schedule(
                        task,
                        &mut attempts_next,
                        metrics,
                        &mut submit,
                        &faults,
                        stage_id,
                        stage_name,
                        tel,
                        stage_ctx,
                    );
                }
                while remaining > 0 {
                    // Invariant: every unfinished task has at least one
                    // attempt outstanding (failures resubmit before the next
                    // recv), so the session cannot drain early.
                    let completion = handle
                        .recv()
                        .expect("unfinished tasks always have an attempt in flight");
                    let (task, panic_message) = match completion.result {
                        Ok(TaskOutcome::Done { task, payload }) => {
                            if results[task].is_none() {
                                results[task] = Some(payload);
                                remaining -= 1;
                            }
                            // Else: a speculative or duplicate attempt lost
                            // the race; drop its output.
                            continue;
                        }
                        Ok(TaskOutcome::Failed { task }) => (task, None),
                        Err(panic) => {
                            let task = completion.task as usize;
                            let args = vec![
                                ("stage".to_string(), Value::Str(stage_name.to_string())),
                                ("task".to_string(), Value::Int(task as i128)),
                                ("message".to_string(), Value::Str(panic.message.clone())),
                            ];
                            tel.event_ctx("task_panicked", stage_ctx, args.clone());
                            tel.flight().instant("task_panicked", stage_ctx, args);
                            (task, Some(panic.message))
                        }
                    };
                    if results[task].is_some() {
                        continue; // another attempt already won
                    }
                    metrics.failed_attempts += 1;
                    failures[task] += 1;
                    if failures[task] >= faults.max_attempts {
                        tel.flight().instant(
                            "retry_budget_exhausted",
                            stage_ctx,
                            vec![
                                ("stage".to_string(), Value::Str(stage_name.to_string())),
                                ("task".to_string(), Value::Int(task as i128)),
                                (
                                    "attempts".to_string(),
                                    Value::Int(i128::from(failures[task])),
                                ),
                            ],
                        );
                        return match panic_message {
                            Some(message) => {
                                tel.dump_flight("worker_panicked");
                                Err(JobError::WorkerPanicked {
                                    stage: stage_name,
                                    message,
                                })
                            }
                            None => {
                                tel.dump_flight("task_exhausted");
                                Err(JobError::TaskExhausted {
                                    stage: stage_name,
                                    task,
                                    attempts: failures[task],
                                })
                            }
                        };
                    }
                    let retry_args = vec![
                        ("stage".to_string(), Value::Str(stage_name.to_string())),
                        ("task".to_string(), Value::Int(task as i128)),
                        (
                            "failures".to_string(),
                            Value::Int(i128::from(failures[task])),
                        ),
                    ];
                    tel.event_ctx("retry_scheduled", stage_ctx, retry_args.clone());
                    tel.flight()
                        .instant("retry_scheduled", stage_ctx, retry_args);
                    schedule(
                        task,
                        &mut attempts_next,
                        metrics,
                        &mut submit,
                        &faults,
                        stage_id,
                        stage_name,
                        tel,
                        stage_ctx,
                    );
                }
                Ok(results)
            },
            &observer,
        );
        metrics.record_exec_session(&stats);
        if tel.counters_on() {
            crate::metrics::record_exec_stats(tel.registry(), &stats);
        }
        outcome
    }

    /// The deterministic backend: a single-threaded discrete-event
    /// simulation of a `workers`-node cluster running in *virtual
    /// time*. Each attempt costs `1 + task_overhead_units` virtual
    /// units (times `straggler_factor` when it straggles); attempts are
    /// list-scheduled onto the earliest-free simulated worker and
    /// complete in `(done_at, seq)` order, so failure retries and
    /// speculation races resolve identically on every run and every
    /// host. No wall clock is read for any scheduling decision.
    ///
    /// Only winning attempts execute `work` (losers are charged virtual
    /// time, not CPU), which makes this backend cheap enough for dense
    /// fault-injection sweeps and for the paper's Figure 9
    /// cluster-scaling model. The stage's virtual makespan accumulates
    /// into [`JobMetrics::virtual_makespan_units`].
    fn run_stage_simulated<T, F>(
        &self,
        stage_name: &'static str,
        stage_id: u64,
        stage_ctx: TraceCtx,
        task_count: usize,
        metrics: &mut JobMetrics,
        work: &F,
    ) -> Result<Vec<Option<T>>, JobError>
    where
        F: Fn(usize) -> T,
    {
        let tel = &self.telemetry;
        let faults = self.config.faults;
        let overhead = self.config.task_overhead_units;

        let mut attempts_next: Vec<u32> = vec![0; task_count];
        let mut failures: Vec<u32> = vec![0; task_count];
        let mut results: Vec<Option<T>> = (0..task_count).map(|_| None).collect();
        let mut remaining = task_count;

        // Simulated workers, keyed by the virtual time they free up;
        // ties break on worker index. Completion events order by
        // (done_at, seq): seq is the global submission number, so
        // simultaneous completions resolve in submission order.
        let mut free: BinaryHeap<Reverse<(u64, usize)>> =
            (0..self.config.workers).map(|w| Reverse((0, w))).collect();
        let mut events: BinaryHeap<Reverse<(u64, u64, usize, u32)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut now: u64 = 0;

        fn assign(
            task: usize,
            attempt: u32,
            cost: u64,
            now: u64,
            free: &mut BinaryHeap<Reverse<(u64, usize)>>,
            events: &mut BinaryHeap<Reverse<(u64, u64, usize, u32)>>,
            seq: &mut u64,
        ) {
            let Reverse((free_at, worker)) = free.pop().expect("worker heap never empties");
            let start = free_at.max(now);
            let done = start + cost;
            free.push(Reverse((done, worker)));
            *seq += 1;
            events.push(Reverse((done, *seq, task, attempt)));
        }

        macro_rules! sim_schedule {
            ($task:expr) => {
                schedule(
                    $task,
                    &mut attempts_next,
                    metrics,
                    &mut |task, attempt| {
                        let units = if attempt_straggles(&faults, stage_id, task, attempt) {
                            overhead * faults.straggler_factor
                        } else {
                            overhead
                        };
                        assign(
                            task,
                            attempt,
                            1 + units,
                            now,
                            &mut free,
                            &mut events,
                            &mut seq,
                        );
                    },
                    &faults,
                    stage_id,
                    stage_name,
                    tel,
                    stage_ctx,
                )
            };
        }

        for task in 0..task_count {
            sim_schedule!(task);
        }

        while remaining > 0 {
            let Reverse((done_at, _seq, task, attempt)) = events
                .pop()
                .expect("unfinished tasks always have an attempt in flight");
            now = done_at;
            if attempt_fails(&faults, stage_id, task, attempt) {
                let fail_args = vec![
                    ("stage".to_string(), Value::Str(stage_name.to_string())),
                    ("task".to_string(), Value::Int(task as i128)),
                    ("attempt".to_string(), Value::Int(i128::from(attempt))),
                ];
                tel.event_ctx("task_failed", stage_ctx, fail_args.clone());
                tel.flight().instant("task_failed", stage_ctx, fail_args);
                if results[task].is_some() {
                    continue; // another attempt already won
                }
                metrics.failed_attempts += 1;
                failures[task] += 1;
                if failures[task] >= faults.max_attempts {
                    tel.flight().instant(
                        "retry_budget_exhausted",
                        stage_ctx,
                        vec![
                            ("stage".to_string(), Value::Str(stage_name.to_string())),
                            ("task".to_string(), Value::Int(task as i128)),
                            (
                                "attempts".to_string(),
                                Value::Int(i128::from(failures[task])),
                            ),
                        ],
                    );
                    tel.dump_flight("task_exhausted");
                    return Err(JobError::TaskExhausted {
                        stage: stage_name,
                        task,
                        attempts: failures[task],
                    });
                }
                let retry_args = vec![
                    ("stage".to_string(), Value::Str(stage_name.to_string())),
                    ("task".to_string(), Value::Int(task as i128)),
                    (
                        "failures".to_string(),
                        Value::Int(i128::from(failures[task])),
                    ),
                ];
                tel.event_ctx("retry_scheduled", stage_ctx, retry_args.clone());
                tel.flight()
                    .instant("retry_scheduled", stage_ctx, retry_args);
                sim_schedule!(task);
            } else if results[task].is_none() {
                results[task] = Some(work(task));
                remaining -= 1;
            }
            // Else: a speculative loser — its virtual cost was charged
            // to its worker, but `work` never runs for it.
        }
        metrics.virtual_makespan_units += now;
        Ok(results)
    }
}

/// Placeholder combiner type for [`MapReduce::run`]'s `None`.
struct NoCombiner;
impl<K, V> Combiner<K, V> for NoCombiner {
    fn combine(&self, _key: &K, values: Vec<V>) -> Vec<V> {
        values
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field mutation reads clearer in validation tests
mod tests {
    use super::*;
    use crate::config::FaultPlan;

    struct Tokenize;
    impl Mapper<String> for Tokenize {
        type Key = String;
        type Value = u64;
        fn map(&self, line: &String, out: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct Sum;
    impl Reducer<String, u64> for Sum {
        type Output = (String, u64);
        fn reduce(&self, key: &String, values: &[u64]) -> Vec<(String, u64)> {
            vec![(key.clone(), values.iter().sum())]
        }
    }

    struct SumCombiner;
    impl Combiner<String, u64> for SumCombiner {
        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn corpus(lines: usize) -> Vec<String> {
        (0..lines)
            .map(|i| format!("w{} w{} shared", i % 7, i % 13))
            .collect()
    }

    fn assert_wordcount_correct(output: &[(String, u64)], lines: usize) {
        let total: u64 = output.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3 * lines as u64, "every token counted once");
        let shared = output.iter().find(|(w, _)| w == "shared").unwrap();
        assert_eq!(shared.1, lines as u64);
    }

    #[test]
    fn wordcount_end_to_end() {
        let engine = MapReduce::new(ClusterConfig::default());
        let result = engine.run(corpus(100), &Tokenize, &Sum).unwrap();
        assert_wordcount_correct(&result.output, 100);
        // Output is key-ordered.
        let keys: Vec<&String> = result.output.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(result.metrics.map_tasks >= 1);
        assert_eq!(result.metrics.failed_attempts, 0);
    }

    #[test]
    fn output_is_deterministic_across_runs_and_worker_counts() {
        let base = MapReduce::new(ClusterConfig::sequential())
            .run(corpus(200), &Tokenize, &Sum)
            .unwrap();
        for workers in [2, 4, 8] {
            let cfg = ClusterConfig {
                workers,
                reduce_partitions: 3,
                split_size: 17,
                ..ClusterConfig::default()
            };
            let r = MapReduce::new(cfg)
                .run(corpus(200), &Tokenize, &Sum)
                .unwrap();
            assert_eq!(r.output, base.output, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let engine = MapReduce::new(ClusterConfig::default());
        let result = engine.run(Vec::<String>::new(), &Tokenize, &Sum).unwrap();
        assert!(result.output.is_empty());
        assert_eq!(result.metrics.map_tasks, 0);
        assert_eq!(result.metrics.reduce_tasks, 0);
    }

    #[test]
    fn combiner_reduces_shuffle_volume_without_changing_results() {
        let cfg = ClusterConfig {
            split_size: 50,
            ..ClusterConfig::default()
        };
        let engine = MapReduce::new(cfg);
        let plain = engine.run(corpus(200), &Tokenize, &Sum).unwrap();
        let combined = engine
            .run_with(
                corpus(200),
                &Tokenize,
                &Sum,
                Some(&SumCombiner),
                &HashPartitioner,
            )
            .unwrap();
        assert_eq!(plain.output, combined.output);
        assert!(
            combined.metrics.shuffled_pairs < plain.metrics.shuffled_pairs,
            "combiner must shrink the shuffle ({} vs {})",
            combined.metrics.shuffled_pairs,
            plain.metrics.shuffled_pairs
        );
        assert!(combined.metrics.combine_ratio() > 0.5);
        assert_eq!(plain.metrics.combine_ratio(), 0.0);
    }

    #[test]
    fn grouped_output_collects_per_key() {
        let engine = MapReduce::new(ClusterConfig::default());
        let result = engine.run(corpus(50), &Tokenize, &Sum).unwrap();
        assert_eq!(result.grouped.len(), result.output.len());
        for (k, outs) in &result.grouped {
            assert_eq!(outs.len(), 1);
            assert_eq!(&outs[0].0, k);
        }
    }

    #[test]
    fn injected_failures_are_retried_to_success() {
        let cfg = ClusterConfig {
            faults: FaultPlan {
                task_failure_rate: 0.4,
                max_attempts: 50,
                seed: 3,
                ..FaultPlan::default()
            },
            split_size: 5,
            ..ClusterConfig::default()
        };
        let engine = MapReduce::new(cfg);
        let result = engine.run(corpus(100), &Tokenize, &Sum).unwrap();
        assert_wordcount_correct(&result.output, 100);
        assert!(
            result.metrics.failed_attempts > 0,
            "with 40% failure rate over 20 tasks some attempts must fail"
        );
    }

    #[test]
    fn retry_budget_exhaustion_aborts_the_job() {
        let cfg = ClusterConfig {
            faults: FaultPlan {
                task_failure_rate: 0.95,
                max_attempts: 2,
                seed: 1,
                ..FaultPlan::default()
            },
            split_size: 1,
            ..ClusterConfig::default()
        };
        let engine = MapReduce::new(cfg);
        let err = engine.run(corpus(50), &Tokenize, &Sum).unwrap_err();
        match err {
            JobError::TaskExhausted { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected TaskExhausted, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut cfg = ClusterConfig::default();
        cfg.workers = 0;
        let err = MapReduce::new(cfg)
            .run(corpus(10), &Tokenize, &Sum)
            .unwrap_err();
        assert!(matches!(err, JobError::InvalidConfig(_)));
        assert!(err.to_string().contains("worker"));
    }

    #[test]
    fn speculative_execution_launches_backups_and_keeps_results_correct() {
        let cfg = ClusterConfig {
            faults: FaultPlan {
                straggler_rate: 0.5,
                straggler_factor: 4,
                speculative_execution: true,
                seed: 9,
                ..FaultPlan::default()
            },
            split_size: 5,
            task_overhead_units: 10_000,
            ..ClusterConfig::default()
        };
        let engine = MapReduce::new(cfg);
        let result = engine.run(corpus(100), &Tokenize, &Sum).unwrap();
        assert_wordcount_correct(&result.output, 100);
        assert!(
            result.metrics.speculative_attempts > 0,
            "half the tasks straggle; backups must launch"
        );
    }

    #[test]
    fn stragglers_without_speculation_still_finish() {
        let cfg = ClusterConfig {
            faults: FaultPlan {
                straggler_rate: 0.3,
                straggler_factor: 3,
                speculative_execution: false,
                seed: 5,
                ..FaultPlan::default()
            },
            split_size: 10,
            task_overhead_units: 1_000,
            ..ClusterConfig::default()
        };
        let result = MapReduce::new(cfg)
            .run(corpus(100), &Tokenize, &Sum)
            .unwrap();
        assert_wordcount_correct(&result.output, 100);
        assert_eq!(result.metrics.speculative_attempts, 0);
    }

    #[test]
    fn failures_and_speculation_compose() {
        let cfg = ClusterConfig {
            faults: FaultPlan {
                task_failure_rate: 0.2,
                straggler_rate: 0.3,
                straggler_factor: 2,
                speculative_execution: true,
                max_attempts: 50,
                seed: 11,
            },
            split_size: 4,
            task_overhead_units: 500,
            ..ClusterConfig::default()
        };
        let result = MapReduce::new(cfg)
            .run(corpus(100), &Tokenize, &Sum)
            .unwrap();
        assert_wordcount_correct(&result.output, 100);
    }

    #[test]
    fn single_record_splits() {
        let cfg = ClusterConfig {
            split_size: 1,
            ..ClusterConfig::default()
        };
        let result = MapReduce::new(cfg)
            .run(corpus(10), &Tokenize, &Sum)
            .unwrap();
        assert_eq!(result.metrics.map_tasks, 10);
        assert_wordcount_correct(&result.output, 10);
    }

    #[test]
    fn custom_partitioner_is_honored() {
        /// Everything to partition 0.
        struct Zero;
        impl<K> Partitioner<K> for Zero {
            fn partition(&self, _key: &K, _partitions: usize) -> usize {
                0
            }
        }
        let cfg = ClusterConfig {
            reduce_partitions: 8,
            ..ClusterConfig::default()
        };
        let result = MapReduce::new(cfg)
            .run_with(corpus(30), &Tokenize, &Sum, None::<&SumCombiner>, &Zero)
            .unwrap();
        assert_eq!(result.metrics.reduce_tasks, 1, "only partition 0 is used");
        assert_wordcount_correct(&result.output, 30);
    }

    #[test]
    fn telemetry_records_job_metrics_and_events() {
        use ev_telemetry::{names, TelemetryLevel};
        let tel = Telemetry::new(TelemetryLevel::Full);
        let cfg = ClusterConfig {
            faults: FaultPlan {
                task_failure_rate: 0.4,
                max_attempts: 50,
                seed: 3,
                ..FaultPlan::default()
            },
            split_size: 5,
            ..ClusterConfig::default()
        };
        let engine = MapReduce::new(cfg).with_telemetry(&tel);
        let result = engine.run(corpus(100), &Tokenize, &Sum).unwrap();
        assert_eq!(
            tel.registry().counter_value(names::MAPREDUCE_MAP_ATTEMPTS),
            Some(result.metrics.map_attempts),
            "registry must mirror the job's attempt counter"
        );
        assert_eq!(
            tel.registry()
                .counter_value(names::MAPREDUCE_FAILED_ATTEMPTS),
            Some(result.metrics.failed_attempts)
        );
        let events = tel.tracer().events();
        assert!(events.iter().any(|e| e.name == "task_failed"));
        assert!(events.iter().any(|e| e.name == "retry_scheduled"));
        assert!(events.iter().any(|e| e.cat == "task" && e.ph == 'X'));
        assert!(events.iter().any(|e| e.cat == "stage" && e.name == "map"));
        assert!(events.iter().any(|e| e.name == "mapreduce_job"));
    }

    #[test]
    fn disabled_telemetry_leaves_results_unchanged() {
        let cfg = ClusterConfig {
            split_size: 7,
            ..ClusterConfig::default()
        };
        let plain = MapReduce::new(cfg.clone())
            .run(corpus(60), &Tokenize, &Sum)
            .unwrap();
        let tel = Telemetry::new(ev_telemetry::TelemetryLevel::Full);
        let traced = MapReduce::new(cfg)
            .with_telemetry(&tel)
            .run(corpus(60), &Tokenize, &Sum)
            .unwrap();
        assert_eq!(plain.output, traced.output);
        assert!(Telemetry::disabled().tracer().is_empty());
    }

    #[test]
    fn simulated_backend_is_deterministic_including_fault_metrics() {
        let cfg = ClusterConfig {
            workers: 14,
            reduce_partitions: 14,
            split_size: 4,
            backend: Backend::Simulated,
            task_overhead_units: 1_000, // virtual units only: never burned
            faults: FaultPlan {
                task_failure_rate: 0.25,
                straggler_rate: 0.3,
                straggler_factor: 4,
                speculative_execution: true,
                max_attempts: 50,
                seed: 21,
            },
        };
        let a = MapReduce::new(cfg.clone())
            .run(corpus(200), &Tokenize, &Sum)
            .unwrap();
        let b = MapReduce::new(cfg)
            .run(corpus(200), &Tokenize, &Sum)
            .unwrap();
        assert_wordcount_correct(&a.output, 200);
        assert_eq!(a.output, b.output);
        // The whole fault story is reproducible, not just the output:
        assert_eq!(a.metrics.map_attempts, b.metrics.map_attempts);
        assert_eq!(a.metrics.failed_attempts, b.metrics.failed_attempts);
        assert_eq!(
            a.metrics.speculative_attempts,
            b.metrics.speculative_attempts
        );
        assert_eq!(
            a.metrics.virtual_makespan_units,
            b.metrics.virtual_makespan_units
        );
        assert!(a.metrics.failed_attempts > 0, "25% failure rate must bite");
        assert!(a.metrics.speculative_attempts > 0);
        assert!(a.metrics.virtual_makespan_units > 0);
    }

    #[test]
    fn simulated_makespan_shrinks_with_more_workers() {
        // The Figure 9 model: same job, wider virtual cluster, smaller
        // virtual makespan. Exact values are asserted stable elsewhere;
        // here we pin the scaling direction.
        let makespan = |workers: usize| {
            let cfg = ClusterConfig {
                workers,
                reduce_partitions: 4,
                split_size: 2,
                backend: Backend::Simulated,
                task_overhead_units: 5_000,
                faults: FaultPlan::default(),
            };
            MapReduce::new(cfg)
                .run(corpus(200), &Tokenize, &Sum)
                .unwrap()
                .metrics
                .virtual_makespan_units
        };
        let (m1, m4, m14) = (makespan(1), makespan(4), makespan(14));
        assert!(m1 > m4, "1 worker ({m1}) must be slower than 4 ({m4})");
        assert!(m4 > m14, "4 workers ({m4}) must be slower than 14 ({m14})");
        assert!(
            m1 >= 3 * m4,
            "100 uniform map tasks should scale near-linearly to 4 workers ({m1} vs {m4})"
        );
    }

    #[test]
    fn work_stealing_backend_records_exec_session_stats() {
        let cfg = ClusterConfig {
            workers: 4,
            split_size: 5,
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.backend, Backend::WorkStealing);
        let result = MapReduce::new(cfg)
            .run(corpus(100), &Tokenize, &Sum)
            .unwrap();
        assert_wordcount_correct(&result.output, 100);
        assert_eq!(
            result.metrics.virtual_makespan_units, 0,
            "real threads, no virtual time"
        );
    }

    #[test]
    fn panicking_task_is_isolated_and_reported() {
        struct PanicOnThree;
        impl Mapper<String> for PanicOnThree {
            type Key = String;
            type Value = u64;
            fn map(&self, line: &String, _out: &mut Emitter<String, u64>) {
                assert!(!line.contains("w3"), "injected mapper panic");
            }
        }
        let cfg = ClusterConfig {
            split_size: 1,
            faults: FaultPlan {
                max_attempts: 3,
                ..FaultPlan::default()
            },
            ..ClusterConfig::default()
        };
        let err = MapReduce::new(cfg)
            .run(corpus(10), &PanicOnThree, &Sum)
            .unwrap_err();
        match err {
            JobError::WorkerPanicked { stage, message } => {
                assert_eq!(stage, "map");
                assert!(message.contains("injected mapper panic"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn fault_draw_is_deterministic_and_uniform() {
        let a = fault_draw(1, 0, 2, 3);
        assert_eq!(a, fault_draw(1, 0, 2, 3));
        assert_ne!(a, fault_draw(1, 0, 2, 4));
        let mean: f64 = (0..10_000).map(|i| fault_draw(42, 0, i, 0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
