//! Stage-DAG scheduler with partition lineage over `ev-exec`.
//!
//! The classic engine in this crate runs one job at a time with a full
//! barrier between the map and reduce stages of each job, and between
//! the jobs of an iterated driver (the Algorithm 3 splitter submits two
//! jobs *per round*). This module generalizes that shape: a whole
//! computation is declared up front as a **graph of stages**, each stage
//! split into numbered **partitions**, each partition produced by one
//! task. Edges are either
//!
//! * [`DepKind::Narrow`] — child partition `p` reads exactly one parent
//!   partition (`p % parent.partitions`, which covers both the
//!   identity 1:1 case and the 1→K broadcast case), or
//! * [`DepKind::Shuffle`] — every child partition reads *all* parent
//!   partitions, in partition-index order.
//!
//! The scheduler launches a partition the moment its inputs exist, so
//! independent branches (e.g. the splitter's per-timestamp snapshot
//! scans) overlap instead of barriering, on one [`ev_exec::Executor`]
//! session for the whole graph.
//!
//! # Lineage and recovery
//!
//! Produced partitions are cached as [`Arc`]s keyed by
//! `(stage, partition)`. The cache is released along two policies:
//!
//! * **Natural release** — when the last consumer task of a partition
//!   completes and its stage is not [kept](DagSpec::keep), the entry is
//!   dropped.
//! * **Capacity pressure** — with [`DagConfig::cache_capacity`] set,
//!   inserting beyond the budget evicts the oldest entry that is not an
//!   input of an in-flight task, even if consumers still need it.
//!
//! Because every stage records *how* its partitions are computed (its
//! compute closure plus its declared dependencies — the partition's
//! **lineage**), an evicted-but-needed partition is simply recomputed
//! on demand, transitively if its own inputs are also gone. A worker
//! panic loses exactly one in-flight partition; only that partition is
//! rescheduled (its pinned inputs are untouched), and after
//! [`DagConfig::max_attempts`] consecutive losses the run aborts with
//! the engine's [`JobError::WorkerPanicked`] semantics.
//!
//! Determinism: a partition's value is a pure function of its lineage,
//! so recomputation (and any schedule interleaving) reproduces the same
//! bytes — the property the `ev-matching` DAG pipeline leans on for its
//! thread-count-invariant `MatchReport`.
//!
//! # Example
//!
//! ```
//! use ev_mapreduce::dag::{DagConfig, DagSpec, StageDep};
//! use ev_telemetry::{Telemetry, TraceCtx};
//!
//! let mut dag: DagSpec<'_, u64> = DagSpec::new();
//! let nums = dag.stage("nums", 4, Vec::new(), |ctx, _inputs| ctx.partition as u64);
//! let sum = dag.stage("sum", 1, vec![StageDep::shuffle(nums)], |_ctx, inputs| {
//!     inputs.iter().map(|p| **p).sum()
//! });
//! let run = dag
//!     .run(&DagConfig::new(2), Telemetry::disabled(), TraceCtx::default())
//!     .unwrap();
//! assert_eq!(*run.outputs[&sum][0], 6);
//! ```

use crate::config::FaultPlan;
use crate::engine::{attempt_fails, TelemetryExecObserver};
use crate::JobError;
use ev_telemetry::{Telemetry, TraceCtx};
use serde::Value;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// Silence the default panic-hook backtrace for *injected* fault
/// panics only. Every `FaultPlan` fault is a real `panic!` whose
/// `String` payload starts with `"injected fault"`; ev-exec's per-task
/// isolation always catches it, so the default hook's stderr backtrace
/// is pure noise (a high failure rate can print thousands). The
/// wrapper is installed once per process — it forwards every other
/// panic to the previously installed hook unchanged.
fn quiet_injected_fault_panics() {
    static QUIET_HOOK: Once = Once::new();
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Identifier of a stage within one [`DagSpec`], returned by
/// [`DagSpec::stage`]. Stages are numbered in insertion order and may
/// only depend on lower-numbered stages, so every spec is acyclic by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub usize);

/// How a stage reads a parent stage's partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Child partition `p` reads parent partition `p % parent.partitions`.
    Narrow,
    /// Every child partition reads all parent partitions, in index order.
    Shuffle,
}

/// One dependency edge of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDep {
    /// The producing stage.
    pub parent: StageId,
    /// Narrow or shuffle.
    pub kind: DepKind,
}

impl StageDep {
    /// A narrow edge on `parent`.
    #[must_use]
    pub fn narrow(parent: StageId) -> Self {
        StageDep {
            parent,
            kind: DepKind::Narrow,
        }
    }

    /// A shuffle edge on `parent`.
    #[must_use]
    pub fn shuffle(parent: StageId) -> Self {
        StageDep {
            parent,
            kind: DepKind::Shuffle,
        }
    }
}

/// Identity of the task computing one partition, passed to the stage's
/// compute closure. `attempt` distinguishes lineage recomputations and
/// post-panic retries from first runs (tests use it to panic exactly
/// once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// The stage's name.
    pub stage: &'static str,
    /// The stage's id.
    pub stage_id: StageId,
    /// Partition index within the stage.
    pub partition: usize,
    /// 0 for the first execution, +1 per rerun (panic retry or lineage
    /// recompute).
    pub attempt: u32,
}

type Compute<'a, P> = Box<dyn Fn(TaskCtx, &[Arc<P>]) -> P + Sync + 'a>;

struct Stage<'a, P> {
    name: &'static str,
    partitions: usize,
    deps: Vec<StageDep>,
    compute: Compute<'a, P>,
    /// Virtual cost units per task, for the makespan models.
    cost: u64,
    keep: bool,
}

/// Scheduler configuration: thread count, retry budget, cache budget
/// and the (engine-shared) fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagConfig {
    /// Worker threads for the single `ev-exec` session (min 1).
    pub threads: usize,
    /// Maximum executions of one partition's task before the run aborts
    /// with [`JobError::WorkerPanicked`].
    pub max_attempts: u32,
    /// Soft cap on cached partitions; `None` keeps every partition
    /// until its last consumer finishes. Pressure evictions may force
    /// lineage recomputes.
    pub cache_capacity: Option<usize>,
    /// Fault injection: `task_failure_rate` draws become real
    /// in-worker panics (killing the attempt mid-stage), retried up to
    /// `max_attempts` — `faults.max_attempts` is ignored in favour of
    /// the field above.
    pub faults: FaultPlan,
}

impl DagConfig {
    /// A healthy configuration with `threads` workers, 4 attempts and
    /// an unbounded cache.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        DagConfig {
            threads,
            max_attempts: 4,
            cache_capacity: None,
            faults: FaultPlan::default(),
        }
    }
}

/// Counters describing one DAG run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagMetrics {
    /// Stages in the spec.
    pub stages: usize,
    /// Task attempts submitted to the executor (first runs + retries +
    /// recomputes), counted through the
    /// [`ExecObserver::task_submitted`](ev_exec::ExecObserver::task_submitted)
    /// hook.
    pub tasks_submitted: u64,
    /// Attempts that panicked and were retried.
    pub retries: u64,
    /// Previously-produced partitions recomputed from lineage after an
    /// eviction.
    pub recomputed_partitions: u64,
    /// Cache entries dropped (natural releases + pressure evictions).
    pub cache_evictions: u64,
    /// High-water mark of live cached partitions.
    pub cache_peak: u64,
}

impl DagMetrics {
    /// Records the run's counters as `evm_dag_*` metrics.
    pub fn record_to(&self, registry: &ev_telemetry::MetricsRegistry) {
        use ev_telemetry::names;
        registry
            .counter(names::DAG_TASKS_TOTAL)
            .add(self.tasks_submitted);
        registry.counter(names::DAG_TASK_RETRIES).add(self.retries);
        registry
            .counter(names::DAG_RECOMPUTED_PARTITIONS)
            .add(self.recomputed_partitions);
        registry
            .counter(names::DAG_CACHE_EVICTIONS)
            .add(self.cache_evictions);
        registry.gauge(names::DAG_STAGES).set(self.stages as f64);
        registry
            .gauge(names::DAG_CACHE_PEAK_PARTITIONS)
            .set(self.cache_peak as f64);
    }
}

/// A finished DAG run: kept stages' partitions plus scheduler counters.
#[derive(Debug)]
pub struct DagRun<P> {
    /// Partitions (in index order) of every [kept](DagSpec::keep) or
    /// terminal stage.
    pub outputs: BTreeMap<StageId, Vec<Arc<P>>>,
    /// Scheduler counters.
    pub metrics: DagMetrics,
}

/// A declared stage graph over partition payloads of type `P`.
///
/// Build with [`stage`](DagSpec::stage), execute with
/// [`run`](DagSpec::run). The lifetime lets compute closures borrow
/// stores and configs from the caller's stack, mirroring
/// [`Executor::session`](ev_exec::Executor::session).
pub struct DagSpec<'a, P> {
    stages: Vec<Stage<'a, P>>,
}

impl<P> std::fmt::Debug for DagSpec<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DagSpec")
            .field("stages", &self.stages.len())
            .finish_non_exhaustive()
    }
}

impl<P> Default for DagSpec<'_, P> {
    fn default() -> Self {
        DagSpec { stages: Vec::new() }
    }
}

/// Key of one partition: `(stage index, partition index)`.
type Part = (usize, usize);

impl<'a, P: Send + Sync> DagSpec<'a, P> {
    /// An empty spec.
    #[must_use]
    pub fn new() -> Self {
        DagSpec { stages: Vec::new() }
    }

    /// Declares a stage of `partitions` tasks computed by `compute`,
    /// reading `deps` (validated by [`run`](DagSpec::run): every parent
    /// must be an earlier stage and `partitions` non-zero). Returns the
    /// stage's id for later edges.
    pub fn stage(
        &mut self,
        name: &'static str,
        partitions: usize,
        deps: Vec<StageDep>,
        compute: impl Fn(TaskCtx, &[Arc<P>]) -> P + Sync + 'a,
    ) -> StageId {
        self.stages.push(Stage {
            name,
            partitions,
            deps,
            compute: Box::new(compute),
            cost: 1,
            keep: false,
        });
        StageId(self.stages.len() - 1)
    }

    /// Marks a stage's partitions as run outputs: they are returned
    /// from [`run`](DagSpec::run) and never evicted by the natural
    /// release policy. Terminal stages (no consumers) are kept
    /// implicitly.
    pub fn keep(&mut self, id: StageId) {
        self.stages[id.0].keep = true;
    }

    /// Sets a stage's per-task cost in virtual units (default 1), used
    /// only by the [`virtual_makespan`](DagSpec::virtual_makespan) /
    /// [`barriered_makespan`](DagSpec::barriered_makespan) models.
    pub fn set_cost(&mut self, id: StageId, units: u64) {
        self.stages[id.0].cost = units;
    }

    /// Number of declared stages.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    fn validate(&self) -> Result<(), JobError> {
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.partitions == 0 {
                return Err(JobError::InvalidConfig(ev_core::Error::InvalidParameter {
                    name: "partitions",
                    reason: format!(
                        "stage {:?} ({}) has zero partitions",
                        StageId(i),
                        stage.name
                    ),
                }));
            }
            for dep in &stage.deps {
                if dep.parent.0 >= i {
                    return Err(JobError::InvalidConfig(ev_core::Error::InvalidParameter {
                        name: "deps",
                        reason: format!(
                            "stage {:?} ({}) depends on {:?}, which is not an earlier stage",
                            StageId(i),
                            stage.name,
                            dep.parent
                        ),
                    }));
                }
            }
        }
        Ok(())
    }

    /// The input partitions of task `(stage, partition)`, in the
    /// deterministic declared-dependency order the compute closure sees.
    fn inputs_of(&self, stage: usize, partition: usize) -> Vec<Part> {
        let mut inputs = Vec::new();
        for dep in &self.stages[stage].deps {
            let parent = &self.stages[dep.parent.0];
            match dep.kind {
                DepKind::Narrow => inputs.push((dep.parent.0, partition % parent.partitions)),
                DepKind::Shuffle => {
                    inputs.extend((0..parent.partitions).map(|q| (dep.parent.0, q)))
                }
            }
        }
        inputs
    }

    /// Stages whose outputs [`run`](DagSpec::run) returns: explicitly
    /// kept ones plus terminal ones.
    fn kept_stages(&self) -> Vec<bool> {
        let mut has_consumer = vec![false; self.stages.len()];
        for stage in &self.stages {
            for dep in &stage.deps {
                has_consumer[dep.parent.0] = true;
            }
        }
        self.stages
            .iter()
            .zip(&has_consumer)
            .map(|(s, &consumed)| s.keep || !consumed)
            .collect()
    }

    /// Executes the graph on `config.threads` workers and returns the
    /// kept stages' partitions. `parent_ctx` roots the run's trace
    /// tree; each stage gets a child span so the flight recorder and
    /// `/tracez` attribute tasks to stage nodes.
    ///
    /// # Errors
    ///
    /// [`JobError::InvalidConfig`] if the spec or fault plan is
    /// malformed; [`JobError::WorkerPanicked`] when one partition's
    /// task panicked [`DagConfig::max_attempts`] times in a row.
    #[allow(clippy::too_many_lines)]
    pub fn run(
        &self,
        config: &DagConfig,
        telemetry: &Telemetry,
        parent_ctx: TraceCtx,
    ) -> Result<DagRun<P>, JobError> {
        self.validate()?;
        config.faults.validate().map_err(JobError::InvalidConfig)?;
        if config.max_attempts == 0 {
            return Err(JobError::InvalidConfig(ev_core::Error::InvalidParameter {
                name: "max_attempts",
                reason: "at least one attempt is required".into(),
            }));
        }
        let dag_ctx = parent_ctx.child();
        let mut dag_span = telemetry.span_ctx("dag_run", "pipeline", dag_ctx);
        dag_span.arg("stages", Value::Int(self.stages.len() as i128));
        telemetry
            .flight()
            .instant("dag_started", dag_ctx, Vec::new());

        let kept = self.kept_stages();
        let stage_ctxs: Vec<TraceCtx> = self.stages.iter().map(|_| dag_ctx.child()).collect();

        // Static consumer counts: how many tasks read each partition.
        let mut consumers: HashMap<Part, usize> = HashMap::new();
        let mut total_tasks = 0usize;
        for (s, stage) in self.stages.iter().enumerate() {
            total_tasks += stage.partitions;
            for p in 0..stage.partitions {
                for input in self.inputs_of(s, p) {
                    *consumers.entry(input).or_insert(0) += 1;
                }
            }
        }

        let observer = DagObserver {
            inner: TelemetryExecObserver::new(telemetry, "dag", dag_ctx),
            submitted: AtomicU64::new(0),
        };
        let tel = telemetry;
        let faults = &config.faults;
        if faults.task_failure_rate > 0.0 {
            quiet_injected_fault_panics();
        }

        // Worker side: unwrap the payload, optionally lose the attempt
        // to an injected panic, and run the partition's compute under a
        // per-attempt span (the engine's attempt_work shape).
        let work = |_wctx: ev_exec::WorkerCtx, payload: Payload<P>| -> P {
            let Payload {
                stage,
                partition,
                attempt,
                inputs,
                ctx,
            } = payload;
            let name = self.stages[stage].name;
            let mut span = tel.span_ctx(format!("{name}[{partition}]"), "task", ctx);
            span.arg("stage", Value::Str(name.to_string()));
            span.arg("partition", Value::Int(partition as i128));
            span.arg("attempt", Value::Int(i128::from(attempt)));
            if attempt_fails(faults, stage as u64, partition, attempt) {
                // A real panic, not a flagged failure: the attempt dies
                // mid-stage and ev-exec's per-task isolation catches it.
                panic!("injected fault: {name}[{partition}] attempt {attempt}");
            }
            (self.stages[stage].compute)(
                TaskCtx {
                    stage: name,
                    stage_id: StageId(stage),
                    partition,
                    attempt,
                },
                &inputs,
            )
        };

        let exec = ev_exec::Executor::new(config.threads);
        let (driver_out, stats) = exec.session_observed(
            work,
            |handle| {
                Driver {
                    spec: self,
                    config,
                    tel,
                    kept: &kept,
                    stage_ctxs: &stage_ctxs,
                    consumers,
                    cache: HashMap::new(),
                    insert_order: VecDeque::new(),
                    produced: HashSet::new(),
                    done: HashSet::new(),
                    inflight: HashMap::new(),
                    waiting: HashMap::new(),
                    waiters_of: HashMap::new(),
                    failures: HashMap::new(),
                    attempts: HashMap::new(),
                    metrics: DagMetrics {
                        stages: self.stages.len(),
                        ..DagMetrics::default()
                    },
                    total_tasks,
                }
                .run(handle)
            },
            &observer,
        );
        if telemetry.counters_on() {
            crate::metrics::record_exec_stats(telemetry.registry(), &stats);
        }
        let mut run = driver_out?;
        run.metrics.tasks_submitted = observer.submitted.load(Ordering::Relaxed);
        if telemetry.counters_on() {
            run.metrics.record_to(telemetry.registry());
        }
        dag_span.arg(
            "tasks_submitted",
            Value::Int(i128::from(run.metrics.tasks_submitted)),
        );
        Ok(run)
    }

    /// Virtual-time makespan of this DAG on `workers` identical
    /// workers: an event-driven list schedule (deterministic, no wall
    /// clock) where each ready task takes its stage's
    /// [cost](DagSpec::set_cost) units and a task becomes ready the
    /// moment its producers finish. The overlap counterpart of
    /// [`barriered_makespan`](DagSpec::barriered_makespan).
    #[must_use]
    pub fn virtual_makespan(&self, workers: usize) -> u64 {
        let workers = workers.max(1);
        // remaining producer tasks per task, in (stage, partition) key order.
        let mut deps_left: BTreeMap<Part, usize> = BTreeMap::new();
        let mut consumers_of: HashMap<Part, Vec<Part>> = HashMap::new();
        for (s, stage) in self.stages.iter().enumerate() {
            for p in 0..stage.partitions {
                let inputs = self.inputs_of(s, p);
                let distinct: HashSet<Part> = inputs.iter().copied().collect();
                deps_left.insert((s, p), distinct.len());
                for input in distinct {
                    consumers_of.entry(input).or_default().push((s, p));
                }
            }
        }
        let mut ready: VecDeque<Part> = deps_left
            .iter()
            .filter(|&(_, &n)| n == 0)
            .map(|(&t, _)| t)
            .collect();
        // (finish time, seq, task) min-heap via Reverse.
        let mut events: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, Part)>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0usize;
        let mut free = workers;
        let mut now = 0u64;
        let mut remaining = deps_left.len();
        while remaining > 0 {
            while free > 0 {
                let Some((s, p)) = ready.pop_front() else {
                    break;
                };
                free -= 1;
                events.push(std::cmp::Reverse((now + self.stages[s].cost, seq, (s, p))));
                seq += 1;
            }
            let Some(std::cmp::Reverse((at, _, task))) = events.pop() else {
                break; // a cycle would leave tasks unreachable; validate() forbids it
            };
            now = at;
            free += 1;
            remaining -= 1;
            for &consumer in consumers_of.get(&task).map_or(&[][..], Vec::as_slice) {
                let left = deps_left.get_mut(&consumer).expect("consumer tracked");
                *left -= 1;
                if *left == 0 {
                    ready.push_back(consumer);
                }
            }
        }
        now
    }

    /// Virtual-time makespan of the same work under the classic
    /// engine's discipline — stages execute one at a time with a full
    /// barrier between them: `Σ ⌈partitions/workers⌉ · cost`.
    #[must_use]
    pub fn barriered_makespan(&self, workers: usize) -> u64 {
        let workers = workers.max(1) as u64;
        self.stages
            .iter()
            .map(|s| (s.partitions as u64).div_ceil(workers) * s.cost)
            .sum()
    }
}

/// What travels to a worker: the task's identity plus its pinned input
/// partitions (the Arcs keep inputs alive even if the cache evicts
/// them mid-flight) and the per-attempt trace context.
struct Payload<P> {
    stage: usize,
    partition: usize,
    attempt: u32,
    inputs: Vec<Arc<P>>,
    ctx: TraceCtx,
}

/// The session observer: forwards steals/latency to telemetry and
/// counts submissions through the driver-side hook.
struct DagObserver {
    inner: TelemetryExecObserver,
    submitted: AtomicU64,
}

impl ev_exec::ExecObserver for DagObserver {
    fn wants_timing(&self) -> bool {
        ev_exec::ExecObserver::wants_timing(&self.inner)
    }
    fn steal(&self, thief: usize, victim: usize, moved: usize) {
        self.inner.steal(thief, victim, moved);
    }
    fn task_submitted(&self, _worker: usize, _task: ev_exec::TaskId) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }
    fn task_finished(&self, ctx: ev_exec::WorkerCtx, dur_ns: u64, panicked: bool) {
        self.inner.task_finished(ctx, dur_ns, panicked);
    }
}

/// Driver-side scheduler state for one run.
struct Driver<'d, 'a, P> {
    spec: &'d DagSpec<'a, P>,
    config: &'d DagConfig,
    tel: &'d Telemetry,
    kept: &'d [bool],
    stage_ctxs: &'d [TraceCtx],
    /// Remaining consumer tasks per partition (for natural release).
    consumers: HashMap<Part, usize>,
    cache: HashMap<Part, Arc<P>>,
    /// Cache insertion order, for the pressure-eviction scan.
    insert_order: VecDeque<Part>,
    /// Ever produced successfully (distinguishes a lineage *re*compute
    /// from a first computation).
    produced: HashSet<Part>,
    /// Completed and not currently being recomputed.
    done: HashSet<Part>,
    /// In-flight attempt number per task.
    inflight: HashMap<Part, u32>,
    /// task → inputs it still waits for.
    waiting: HashMap<Part, HashSet<Part>>,
    /// input → tasks waiting on it.
    waiters_of: HashMap<Part, Vec<Part>>,
    /// Consecutive panics per task.
    failures: HashMap<Part, u32>,
    /// Next attempt number per task (monotonic across recomputes).
    attempts: HashMap<Part, u32>,
    metrics: DagMetrics,
    total_tasks: usize,
}

impl<P: Send + Sync> Driver<'_, '_, P> {
    fn run(
        mut self,
        handle: &ev_exec::SessionHandle<'_, Payload<P>, P>,
    ) -> Result<DagRun<P>, JobError> {
        // Launch every dependency-free partition as one stage batch.
        let mut first_done = 0usize;
        let sources: Vec<Part> = self
            .spec
            .stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.deps.is_empty())
            .flat_map(|(i, s)| (0..s.partitions).map(move |p| (i, p)))
            .collect();
        for (s, p) in sources {
            self.launch((s, p), handle);
        }

        while first_done < self.total_tasks {
            let Some(completion) = handle.recv() else {
                unreachable!("tasks remain but the session is drained");
            };
            let task = decode(completion.task);
            self.inflight.remove(&task);
            match completion.result {
                Err(panic) => {
                    let failures = self.failures.entry(task).or_insert(0);
                    *failures += 1;
                    self.metrics.retries += u64::from(*failures < self.config.max_attempts);
                    let (s, p) = task;
                    let args = vec![
                        (
                            "stage".to_string(),
                            Value::Str(self.spec.stages[s].name.to_string()),
                        ),
                        ("partition".to_string(), Value::Int(p as i128)),
                        ("failures".to_string(), Value::Int(i128::from(*failures))),
                    ];
                    self.tel
                        .event_ctx("task_failed", self.stage_ctxs[s], args.clone());
                    self.tel
                        .flight()
                        .instant("task_failed", self.stage_ctxs[s], args);
                    if *failures >= self.config.max_attempts {
                        self.tel.dump_flight("worker_panicked");
                        return Err(JobError::WorkerPanicked {
                            stage: self.spec.stages[s].name,
                            message: panic.message,
                        });
                    }
                    // Lineage recovery: only the lost partition is
                    // rescheduled; its inputs are still pinned (or will
                    // recompute on demand if pressure-evicted).
                    self.launch(task, handle);
                }
                Ok(value) => {
                    if self.done.contains(&task) {
                        continue; // stale duplicate; nothing to do
                    }
                    self.failures.remove(&task);
                    let newly_produced = self.produced.insert(task);
                    first_done += usize::from(newly_produced);
                    self.done.insert(task);
                    self.insert(task, Arc::new(value));
                    // A finished consumer releases its inputs.
                    for input in self.spec.inputs_of(task.0, task.1) {
                        let left = self.consumers.get_mut(&input).expect("input tracked");
                        *left = left.saturating_sub(1);
                        if *left == 0 && !self.kept[input.0] {
                            self.evict(input);
                        }
                    }
                    // Wake tasks that were blocked on this partition.
                    for waiter in self.waiters_of.remove(&task).unwrap_or_default() {
                        if let Some(missing) = self.waiting.get_mut(&waiter) {
                            missing.remove(&task);
                            if missing.is_empty() {
                                self.waiting.remove(&waiter);
                                self.launch(waiter, handle);
                            }
                        }
                    }
                    // First completion unlocks first-time consumers.
                    if newly_produced {
                        let ready: Vec<Part> = self
                            .consumers_of(task)
                            .into_iter()
                            .filter(|&c| self.ready_for_first_run(c))
                            .collect();
                        for consumer in ready {
                            self.launch(consumer, handle);
                        }
                    }
                }
            }
        }

        let mut outputs = BTreeMap::new();
        for (s, stage) in self.spec.stages.iter().enumerate() {
            if self.kept[s] {
                let parts: Vec<Arc<P>> = (0..stage.partitions)
                    .map(|p| Arc::clone(self.cache.get(&(s, p)).expect("kept partition cached")))
                    .collect();
                outputs.insert(StageId(s), parts);
            }
        }
        Ok(DagRun {
            outputs,
            metrics: self.metrics,
        })
    }

    /// The consumer tasks reading any partition of `task`'s stage that
    /// `task` produces — i.e. tasks whose input set contains `task`.
    fn consumers_of(&self, task: Part) -> Vec<Part> {
        let mut out = Vec::new();
        for (c, stage) in self.spec.stages.iter().enumerate().skip(task.0 + 1) {
            if !stage.deps.iter().any(|d| d.parent.0 == task.0) {
                continue;
            }
            for p in 0..stage.partitions {
                if self.spec.inputs_of(c, p).contains(&task) {
                    out.push((c, p));
                }
            }
        }
        out
    }

    /// Is `task` eligible for its first run: never produced, not in
    /// flight, and every input produced at least once?
    fn ready_for_first_run(&self, task: Part) -> bool {
        !self.produced.contains(&task)
            && !self.inflight.contains_key(&task)
            && !self.waiting.contains_key(&task)
            && self
                .spec
                .inputs_of(task.0, task.1)
                .iter()
                .all(|i| self.produced.contains(i))
    }

    /// Tries to start `task`: gathers inputs from the cache, scheduling
    /// lineage recomputes for any evicted ones (parking `task` until
    /// they land), and submits the attempt.
    fn launch(&mut self, task: Part, handle: &ev_exec::SessionHandle<'_, Payload<P>, P>) {
        if self.inflight.contains_key(&task) || self.waiting.contains_key(&task) {
            return;
        }
        let (s, p) = task;
        let needed = self.spec.inputs_of(s, p);
        let mut missing: HashSet<Part> = HashSet::new();
        for &input in &needed {
            if !self.cache.contains_key(&input) {
                missing.insert(input);
            }
        }
        if !missing.is_empty() {
            for &input in &missing {
                self.waiters_of.entry(input).or_default().push(task);
                if !self.inflight.contains_key(&input) && !self.waiting.contains_key(&input) {
                    // The input was produced and later evicted: this is
                    // the lineage recompute path (transitive — its own
                    // inputs may be gone too).
                    if self.produced.contains(&input) {
                        self.metrics.recomputed_partitions += 1;
                        self.done.remove(&input);
                        let args = vec![
                            (
                                "stage".to_string(),
                                Value::Str(self.spec.stages[input.0].name.to_string()),
                            ),
                            ("partition".to_string(), Value::Int(input.1 as i128)),
                        ];
                        self.tel.event_ctx(
                            "lineage_recompute",
                            self.stage_ctxs[input.0],
                            args.clone(),
                        );
                        self.tel.flight().instant(
                            "lineage_recompute",
                            self.stage_ctxs[input.0],
                            args,
                        );
                    }
                    self.launch(input, handle);
                }
            }
            self.waiting.insert(task, missing);
            return;
        }
        let inputs: Vec<Arc<P>> = needed
            .iter()
            .map(|i| Arc::clone(self.cache.get(i).expect("input present")))
            .collect();
        let attempt = *self
            .attempts
            .entry(task)
            .and_modify(|a| *a += 1)
            .or_insert(0);
        self.inflight.insert(task, attempt);
        handle.submit(
            encode(task),
            Payload {
                stage: s,
                partition: p,
                attempt,
                inputs,
                ctx: self.stage_ctxs[s].child(),
            },
        );
    }

    /// Caches a produced partition, applying capacity pressure.
    fn insert(&mut self, task: Part, value: Arc<P>) {
        self.cache.insert(task, value);
        self.insert_order.push_back(task);
        self.metrics.cache_peak = self.metrics.cache_peak.max(self.cache.len() as u64);
        if let Some(cap) = self.config.cache_capacity {
            while self.cache.len() > cap {
                // Oldest unpinned, non-kept entry goes first. Pinned =
                // an input of an in-flight or parked task (eviction
                // would only cause an immediate recompute).
                let victim = self.insert_order.iter().copied().find(|&part| {
                    self.cache.contains_key(&part) && !self.kept[part.0] && !self.pinned(part)
                });
                let Some(victim) = victim else {
                    break; // everything live is needed right now; run over budget
                };
                self.evict(victim);
            }
        }
    }

    /// Is `part` an input of an in-flight or parked task? (In-flight
    /// attempts also hold their own Arcs, but evicting their inputs
    /// guarantees recompute churn on retry.)
    fn pinned(&self, part: Part) -> bool {
        self.inflight
            .keys()
            .chain(self.waiting.keys())
            .any(|&(s, p)| self.spec.inputs_of(s, p).contains(&part))
    }

    fn evict(&mut self, part: Part) {
        if self.cache.remove(&part).is_some() {
            self.metrics.cache_evictions += 1;
            self.insert_order.retain(|&q| q != part);
        }
    }
}

fn encode((stage, partition): Part) -> ev_exec::TaskId {
    ((stage as u64) << 32) | partition as u64
}

fn decode(id: ev_exec::TaskId) -> Part {
    ((id >> 32) as usize, (id & 0xffff_ffff) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_dag<P: Send + Sync>(dag: &DagSpec<'_, P>, config: &DagConfig) -> DagRun<P> {
        dag.run(config, Telemetry::disabled(), TraceCtx::default())
            .unwrap()
    }

    /// Diamond: a → (b, c) → d.
    fn diamond() -> (DagSpec<'static, u64>, StageId) {
        let mut dag: DagSpec<'static, u64> = DagSpec::new();
        let a = dag.stage("a", 2, Vec::new(), |ctx, _| ctx.partition as u64 + 1);
        let b = dag.stage("b", 2, vec![StageDep::narrow(a)], |_, i| *i[0] * 10);
        let c = dag.stage("c", 2, vec![StageDep::narrow(a)], |_, i| *i[0] * 100);
        let d = dag.stage(
            "d",
            1,
            vec![StageDep::shuffle(b), StageDep::shuffle(c)],
            |_, i| i.iter().map(|p| **p).sum(),
        );
        (dag, d)
    }

    #[test]
    fn diamond_computes_through_both_branches() {
        let (dag, d) = diamond();
        for threads in [1, 2, 4] {
            let run = run_dag(&dag, &DagConfig::new(threads));
            assert_eq!(*run.outputs[&d][0], 10 + 20 + 100 + 200);
            assert_eq!(run.metrics.stages, 4);
            assert_eq!(run.metrics.tasks_submitted, 7, "threads={threads}");
            assert_eq!(run.metrics.retries, 0);
            assert_eq!(run.metrics.recomputed_partitions, 0);
        }
    }

    #[test]
    fn capacity_pressure_forces_lineage_recompute() {
        // Cache of 1 cannot hold a's two partitions until d reads b and c;
        // something gets evicted and must be recomputed from lineage.
        let (dag, d) = diamond();
        let config = DagConfig {
            cache_capacity: Some(1),
            ..DagConfig::new(1)
        };
        let run = run_dag(&dag, &config);
        assert_eq!(*run.outputs[&d][0], 330, "value survives recompute churn");
        assert!(
            run.metrics.recomputed_partitions > 0,
            "capacity 1 must evict a needed partition at least once: {:?}",
            run.metrics
        );
        assert!(run.metrics.cache_evictions > 0);
        assert!(run.metrics.tasks_submitted > 7, "recomputes resubmit");
    }

    #[test]
    fn panic_retries_only_the_lost_partition() {
        use std::sync::atomic::AtomicU64;
        let runs: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        let mut dag: DagSpec<'_, u64> = DagSpec::new();
        let runs_ref = &runs;
        let a = dag.stage("a", 4, Vec::new(), move |ctx, _| {
            runs_ref[ctx.partition].fetch_add(1, Ordering::Relaxed);
            ctx.partition as u64
        });
        let b = dag.stage("b", 1, vec![StageDep::shuffle(a)], move |ctx, i| {
            runs_ref[4].fetch_add(1, Ordering::Relaxed);
            if ctx.partition == 0 && ctx.attempt == 0 {
                panic!("killed mid-shuffle");
            }
            i.iter().map(|p| **p).sum()
        });
        let run = dag
            .run(
                &DagConfig::new(2),
                Telemetry::disabled(),
                TraceCtx::default(),
            )
            .unwrap();
        assert_eq!(*run.outputs[&b][0], 6);
        assert_eq!(run.metrics.retries, 1);
        assert_eq!(run.metrics.recomputed_partitions, 0, "inputs stayed cached");
        for (p, ran) in runs.iter().enumerate().take(4) {
            assert_eq!(ran.load(Ordering::Relaxed), 1, "partition a[{p}] ran once");
        }
        assert_eq!(
            runs[4].load(Ordering::Relaxed),
            2,
            "only the lost task reran"
        );
    }

    #[test]
    fn exhausted_retries_keep_worker_panicked_semantics() {
        let mut dag: DagSpec<'_, u64> = DagSpec::new();
        dag.stage("always_dies", 1, Vec::new(), |_, _| {
            panic!("unrecoverable");
        });
        let err = dag
            .run(
                &DagConfig {
                    max_attempts: 2,
                    ..DagConfig::new(1)
                },
                Telemetry::disabled(),
                TraceCtx::default(),
            )
            .unwrap_err();
        match err {
            JobError::WorkerPanicked { stage, message } => {
                assert_eq!(stage, "always_dies");
                assert!(message.contains("unrecoverable"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn injected_faults_panic_and_recover() {
        let (dag, d) = diamond();
        let clean = run_dag(&dag, &DagConfig::new(2));
        let faulted = run_dag(
            &dag,
            &DagConfig {
                max_attempts: 16,
                faults: FaultPlan {
                    task_failure_rate: 0.4,
                    seed: 11,
                    ..FaultPlan::default()
                },
                ..DagConfig::new(2)
            },
        );
        assert_eq!(*faulted.outputs[&d][0], *clean.outputs[&d][0]);
        assert!(
            faulted.metrics.retries > 0,
            "rate 0.4 over 7 tasks must hit"
        );
        assert_eq!(
            faulted.metrics.tasks_submitted,
            7 + faulted.metrics.retries,
            "unaffected partitions never reran"
        );
    }

    #[test]
    fn forward_and_zero_partition_specs_are_rejected() {
        let mut dag: DagSpec<'_, u64> = DagSpec::new();
        dag.stage("empty", 0, Vec::new(), |_, _| 0);
        assert!(matches!(
            dag.run(
                &DagConfig::new(1),
                Telemetry::disabled(),
                TraceCtx::default()
            ),
            Err(JobError::InvalidConfig(_))
        ));

        let mut dag: DagSpec<'_, u64> = DagSpec::new();
        dag.stage("self_loop", 1, vec![StageDep::narrow(StageId(0))], |_, _| 0);
        assert!(matches!(
            dag.run(
                &DagConfig::new(1),
                Telemetry::disabled(),
                TraceCtx::default()
            ),
            Err(JobError::InvalidConfig(_))
        ));
    }

    #[test]
    fn makespan_models_price_round_overlap() {
        // Two independent chains of 3 stages, 1 partition each, cost 4.
        let mut dag: DagSpec<'_, u64> = DagSpec::new();
        let mut prev: Option<StageId> = None;
        for _ in 0..3 {
            let deps = prev.map(StageDep::narrow).into_iter().collect();
            prev = Some(dag.stage("left", 1, deps, |_, _| 0));
        }
        let mut prev2: Option<StageId> = None;
        for _ in 0..3 {
            let deps = prev2.map(StageDep::narrow).into_iter().collect();
            prev2 = Some(dag.stage("right", 1, deps, |_, _| 0));
        }
        for id in 0..dag.stage_count() {
            dag.set_cost(StageId(id), 4);
        }
        // Barriered: 6 stages × 4 units, serial. Overlapped on 2
        // workers: the chains run side by side.
        assert_eq!(dag.barriered_makespan(2), 24);
        assert_eq!(dag.virtual_makespan(2), 12);
        assert_eq!(dag.virtual_makespan(1), 24, "1 worker cannot overlap");
    }

    #[test]
    fn outputs_are_thread_count_invariant() {
        let mut dag: DagSpec<'_, Vec<u64>> = DagSpec::new();
        let src = dag.stage("src", 8, Vec::new(), |ctx, _| {
            (0..10u64).map(|i| i * ctx.partition as u64).collect()
        });
        let mid = dag.stage("mid", 4, vec![StageDep::narrow(src)], |_, i| {
            i[0].iter().map(|x| x + 1).collect()
        });
        let sink = dag.stage(
            "sink",
            1,
            vec![StageDep::shuffle(mid), StageDep::shuffle(src)],
            |_, i| {
                let mut all: Vec<u64> = i.iter().flat_map(|p| p.iter().copied()).collect();
                all.sort_unstable();
                all
            },
        );
        let reference = run_dag(&dag, &DagConfig::new(1)).outputs[&sink][0].clone();
        for threads in [2, 4, 8] {
            let run = run_dag(&dag, &DagConfig::new(threads));
            assert_eq!(*run.outputs[&sink][0], *reference, "threads={threads}");
        }
    }
}
