//! Cluster and fault-injection configuration.

use serde::{Deserialize, Serialize};

/// Simulated fault behaviour of the cluster.
///
/// Failures and stragglers are drawn deterministically from `seed`, the
/// task id and the attempt number, so a job either always or never
/// exercises a given fault path for a fixed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a task *attempt* fails and must be retried.
    pub task_failure_rate: f64,
    /// Probability that a task attempt straggles (runs `straggler_factor`
    /// times its normal busy-work).
    pub straggler_rate: f64,
    /// Extra work multiplier for straggling attempts (≥ 1).
    pub straggler_factor: u64,
    /// Maximum attempts per task before the job aborts.
    pub max_attempts: u32,
    /// Launch a backup attempt for straggling tasks and keep the first
    /// finisher (speculative execution).
    pub speculative_execution: bool,
    /// Seed for the deterministic fault draws.
    pub seed: u64,
}

impl Default for FaultPlan {
    /// A healthy cluster: no faults, no stragglers, 4 attempts allowed.
    fn default() -> Self {
        FaultPlan {
            task_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 8,
            max_attempts: 4,
            speculative_execution: false,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Validates rates and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] if a rate is outside
    /// `[0, 1)` for failures / `[0, 1]` for stragglers, `max_attempts` is
    /// zero, or `straggler_factor` is zero.
    pub fn validate(&self) -> ev_core::Result<()> {
        if !self.task_failure_rate.is_finite() || !(0.0..1.0).contains(&self.task_failure_rate) {
            return Err(ev_core::Error::InvalidParameter {
                name: "task_failure_rate",
                reason: format!("must be in [0, 1), got {}", self.task_failure_rate),
            });
        }
        if !self.straggler_rate.is_finite() || !(0.0..=1.0).contains(&self.straggler_rate) {
            return Err(ev_core::Error::InvalidParameter {
                name: "straggler_rate",
                reason: format!("must be in [0, 1], got {}", self.straggler_rate),
            });
        }
        if self.max_attempts == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "max_attempts",
                reason: "at least one attempt is required".into(),
            });
        }
        if self.straggler_factor == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "straggler_factor",
                reason: "multiplier must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// How the engine turns scheduled task attempts into executed work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Real OS threads on the `ev-exec` work-stealing pool: `workers`
    /// threads with per-worker deques, steal-half balancing and
    /// per-task panic isolation. Stragglers burn real CPU; speculative
    /// races resolve by actual wall-clock order.
    WorkStealing,
    /// Deterministic single-threaded *virtual-time* simulation of a
    /// `workers`-node cluster. Attempt costs, completion order,
    /// failures and speculation races are all pure functions of the
    /// configuration — no wall clock is read for any scheduling
    /// decision, so fault/straggler metrics are exactly reproducible.
    /// Straggler busy-work is not burned, which also makes this the
    /// cheap backend for fault-injection tests and the
    /// cluster-scaling model of the paper's Figure 9.
    Simulated,
}

/// Shape of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker threads ("nodes"). The paper's testbed has 14
    /// four-core machines; [`ClusterConfig::paper_cluster`] mirrors it.
    pub workers: usize,
    /// Input records per map split. Each split becomes one map task.
    pub split_size: usize,
    /// Number of reduce partitions (= reduce tasks).
    pub reduce_partitions: usize,
    /// Fault-injection plan.
    pub faults: FaultPlan,
    /// Busy-work units burned per map task attempt, simulating fixed task
    /// overhead (JVM start-up, scheduling) — lets stragglers and
    /// speculation have something to be slow *at* even for cheap mappers.
    pub task_overhead_units: u64,
    /// Execution backend: real work-stealing threads or the
    /// deterministic virtual-time simulation.
    pub backend: Backend,
}

impl Default for ClusterConfig {
    /// A small healthy cluster sized to the local machine.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        ClusterConfig {
            workers,
            split_size: 64,
            reduce_partitions: workers,
            faults: FaultPlan::default(),
            task_overhead_units: 0,
            backend: Backend::WorkStealing,
        }
    }
}

impl ClusterConfig {
    /// The paper's 14-node cluster shape (14 workers). Simulated: a
    /// laptop cannot *be* 14 machines, but it can schedule like them in
    /// virtual time.
    #[must_use]
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            workers: 14,
            reduce_partitions: 14,
            backend: Backend::Simulated,
            ..ClusterConfig::default()
        }
    }

    /// A single-worker configuration — the sequential baseline.
    #[must_use]
    pub fn sequential() -> Self {
        ClusterConfig {
            workers: 1,
            reduce_partitions: 1,
            ..ClusterConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] on zero workers,
    /// splits or partitions, or an invalid fault plan.
    pub fn validate(&self) -> ev_core::Result<()> {
        if self.workers == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "workers",
                reason: "need at least one worker".into(),
            });
        }
        if self.split_size == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "split_size",
                reason: "splits must hold at least one record".into(),
            });
        }
        if self.reduce_partitions == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "reduce_partitions",
                reason: "need at least one reduce partition".into(),
            });
        }
        self.faults.validate()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field mutation reads clearer in validation tests
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ClusterConfig::default().validate().unwrap();
        ClusterConfig::paper_cluster().validate().unwrap();
        ClusterConfig::sequential().validate().unwrap();
    }

    #[test]
    fn paper_cluster_has_14_workers() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.workers, 14);
        assert_eq!(c.reduce_partitions, 14);
        assert_eq!(
            c.backend,
            Backend::Simulated,
            "14 nodes only exist in virtual time"
        );
    }

    #[test]
    fn backend_defaults_to_real_threads_and_round_trips() {
        use serde::{Deserialize, Serialize};
        assert_eq!(ClusterConfig::default().backend, Backend::WorkStealing);
        let sim = ClusterConfig {
            backend: Backend::Simulated,
            ..ClusterConfig::default()
        };
        let back = ClusterConfig::from_value(&sim.to_value()).expect("config round-trips");
        assert_eq!(back, sim);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ClusterConfig::default();
        c.workers = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.split_size = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.reduce_partitions = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.faults.task_failure_rate = 1.0; // certain failure can never finish
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.faults.max_attempts = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.faults.straggler_rate = -0.1;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::default();
        c.faults.straggler_factor = 0;
        assert!(c.validate().is_err());
    }
}
