//! An in-memory simulated distributed file system.
//!
//! MapReduce "stores all data in an underlying distributed file system"
//! (paper §V-A). This module provides the minimal equivalent the engine's
//! users need: named files split into fixed-size blocks, each block
//! replicated onto `replication` distinct simulated nodes, with node
//! failure marking and locality-aware reads.
//!
//! It is intentionally simple — in-memory `bytes::Bytes` blocks instead of
//! disks — but preserves the behaviours that matter for the simulation:
//! block placement, replica-loss detection and rebalancing.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a simulated storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfsError {
    /// The requested file does not exist.
    FileNotFound {
        /// The missing path.
        path: String,
    },
    /// Every replica of a block lives on a failed node.
    BlockUnavailable {
        /// File the block belongs to.
        path: String,
        /// Block index within the file.
        block: usize,
    },
    /// Replication exceeds the number of nodes, or is zero.
    BadReplication {
        /// The requested factor.
        replication: usize,
        /// Cluster size.
        nodes: usize,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound { path } => write!(f, "file not found: {path}"),
            DfsError::BlockUnavailable { path, block } => {
                write!(
                    f,
                    "all replicas of {path} block {block} are on failed nodes"
                )
            }
            DfsError::BadReplication { replication, nodes } => write!(
                f,
                "replication factor {replication} impossible on {nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for DfsError {}

#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    replicas: BTreeSet<NodeId>,
}

#[derive(Debug, Default)]
struct State {
    files: BTreeMap<String, Vec<Block>>,
    failed: BTreeSet<NodeId>,
    next_placement: usize,
}

/// The simulated distributed file system.
#[derive(Debug)]
pub struct Dfs {
    nodes: usize,
    block_size: usize,
    replication: usize,
    state: RwLock<State>,
}

impl Dfs {
    /// Creates a DFS over `nodes` storage nodes with the given block size
    /// and replication factor.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::BadReplication`] if `replication` is zero or
    /// exceeds `nodes`.
    pub fn new(nodes: usize, block_size: usize, replication: usize) -> Result<Self, DfsError> {
        if replication == 0 || replication > nodes {
            return Err(DfsError::BadReplication { replication, nodes });
        }
        Ok(Dfs {
            nodes,
            block_size: block_size.max(1),
            replication,
            state: RwLock::new(State::default()),
        })
    }

    /// Number of storage nodes (failed ones included).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Writes (or overwrites) a file, splitting it into blocks and placing
    /// replicas round-robin across live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::BadReplication`] when fewer live nodes remain
    /// than the replication factor requires.
    pub fn put(&self, path: &str, data: impl Into<Bytes>) -> Result<(), DfsError> {
        let data: Bytes = data.into();
        let mut state = self.state.write();
        let live: Vec<NodeId> = (0..self.nodes)
            .map(NodeId)
            .filter(|n| !state.failed.contains(n))
            .collect();
        if live.len() < self.replication {
            return Err(DfsError::BadReplication {
                replication: self.replication,
                nodes: live.len(),
            });
        }
        let mut blocks = Vec::new();
        let chunks: Vec<Bytes> = if data.is_empty() {
            vec![Bytes::new()]
        } else {
            (0..data.len())
                .step_by(self.block_size)
                .map(|off| data.slice(off..(off + self.block_size).min(data.len())))
                .collect()
        };
        for chunk in chunks {
            let mut replicas = BTreeSet::new();
            for r in 0..self.replication {
                let node = live[(state.next_placement + r) % live.len()];
                replicas.insert(node);
            }
            state.next_placement = state.next_placement.wrapping_add(1);
            blocks.push(Block {
                data: chunk,
                replicas,
            });
        }
        state.files.insert(path.to_owned(), blocks);
        Ok(())
    }

    /// Reads a whole file back, failing if any block lost all replicas.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::FileNotFound`] or [`DfsError::BlockUnavailable`].
    pub fn get(&self, path: &str) -> Result<Bytes, DfsError> {
        let state = self.state.read();
        let blocks = state
            .files
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound {
                path: path.to_owned(),
            })?;
        let mut out = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            if block.replicas.iter().all(|n| state.failed.contains(n)) {
                return Err(DfsError::BlockUnavailable {
                    path: path.to_owned(),
                    block: i,
                });
            }
            out.extend_from_slice(&block.data);
        }
        Ok(Bytes::from(out))
    }

    /// The nodes holding live replicas of each block of `path` — the
    /// locality information a scheduler would use to place map tasks.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::FileNotFound`] for unknown paths.
    pub fn locate(&self, path: &str) -> Result<Vec<Vec<NodeId>>, DfsError> {
        let state = self.state.read();
        let blocks = state
            .files
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound {
                path: path.to_owned(),
            })?;
        Ok(blocks
            .iter()
            .map(|b| {
                b.replicas
                    .iter()
                    .filter(|n| !state.failed.contains(n))
                    .copied()
                    .collect()
            })
            .collect())
    }

    /// Marks a node failed. Blocks it held survive while another replica
    /// lives.
    pub fn fail_node(&self, node: NodeId) {
        self.state.write().failed.insert(node);
    }

    /// Brings a failed node back (its replicas become readable again).
    pub fn recover_node(&self, node: NodeId) {
        self.state.write().failed.remove(&node);
    }

    /// Re-replicates under-replicated blocks onto live nodes (what a DFS
    /// master does after detecting a dead datanode). Returns how many
    /// replicas were created.
    pub fn rebalance(&self) -> usize {
        let mut state = self.state.write();
        let failed = state.failed.clone();
        let live: Vec<NodeId> = (0..self.nodes)
            .map(NodeId)
            .filter(|n| !failed.contains(n))
            .collect();
        if live.is_empty() {
            return 0;
        }
        let mut created = 0;
        let mut cursor = state.next_placement;
        for blocks in state.files.values_mut() {
            for block in blocks.iter_mut() {
                let alive = block
                    .replicas
                    .iter()
                    .filter(|n| !failed.contains(n))
                    .count();
                if alive == 0 {
                    continue; // data lost; nothing to copy from
                }
                let mut need = self.replication.min(live.len()) - alive.min(self.replication);
                let mut tries = 0;
                while need > 0 && tries < live.len() {
                    let candidate = live[cursor % live.len()];
                    cursor = cursor.wrapping_add(1);
                    tries += 1;
                    if block.replicas.insert(candidate) {
                        created += 1;
                        need -= 1;
                    }
                }
            }
        }
        state.next_placement = cursor;
        created
    }

    /// Lists all file paths.
    #[must_use]
    pub fn list(&self) -> Vec<String> {
        self.state.read().files.keys().cloned().collect()
    }

    /// Deletes a file; returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.state.write().files.remove(path).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let dfs = Dfs::new(4, 8, 2).unwrap();
        dfs.put("/a", &b"hello distributed world"[..]).unwrap();
        assert_eq!(
            dfs.get("/a").unwrap(),
            Bytes::from_static(b"hello distributed world")
        );
        assert_eq!(dfs.list(), vec!["/a".to_string()]);
    }

    #[test]
    fn empty_file_roundtrip() {
        let dfs = Dfs::new(2, 8, 1).unwrap();
        dfs.put("/empty", Bytes::new()).unwrap();
        assert_eq!(dfs.get("/empty").unwrap(), Bytes::new());
    }

    #[test]
    fn missing_file_errors() {
        let dfs = Dfs::new(2, 8, 1).unwrap();
        assert!(matches!(
            dfs.get("/nope"),
            Err(DfsError::FileNotFound { .. })
        ));
        assert!(dfs.locate("/nope").is_err());
        assert!(!dfs.delete("/nope"));
    }

    #[test]
    fn bad_replication_rejected() {
        assert!(Dfs::new(2, 8, 3).is_err());
        assert!(Dfs::new(2, 8, 0).is_err());
        assert!(Dfs::new(2, 8, 2).is_ok());
    }

    #[test]
    fn blocks_are_replicated_on_distinct_nodes() {
        let dfs = Dfs::new(5, 4, 3);
        let dfs = dfs.unwrap();
        dfs.put("/f", &b"0123456789abcdef"[..]).unwrap();
        let locations = dfs.locate("/f").unwrap();
        assert_eq!(locations.len(), 4, "16 bytes / 4-byte blocks");
        for replicas in &locations {
            assert_eq!(replicas.len(), 3);
            let set: BTreeSet<_> = replicas.iter().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn single_node_failure_keeps_data_readable() {
        let dfs = Dfs::new(4, 4, 2).unwrap();
        dfs.put("/f", &b"0123456789"[..]).unwrap();
        dfs.fail_node(NodeId(0));
        assert_eq!(dfs.get("/f").unwrap(), Bytes::from_static(b"0123456789"));
    }

    #[test]
    fn losing_all_replicas_is_detected() {
        let dfs = Dfs::new(2, 4, 2).unwrap();
        dfs.put("/f", &b"data"[..]).unwrap();
        dfs.fail_node(NodeId(0));
        dfs.fail_node(NodeId(1));
        assert!(matches!(
            dfs.get("/f"),
            Err(DfsError::BlockUnavailable { .. })
        ));
        dfs.recover_node(NodeId(0));
        assert!(dfs.get("/f").is_ok());
    }

    #[test]
    fn rebalance_restores_replication() {
        let dfs = Dfs::new(5, 4, 2).unwrap();
        dfs.put("/f", &b"0123456789abcdef"[..]).unwrap();
        dfs.fail_node(NodeId(0));
        let created = dfs.rebalance();
        assert!(created > 0, "some blocks lost a replica");
        // Every block is back at full replication on live nodes only.
        let locations = dfs.locate("/f").unwrap();
        for replicas in locations {
            assert!(replicas.len() >= 2, "under-replicated after rebalance");
            for n in replicas {
                assert_ne!(n, NodeId(0));
            }
        }
        // A second rebalance is a no-op.
        assert_eq!(dfs.rebalance(), 0);
    }

    #[test]
    fn put_with_too_few_live_nodes_fails() {
        let dfs = Dfs::new(2, 4, 2).unwrap();
        dfs.fail_node(NodeId(0));
        assert!(matches!(
            dfs.put("/f", &b"x"[..]),
            Err(DfsError::BadReplication { .. })
        ));
    }

    #[test]
    fn overwrite_replaces_content() {
        let dfs = Dfs::new(3, 4, 1).unwrap();
        dfs.put("/f", &b"old"[..]).unwrap();
        dfs.put("/f", &b"new content"[..]).unwrap();
        assert_eq!(dfs.get("/f").unwrap(), Bytes::from_static(b"new content"));
        assert!(dfs.delete("/f"));
        assert!(dfs.get("/f").is_err());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let dfs = std::sync::Arc::new(Dfs::new(4, 16, 2).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let dfs = dfs.clone();
                std::thread::spawn(move || {
                    let path = format!("/t{i}");
                    let body = vec![i as u8; 100];
                    dfs.put(&path, body.clone()).unwrap();
                    assert_eq!(dfs.get(&path).unwrap(), Bytes::from(body));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dfs.list().len(), 8);
    }
}
