//! The user-facing MapReduce programming model: mappers, reducers,
//! combiners, partitioners and the emitter.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Collects the `(key, value)` pairs a map task emits.
///
/// Pairs keep their emission order within a task; the shuffle stage makes
/// the overall ordering deterministic across scheduling interleavings.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    pub(crate) fn new() -> Self {
        Emitter { pairs: Vec::new() }
    }

    /// Emits one intermediate pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub(crate) fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }
}

/// Transforms one input record into intermediate `(key, value)` pairs.
///
/// A mapper must be deterministic given its input: speculative execution
/// may run the same task twice and keep either attempt's output.
pub trait Mapper<I>: Sync {
    /// Intermediate key type.
    type Key;
    /// Intermediate value type.
    type Value;

    /// Processes one input record, emitting any number of pairs.
    fn map(&self, input: &I, out: &mut Emitter<Self::Key, Self::Value>);
}

/// Aggregates all values that were shuffled to one key.
pub trait Reducer<K, V>: Sync {
    /// Final output record type.
    type Output;

    /// Reduces one key group to zero or more output records. `values` are
    /// in deterministic shuffle order.
    fn reduce(&self, key: &K, values: &[V]) -> Vec<Self::Output>;
}

/// Optional map-side pre-aggregation, applied to each map task's output
/// before the shuffle to cut network volume (here: shuffle memory).
pub trait Combiner<K, V>: Sync {
    /// Combines one key's locally emitted values into fewer values.
    fn combine(&self, key: &K, values: Vec<V>) -> Vec<V>;
}

/// Decides which reduce partition a key belongs to.
pub trait Partitioner<K>: Sync {
    /// Maps `key` into `0..partitions`. Must be a pure function.
    fn partition(&self, key: &K, partitions: usize) -> usize;
}

/// The default partitioner: `hash(key) mod partitions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, partitions: usize) -> usize {
        debug_assert!(partitions > 0);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_preserves_order() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        e.emit("b", 1);
        e.emit("a", 2);
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![("b", 1), ("a", 2)]);
    }

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for key in 0..1000u64 {
            let a = p.partition(&key, 7);
            let b = p.partition(&key, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner;
        let mut counts = [0usize; 8];
        for key in 0..8000u64 {
            counts[p.partition(&key, 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "partition starved: {counts:?}");
        }
    }
}
