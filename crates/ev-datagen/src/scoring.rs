//! Accuracy scoring against ground truth (paper §VI-B).
//!
//! "Matching accuracy is defined as the percentage of the correctly
//! matched EIDs. An EID is correctly matched only when the majority of
//! the VIDs chosen from the scenarios for this EID is the right VID."

use crate::dataset::EvDataset;
use ev_matching::MatchReport;
use serde::{Deserialize, Serialize};

/// Accuracy breakdown of one matching report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// EIDs evaluated.
    pub total: usize,
    /// EIDs whose majority-chosen VID equals the ground truth.
    pub correct: usize,
    /// EIDs with a majority winner that is the *wrong* VID.
    pub wrong: usize,
    /// EIDs with no majority winner at all.
    pub unmatched: usize,
    /// `correct / total` (0 when nothing was evaluated).
    pub accuracy: f64,
}

impl AccuracyStats {
    /// Accuracy as a percentage, as the paper's tables report it.
    #[must_use]
    pub fn percent(&self) -> f64 {
        self.accuracy * 100.0
    }
}

/// Scores a matching report against the dataset's ground truth.
///
/// EIDs in the report that have no ground truth (not carried by anyone)
/// count as wrong when matched and unmatched otherwise — the algorithm
/// asserted an identity for a device nobody carries.
#[must_use]
pub fn score_report(dataset: &EvDataset, report: &MatchReport) -> AccuracyStats {
    let mut correct = 0usize;
    let mut wrong = 0usize;
    let mut unmatched = 0usize;
    for outcome in &report.outcomes {
        if !outcome.is_majority() {
            unmatched += 1;
            continue;
        }
        match (dataset.true_vid(outcome.eid), outcome.vid) {
            (Some(truth), Some(vid)) if truth == vid => correct += 1,
            _ => wrong += 1,
        }
    }
    let total = report.outcomes.len();
    AccuracyStats {
        total,
        correct,
        wrong,
        unmatched,
        accuracy: if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;
    use ev_core::ids::{Eid, PersonId};
    use ev_matching::MatchOutcome;

    fn dataset() -> EvDataset {
        EvDataset::generate(&DatasetConfig {
            population: 10,
            duration: 60,
            ..DatasetConfig::default()
        })
        .unwrap()
    }

    fn outcome(person: u64, vid: Option<u64>, share: f64) -> MatchOutcome {
        MatchOutcome {
            eid: PersonId::new(person).canonical_eid(),
            vid: vid.map(ev_core::Vid::new),
            votes: Vec::new(),
            vote_share: share,
            confidence: share,
            margin: 1.0,
        }
    }

    #[test]
    fn scoring_categories() {
        let d = dataset();
        let report = MatchReport {
            outcomes: vec![
                outcome(0, Some(0), 1.0), // correct
                outcome(1, Some(2), 1.0), // wrong vid
                outcome(2, Some(2), 0.4), // no majority
                outcome(3, None, 0.0),    // unmatched
            ],
            ..MatchReport::default()
        };
        let stats = score_report(&d, &report);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.correct, 1);
        assert_eq!(stats.wrong, 1);
        assert_eq!(stats.unmatched, 2);
        assert!((stats.accuracy - 0.25).abs() < 1e-12);
        assert!((stats.percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_eid_matched_counts_as_wrong() {
        let d = dataset();
        let report = MatchReport {
            outcomes: vec![MatchOutcome {
                eid: Eid::from_u64(0xdead),
                vid: Some(ev_core::Vid::new(1)),
                votes: Vec::new(),
                vote_share: 1.0,
                confidence: 1.0,
                margin: 1.0,
            }],
            ..MatchReport::default()
        };
        let stats = score_report(&d, &report);
        assert_eq!(stats.wrong, 1);
    }

    #[test]
    fn empty_report_scores_zero() {
        let d = dataset();
        let stats = score_report(&d, &MatchReport::default());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.accuracy, 0.0);
    }
}
