//! Synthetic EV dataset generation.
//!
//! Reproduces the evaluation environment of paper §VI-A: a population of
//! human objects (default 1000), each with a WiFi-MAC EID and an
//! appearance-feature VID, moving through a 1000 m × 1000 m cell grid
//! under the random waypoint model. The generator runs the mobility
//! world, senses it electronically (with configurable drift and missing
//! EIDs) and visually (with configurable miss-detection — missing VIDs),
//! and packages the result as the stores the matching algorithms consume,
//! together with the ground truth needed to score accuracy.
//!
//! # Example
//!
//! ```
//! use ev_datagen::{DatasetConfig, EvDataset};
//!
//! let config = DatasetConfig {
//!     population: 60,
//!     duration: 120,
//!     ..DatasetConfig::default()
//! };
//! let dataset = EvDataset::generate(&config).unwrap();
//! assert!(dataset.estore.len() > 0);
//! assert_eq!(dataset.truth.len(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dataset;
mod scoring;
mod workload;

pub use config::{DatasetConfig, Mobility};
pub use dataset::EvDataset;
pub use scoring::{score_report, AccuracyStats};
pub use workload::sample_targets;
