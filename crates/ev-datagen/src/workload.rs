//! Experiment workload helpers.

use crate::dataset::EvDataset;
use ev_core::ids::Eid;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Samples `count` EIDs to match, uniformly without replacement,
/// deterministically for a given `seed` (the "number of matched EIDs"
/// axis of paper Figs. 5, 7, 8 and Table I). Asking for more EIDs than
/// exist returns them all.
#[must_use]
pub fn sample_targets(dataset: &EvDataset, count: usize, seed: u64) -> BTreeSet<Eid> {
    let mut eids = dataset.eids();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    eids.shuffle(&mut rng);
    eids.into_iter().take(count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    fn dataset() -> EvDataset {
        EvDataset::generate(&DatasetConfig {
            population: 30,
            duration: 60,
            ..DatasetConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn samples_are_the_requested_size_and_deterministic() {
        let d = dataset();
        let a = sample_targets(&d, 10, 1);
        assert_eq!(a.len(), 10);
        assert_eq!(a, sample_targets(&d, 10, 1));
        assert_ne!(a, sample_targets(&d, 10, 2));
        for eid in &a {
            assert!(d.true_vid(*eid).is_some());
        }
    }

    #[test]
    fn oversampling_returns_everyone() {
        let d = dataset();
        let all = sample_targets(&d, 1000, 0);
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn zero_sample_is_empty() {
        let d = dataset();
        assert!(sample_targets(&d, 0, 0).is_empty());
    }
}
