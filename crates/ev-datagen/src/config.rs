//! Dataset generation parameters.

use ev_mobility::{ManhattanParams, WalkParams, WaypointParams};
use ev_sensing::{SensingNoise, WindowThresholds};
use ev_vision::cost::CostModel;
use ev_vision::DetectionModel;
use serde::{Deserialize, Serialize};

/// Which mobility model drives the synthetic population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// Random waypoint (the paper's choice, §VI-A).
    RandomWaypoint(WaypointParams),
    /// Bounded random walk.
    RandomWalk(WalkParams),
    /// Manhattan street grid.
    Manhattan(ManhattanParams),
}

impl Mobility {
    /// Validates the wrapped parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] from the wrapped
    /// model's validation.
    pub fn validate(&self) -> ev_core::Result<()> {
        match self {
            Mobility::RandomWaypoint(p) => p.validate(),
            // The random walk has no invalid states beyond NaN speeds,
            // which the builder tolerates; Manhattan validates itself.
            Mobility::RandomWalk(_) => Ok(()),
            Mobility::Manhattan(p) => p.validate(),
        }
    }
}

/// All knobs of the synthetic world (defaults follow paper §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of human objects (paper: 1000).
    pub population: u64,
    /// Region width in metres (paper: 1000).
    pub width: f64,
    /// Region height in metres (paper: 1000).
    pub height: f64,
    /// Cell side length in metres (paper: "several cells"; default 100,
    /// giving a 10 × 10 grid).
    pub cell_size: f64,
    /// Vague band width in metres (practical setting, Fig. 2).
    pub vague_width: f64,
    /// Simulated duration in ticks (seconds).
    pub duration: u64,
    /// EV-Scenario aggregation window in ticks (§IV-C2).
    pub window: u64,
    /// The mobility model (§VI-A uses random waypoint, citing \[7\]).
    pub mobility: Mobility,
    /// Electronic localization noise and capture dropout.
    pub noise: SensingNoise,
    /// Occurrence thresholds for inclusive / vague classification.
    pub thresholds: WindowThresholds,
    /// Human detection model (miss rate = missing VIDs, Fig. 11).
    pub detection: DetectionModel,
    /// Fraction of the population carrying no device (missing EIDs,
    /// Fig. 10).
    pub eid_missing_rate: f64,
    /// Appearance feature dimensionality.
    pub feature_dim: usize,
    /// Number of appearance clusters (people who look alike); `0` draws
    /// every identity independently.
    pub appearance_clusters: usize,
    /// Per-component spread of identities around their cluster centroid.
    pub appearance_spread: f64,
    /// Visual processing cost model.
    pub cost: CostModel,
    /// Master seed; every stochastic stage derives its own stream.
    pub seed: u64,
}

impl Default for DatasetConfig {
    /// The paper's setup at a small default scale (override `population`
    /// and `duration` for full-size runs).
    fn default() -> Self {
        DatasetConfig {
            population: 100,
            width: 1000.0,
            height: 1000.0,
            cell_size: 100.0,
            vague_width: 10.0,
            duration: 300,
            window: 10,
            mobility: Mobility::RandomWaypoint(WaypointParams::default()),
            noise: SensingNoise::default(),
            thresholds: WindowThresholds::default(),
            detection: DetectionModel::realistic(),
            eid_missing_rate: 0.0,
            feature_dim: 64,
            appearance_clusters: 250,
            appearance_spread: 0.04,
            cost: CostModel::free(),
            seed: 42,
        }
    }
}

impl DatasetConfig {
    /// The paper's full-scale configuration: 1000 human objects in a
    /// 1000 m × 1000 m region (§VI-A).
    #[must_use]
    pub fn paper() -> Self {
        DatasetConfig {
            population: 1000,
            duration: 600,
            ..DatasetConfig::default()
        }
    }

    /// A configuration with (approximately) the given EID *density* —
    /// the average number of human objects per cell, the x-axis of paper
    /// Figs. 6 and 9.
    ///
    /// Following §VI-A, the 1000-object database and the 1000 m × 1000 m
    /// region stay fixed; density varies by re-dividing the region into
    /// fewer, larger cells. (A square grid cannot hit every density
    /// exactly; [`DatasetConfig::density`] reports the value actually
    /// achieved.)
    #[must_use]
    pub fn with_density(density: u64) -> Self {
        let base = DatasetConfig::paper();
        let target = base.population as f64 / density.max(1) as f64;
        // Pick the grid side whose achieved density is nearest the
        // request in log space (a square grid quantizes densities).
        let side = (1..=32)
            .min_by(|&a, &b| {
                let da = (target / f64::from(a * a)).ln().abs();
                let db = (target / f64::from(b * b)).ln().abs();
                // total_cmp: NaN (degenerate population) must not make
                // the comparator claim every pair is equal.
                da.total_cmp(&db)
            })
            .unwrap_or(1);
        Self::with_grid_side(side)
    }

    /// A paper-scale configuration over a `side` × `side` cell grid —
    /// the direct control behind [`DatasetConfig::with_density`].
    ///
    /// The simulated duration scales inversely with `side`: spatiotemporal
    /// matching relies on people visiting several cells ("two people are
    /// rarely at the same position all the time", §III-B), so larger
    /// cells need proportionally longer observation, just as the paper's
    /// deployment watches "over previous months".
    #[must_use]
    pub fn with_grid_side(side: u32) -> Self {
        let base = DatasetConfig::paper();
        let side = side.max(1);
        DatasetConfig {
            cell_size: base.width / f64::from(side),
            duration: base.duration * 10 / u64::from(side.min(10)),
            ..base
        }
    }

    /// Number of grid cells implied by the region and cell size.
    #[must_use]
    pub fn cell_count(&self) -> u64 {
        let cols = (self.width / self.cell_size).ceil() as u64;
        let rows = (self.height / self.cell_size).ceil() as u64;
        cols * rows
    }

    /// Average EIDs per cell.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.population as f64 / self.cell_count() as f64
    }

    /// Validates every embedded parameter set.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as
    /// [`ev_core::Error::InvalidParameter`].
    pub fn validate(&self) -> ev_core::Result<()> {
        if self.population == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "population",
                reason: "need at least one person".into(),
            });
        }
        if self.duration == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "duration",
                reason: "need at least one tick".into(),
            });
        }
        if self.window == 0 || self.window > self.duration {
            return Err(ev_core::Error::InvalidParameter {
                name: "window",
                reason: format!(
                    "window must be in [1, duration={}], got {}",
                    self.duration, self.window
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.eid_missing_rate) {
            return Err(ev_core::Error::InvalidParameter {
                name: "eid_missing_rate",
                reason: format!("must be in [0, 1], got {}", self.eid_missing_rate),
            });
        }
        if self.feature_dim == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "feature_dim",
                reason: "appearance features need at least one dimension".into(),
            });
        }
        // Region geometry is validated by GridRegion::new; run it here so
        // errors surface before the expensive generation starts.
        ev_core::region::GridRegion::new(
            self.width,
            self.height,
            self.cell_size,
            self.vague_width,
        )?;
        self.mobility.validate()?;
        self.noise.validate()?;
        self.thresholds.validate()?;
        self.detection.validate()?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field mutation reads clearer in validation tests
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DatasetConfig::default().validate().unwrap();
        DatasetConfig::paper().validate().unwrap();
    }

    #[test]
    fn paper_config_matches_section_6a() {
        let c = DatasetConfig::paper();
        assert_eq!(c.population, 1000);
        assert_eq!(c.width, 1000.0);
        assert_eq!(c.height, 1000.0);
        assert_eq!(c.cell_count(), 100);
        assert!((c.density() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn density_constructor_rescales_the_grid() {
        let c = DatasetConfig::with_density(30);
        assert_eq!(c.population, 1000, "the database stays at 1000 objects");
        assert_eq!(c.cell_count(), 36, "6 x 6 grid of ~167 m cells");
        assert!((c.density() - 1000.0 / 36.0).abs() < 1e-9);
        assert!(c.validate().is_ok());

        assert_eq!(DatasetConfig::with_density(10).cell_count(), 100);
        assert_eq!(DatasetConfig::with_density(250).cell_count(), 4);
        assert!(DatasetConfig::with_density(250).validate().is_ok());

        // Density never decreases with the requested value.
        let achieved: Vec<f64> = [10, 30, 60, 100, 160, 250]
            .iter()
            .map(|&d| DatasetConfig::with_density(d).density())
            .collect();
        for w in achieved.windows(2) {
            assert!(w[1] >= w[0], "{achieved:?}");
        }
    }

    #[test]
    fn grid_side_constructor() {
        let c = DatasetConfig::with_grid_side(4);
        assert_eq!(c.cell_count(), 16);
        assert!((c.density() - 62.5).abs() < 1e-9);
        assert_eq!(DatasetConfig::with_grid_side(0).cell_count(), 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = DatasetConfig::default();
        c.population = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.duration = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.window = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.window = c.duration + 1;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.eid_missing_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.feature_dim = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.cell_size = -5.0;
        assert!(c.validate().is_err());

        let mut c = DatasetConfig::default();
        c.noise.dropout = 2.0;
        assert!(c.validate().is_err());
    }
}
