//! The generated dataset bundle.

use crate::config::DatasetConfig;
use ev_core::ids::{Eid, PersonId, Vid};
use ev_core::region::GridRegion;
use ev_mobility::World;
use ev_sensing::{EScenarioBuilder, EidRoster};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_vision::{AppearanceGallery, VScenarioBuilder};
use std::collections::BTreeMap;

/// A fully generated synthetic EV world: the stores the algorithms
/// consume plus the ground truth the scorer needs.
#[derive(Debug)]
pub struct EvDataset {
    /// The configuration the dataset was generated from.
    pub config: DatasetConfig,
    /// The gridded region.
    pub region: GridRegion,
    /// Electronic scenarios (windowed, inclusive/vague attributed).
    pub estore: EScenarioStore,
    /// Video footage with lazily charged extraction.
    pub video: VideoStore,
    /// Device assignment (who carries which EID).
    pub roster: EidRoster,
    /// Ground-truth appearance models.
    pub gallery: AppearanceGallery,
    /// Ground truth: each carried EID's true VID.
    pub truth: BTreeMap<Eid, Vid>,
}

impl EvDataset {
    /// Generates a dataset: mobility world → electronic sensing →
    /// visual sensing → stores.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] for an invalid
    /// configuration.
    pub fn generate(config: &DatasetConfig) -> ev_core::Result<Self> {
        config.validate()?;
        let region = GridRegion::new(
            config.width,
            config.height,
            config.cell_size,
            config.vague_width,
        )?;

        // 1. Mobility.
        let mut world = match config.mobility {
            crate::config::Mobility::RandomWaypoint(p) => {
                World::random_waypoint(region.clone(), config.population as usize, p, config.seed)
            }
            crate::config::Mobility::RandomWalk(p) => {
                World::random_walk(region.clone(), config.population as usize, p, config.seed)
            }
            crate::config::Mobility::Manhattan(p) => {
                World::manhattan(region.clone(), config.population as usize, p, config.seed)
            }
        };
        let traces = world.run(config.duration);

        // 2. Electronic sensing.
        let roster = EidRoster::with_missing(
            config.population,
            config.eid_missing_rate,
            config.seed.wrapping_add(1),
        );
        let escenarios = EScenarioBuilder::new(region.clone()).build_practical(
            &traces,
            &roster,
            config.noise,
            config.window,
            config.thresholds,
            config.seed.wrapping_add(2),
        )?;
        let estore = EScenarioStore::from_scenarios(escenarios);

        // 3. Visual sensing (independent of the roster: every body is
        // filmed, device or not).
        let gallery = if config.appearance_clusters > 0 {
            AppearanceGallery::generate_clustered(
                config.population,
                config.feature_dim,
                config.appearance_clusters,
                config.appearance_spread,
                config.seed.wrapping_add(3),
            )
        } else {
            AppearanceGallery::generate(
                config.population,
                config.feature_dim,
                config.seed.wrapping_add(3),
            )
        };
        let vscenarios = VScenarioBuilder::new(region.clone(), gallery.clone()).build_windowed(
            &traces,
            config.detection,
            config.window,
            config.seed.wrapping_add(4),
        );
        let video = VideoStore::new(vscenarios, config.cost);

        // 4. Ground truth.
        let truth = roster
            .iter()
            .map(|(person, eid)| (eid, person.canonical_vid()))
            .collect();

        Ok(EvDataset {
            config: *config,
            region,
            estore,
            video,
            roster,
            gallery,
            truth,
        })
    }

    /// All carried EIDs, in order.
    #[must_use]
    pub fn eids(&self) -> Vec<Eid> {
        self.truth.keys().copied().collect()
    }

    /// The true VID for `eid`, if that EID exists.
    #[must_use]
    pub fn true_vid(&self, eid: Eid) -> Option<Vid> {
        self.truth.get(&eid).copied()
    }

    /// The ground-truth person behind an EID.
    #[must_use]
    pub fn person_of(&self, eid: Eid) -> Option<PersonId> {
        self.roster.owner_of(eid)
    }
}

/// A generated dataset is itself a corpus backend, so the
/// backend-generic pipelines (`match_with_refinement_on`,
/// `update_matches_on`, `parallel_match_on`) run directly against it.
impl StoreBackend for EvDataset {
    fn estore(&self) -> &EScenarioStore {
        &self.estore
    }

    fn video(&self) -> &VideoStore {
        &self.video
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::scenario::ZoneAttr;

    fn small() -> DatasetConfig {
        DatasetConfig {
            population: 40,
            duration: 100,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn generation_produces_consistent_stores() {
        let d = EvDataset::generate(&small()).unwrap();
        assert!(!d.estore.is_empty(), "E-scenarios exist");
        assert!(!d.video.is_empty(), "V-scenarios exist");
        assert_eq!(d.truth.len(), 40);
        assert_eq!(d.gallery.population(), 40);
        // Every E-scenario EID is a known carrier.
        for s in d.estore.iter() {
            for eid in s.eids() {
                assert!(d.roster.owner_of(eid).is_some());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = EvDataset::generate(&small()).unwrap();
        let b = EvDataset::generate(&small()).unwrap();
        assert_eq!(a.estore, b.estore);
        assert_eq!(a.truth, b.truth);
        let mut c_cfg = small();
        c_cfg.seed += 1;
        let c = EvDataset::generate(&c_cfg).unwrap();
        assert_ne!(a.estore, c.estore);
    }

    #[test]
    fn missing_eids_shrink_the_truth_but_not_the_video() {
        let mut cfg = small();
        cfg.eid_missing_rate = 0.5;
        let d = EvDataset::generate(&cfg).unwrap();
        assert_eq!(d.truth.len(), 20, "half the population carries devices");
        // V data still sees everyone eventually: count distinct VIDs.
        let mut vids = std::collections::BTreeSet::new();
        for id in (0..d.config.duration).step_by(d.config.window as usize) {
            for cell in d.region.cells() {
                let sid =
                    ev_core::scenario::ScenarioId::new(ev_core::time::Timestamp::new(id), cell);
                if let Some(v) = d.video.extract(sid) {
                    vids.extend(v.vids());
                }
            }
        }
        assert!(vids.len() > 20, "device-less people are still filmed");
    }

    #[test]
    fn vague_attrs_appear_under_noise() {
        let mut cfg = small();
        cfg.population = 80;
        cfg.noise.sigma = 10.0;
        let d = EvDataset::generate(&cfg).unwrap();
        let vague = d
            .estore
            .iter()
            .flat_map(|s| s.iter())
            .filter(|(_, a)| *a == ZoneAttr::Vague)
            .count();
        assert!(vague > 0, "strong noise must produce vague attributions");
    }

    #[test]
    fn zero_noise_still_classifies_most_dwellers_inclusive() {
        let mut cfg = small();
        cfg.noise = ev_sensing::SensingNoise::none();
        let d = EvDataset::generate(&cfg).unwrap();
        let (mut inc, mut vague) = (0usize, 0usize);
        for s in d.estore.iter() {
            for (_, a) in s.iter() {
                match a {
                    ZoneAttr::Inclusive => inc += 1,
                    ZoneAttr::Vague => vague += 1,
                }
            }
        }
        assert!(
            inc > vague,
            "without noise, cell-crossings are the only vagueness source ({inc} vs {vague})"
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_generation() {
        let mut cfg = small();
        cfg.window = 0;
        assert!(EvDataset::generate(&cfg).is_err());
    }
}
