//! Experiment runner CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--out DIR] <id>... | all
//! ```
//!
//! Known ids: fig5, fig6, fig7, fig8, fig9, fig10, fig11, table1,
//! table2, ablate-selection, ablate-vague, ablate-refine,
//! ablate-workers, all.

use ev_bench::{all_experiment_ids, run_experiment, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => {
                if let Some(dir) = args.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = all_experiment_ids()
            .iter()
            .map(ToString::to_string)
            .collect();
    }

    let overall = Instant::now();
    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, scale) {
            None => {
                eprintln!("unknown experiment id: {id}");
                eprintln!("known ids: {}", all_experiment_ids().join(", "));
                std::process::exit(2);
            }
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                    if let Err(e) = table.save_json(&out_dir) {
                        eprintln!("warning: could not save {}.json: {e}", table.id);
                    }
                }
                println!("[{id} took {:.1?}]\n", start.elapsed());
            }
        }
    }
    println!(
        "all done in {:.1?}; JSON results in {}",
        overall.elapsed(),
        out_dir.display()
    );
}

fn print_usage() {
    println!("usage: experiments [--quick] [--out DIR] <id>... | all");
    println!("known ids: {}", all_experiment_ids().join(", "));
}
