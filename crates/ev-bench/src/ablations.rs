//! Ablation studies for the design choices DESIGN.md calls out:
//! scenario-selection order, vague-zone width, refinement budget, and
//! cluster width.

use crate::experiments::Scale;
use crate::report::{num, Table};
use crate::runner::{run_ss, run_ss_parallel};
use ev_datagen::{sample_targets, score_report, DatasetConfig, EvDataset};
use ev_mapreduce::ClusterConfig;
use ev_matching::refine::{match_with_refinement, RefineConfig, SplitMode};
use ev_matching::setsplit::{SelectionStrategy, SetSplitConfig};
use ev_vision::cost::CostModel;
use std::time::Instant;

fn scale_params(scale: Scale) -> (u64, u64, usize) {
    // (population, duration, matched)
    match scale {
        Scale::Full => (400, 400, 120),
        Scale::Quick => (120, 150, 30),
    }
}

/// Scenario-selection order ablation: random-timestamp (Algorithm 3's
/// choice) vs chronological vs greedy most-balanced splitter.
#[must_use]
pub fn ablate_selection(scale: Scale) -> Table {
    let (population, duration, matched) = scale_params(scale);
    // Noiseless sensing: selection order is an *ideal-setting* question
    // (greedy has no vague-zone analogue), so give it ideal-setting data.
    let dataset = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        noise: ev_sensing::SensingNoise::none(),
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&dataset, matched, 5);

    let mut table = Table::new(
        "ablate-selection",
        "Scenario selection order (SS, sequential)",
        vec!["strategy", "selected", "per EID", "accuracy %", "E secs"],
    );
    let strategies = [
        ("random-time", SelectionStrategy::RandomTime { seed: 3 }),
        ("chronological", SelectionStrategy::Chronological),
        ("greedy-balanced", SelectionStrategy::GreedyBalanced),
    ];
    for (name, strategy) in strategies {
        dataset.video.reset_usage();
        let config = RefineConfig {
            mode: SplitMode::Ideal,
            split: SetSplitConfig {
                strategy,
                ..SetSplitConfig::default()
            },
            ..RefineConfig::default()
        };
        let start = Instant::now();
        let report = match_with_refinement(&dataset.estore, &dataset.video, &targets, &config);
        let elapsed = start.elapsed();
        let stats = score_report(&dataset, &report);
        table.push_row(vec![
            name.to_string(),
            report.selected_count().to_string(),
            num(report.scenarios_per_eid(), 2),
            num(stats.percent(), 1),
            num(elapsed.as_secs_f64(), 3),
        ]);
    }
    table.push_note(
        "greedy scans the whole pool per step (quadratic): usually fewest scenarios, \
         far slower selection; random-time is what Algorithm 3 parallelizes",
    );
    table
}

/// Vague-zone width ablation under electronic drift noise.
#[must_use]
pub fn ablate_vague(scale: Scale) -> Table {
    let (population, duration, matched) = scale_params(scale);
    let mut table = Table::new(
        "ablate-vague",
        "Vague-zone width under drift (practical SS)",
        vec!["vague width (m)", "selected", "accuracy %"],
    );
    for width in [0.0, 5.0, 10.0, 20.0, 40.0] {
        let dataset = EvDataset::generate(&DatasetConfig {
            population,
            duration,
            vague_width: width,
            noise: ev_sensing::SensingNoise {
                sigma: 10.0,
                dropout: 0.02,
            },
            ..DatasetConfig::default()
        })
        .expect("valid config");
        let targets = sample_targets(&dataset, matched, 5);
        let summary = run_ss(&dataset, &targets, 3);
        table.push_row(vec![
            num(width, 0),
            summary.selected.to_string(),
            num(summary.accuracy_pct, 1),
        ]);
    }
    table.push_note(
        "the vague band absorbs cross-border drift: too narrow misattributes drifted \
         EIDs, too wide wastes discriminating power (more scenarios needed)",
    );
    table
}

/// Refinement-budget ablation under heavy VID missing.
#[must_use]
pub fn ablate_refine(scale: Scale) -> Table {
    let (population, duration, matched) = scale_params(scale);
    let mut config = DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    };
    config.detection.miss_rate = 0.08;
    let dataset = EvDataset::generate(&config).expect("valid config");
    let targets = sample_targets(&dataset, matched, 5);

    let mut table = Table::new(
        "ablate-refine",
        "Matching-refining rounds at 8% VID missing",
        vec!["max rounds", "accuracy %", "selected"],
    );
    for rounds in [1u32, 2, 3, 5] {
        dataset.video.reset_usage();
        let report = match_with_refinement(
            &dataset.estore,
            &dataset.video,
            &targets,
            &RefineConfig {
                mode: SplitMode::Practical,
                max_rounds: rounds,
                ..RefineConfig::default()
            },
        );
        let stats = score_report(&dataset, &report);
        table.push_row(vec![
            rounds.to_string(),
            num(stats.percent(), 1),
            report.selected_count().to_string(),
        ]);
    }
    table.push_note(
        "Algorithm 2's loop trades extra selected scenarios for accuracy when VIDs \
         go missing; gains flatten once the stubborn tail is exhausted",
    );
    table
}

/// Mobility-model sensitivity: the matching results should not hinge on
/// the random-waypoint assumption the paper evaluates with.
#[must_use]
pub fn ablate_mobility(scale: Scale) -> Table {
    use ev_datagen::Mobility;
    use ev_mobility::{ManhattanParams, WalkParams, WaypointParams};
    let (population, duration, matched) = scale_params(scale);
    let mut table = Table::new(
        "ablate-mobility",
        "Mobility-model sensitivity (SS, sequential)",
        vec!["model", "selected", "per EID", "accuracy %"],
    );
    let models: [(&str, Mobility); 3] = [
        (
            "random-waypoint",
            Mobility::RandomWaypoint(WaypointParams::default()),
        ),
        ("random-walk", Mobility::RandomWalk(WalkParams::default())),
        ("manhattan", Mobility::Manhattan(ManhattanParams::default())),
    ];
    for (name, mobility) in models {
        let dataset = EvDataset::generate(&DatasetConfig {
            population,
            duration,
            mobility,
            ..DatasetConfig::default()
        })
        .expect("valid config");
        let targets = sample_targets(&dataset, matched, 5);
        let summary = run_ss(&dataset, &targets, 3);
        table.push_row(vec![
            name.to_string(),
            summary.selected.to_string(),
            num(summary.per_eid, 2),
            num(summary.accuracy_pct, 1),
        ]);
    }
    table.push_note(
        "spatiotemporal matching needs people to separate over time; models that mix          the population more slowly (e.g. street-constrained walks) need more scenarios",
    );
    table
}

/// Cluster-width ablation: wall time of the parallel pipeline vs worker
/// count (the engine's scalability).
#[must_use]
pub fn ablate_workers(scale: Scale) -> Table {
    let (population, duration, matched) = scale_params(scale);
    let dataset = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        cost: CostModel::default(),
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&dataset, matched, 5);

    let mut table = Table::new(
        "ablate-workers",
        "Parallel pipeline wall time vs cluster width",
        vec!["workers", "E secs", "V secs", "total secs"],
    );
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for workers in [1usize, 2, 4, 8, 14] {
        if workers > max_workers.max(2) * 2 {
            continue; // pointless oversubscription on this machine
        }
        let cluster = ClusterConfig {
            workers,
            reduce_partitions: workers,
            ..ClusterConfig::default()
        };
        let summary = run_ss_parallel(&dataset, &targets, &cluster, 3);
        table.push_row(vec![
            workers.to_string(),
            num(summary.e_secs, 3),
            num(summary.v_secs, 3),
            num(summary.total_secs(), 3),
        ]);
    }
    table.push_note(format!(
        "this machine exposes {max_workers} hardware threads; speedup saturates there"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_ablation_runs_all_strategies() {
        let t = ablate_selection(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let selected: usize = row[1].parse().unwrap();
            assert!(selected > 0);
        }
    }

    #[test]
    fn vague_ablation_covers_widths() {
        let t = ablate_vague(Scale::Quick);
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn refine_ablation_is_monotone_ish() {
        let t = ablate_refine(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows[3][1].parse().unwrap();
        assert!(
            last >= first - 10.0,
            "more rounds should not hurt much ({first} -> {last})"
        );
    }

    #[test]
    fn mobility_ablation_covers_models() {
        let t = ablate_mobility(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let acc: f64 = row[3].parse().unwrap();
            assert!(acc > 30.0, "{} collapsed to {acc}%", row[0]);
        }
    }

    #[test]
    fn workers_ablation_reports_rows() {
        let t = ablate_workers(Scale::Quick);
        assert!(t.rows.len() >= 2);
    }
}
