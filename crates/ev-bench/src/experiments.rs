//! Regeneration of every table and figure in the paper's evaluation
//! (§VI): Figs. 5–11 and Tables I–II.
//!
//! Absolute numbers differ from the paper's (synthetic substrate, one
//! machine instead of a 14-node Spark cluster); each table's notes state
//! the paper's values or expected shape so the comparison is explicit.
//! `EXPERIMENTS.md` records a full paper-vs-measured account.

use crate::report::{num, Table};
use crate::runner::{average, run_edp, run_edp_parallel, run_ss, run_ss_parallel, RunSummary};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_mapreduce::ClusterConfig;
use ev_vision::cost::CostModel;

/// Experiment scale: `Full` mirrors the paper's axes; `Quick` shrinks
/// everything for tests and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale axes (1000 people, full sweeps).
    Full,
    /// Small axes for CI / integration tests.
    Quick,
}

impl Scale {
    fn population(self) -> u64 {
        match self {
            Scale::Full => 1000,
            Scale::Quick => 200,
        }
    }

    fn matched_axis(self) -> Vec<usize> {
        match self {
            Scale::Full => (1..=9).map(|i| i * 100).collect(),
            Scale::Quick => vec![40, 80],
        }
    }

    fn accuracy_axis(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![200, 400, 600, 800],
            Scale::Quick => vec![40, 80],
        }
    }

    fn grid_sides(self) -> Vec<u32> {
        match self {
            Scale::Full => vec![10, 6, 4, 3, 2],
            Scale::Quick => vec![10, 4],
        }
    }

    fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Full => vec![11, 23],
            Scale::Quick => vec![11],
        }
    }

    fn timing_matched_axis(self) -> Vec<usize> {
        match self {
            Scale::Full => (1..=8).map(|i| i * 100).collect(),
            Scale::Quick => vec![40, 80],
        }
    }
}

/// The base dataset of §VI-A at this scale (zero-cost vision model, for
/// counting and accuracy experiments).
fn base_dataset(scale: Scale) -> EvDataset {
    let config = DatasetConfig {
        population: scale.population(),
        ..DatasetConfig::paper()
    };
    EvDataset::generate(&config).expect("valid config")
}

/// A dataset over a coarser grid (Figs. 6 / 9, Table II density axis).
fn density_dataset(scale: Scale, side: u32, cost: CostModel) -> EvDataset {
    let config = DatasetConfig {
        population: scale.population(),
        cost,
        ..DatasetConfig::with_grid_side(side)
    };
    EvDataset::generate(&config).expect("valid config")
}

/// The simulated cluster used for the timing figures: the paper's 14
/// workers, clamped to this machine's parallelism.
fn timing_cluster() -> ClusterConfig {
    ClusterConfig {
        workers: ClusterConfig::paper_cluster()
            .workers
            .min(ClusterConfig::default().workers),
        ..ClusterConfig::default()
    }
}

fn averaged<F>(seeds: &[u64], mut run: F) -> RunSummary
where
    F: FnMut(u64) -> RunSummary,
{
    let runs: Vec<RunSummary> = seeds.iter().map(|&s| run(s)).collect();
    average(&runs)
}

/// Figs. 5 and 7: number of selected scenarios (total, reuse counted
/// once) and per matched EID, vs the number of matched EIDs.
#[must_use]
pub fn fig5_fig7(scale: Scale) -> (Table, Table) {
    let dataset = base_dataset(scale);
    let seeds = scale.seeds();

    let mut fig5 = Table::new(
        "fig5",
        "Number of selected scenarios vs number of matched EIDs",
        vec!["matched EIDs", "SS", "EDP"],
    );
    let mut fig7 = Table::new(
        "fig7",
        "Average number of selected scenarios per matched EID",
        vec!["matched EIDs", "SS", "EDP"],
    );
    for matched in scale.matched_axis() {
        let ss = averaged(&seeds, |s| {
            run_ss(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        let edp = averaged(&seeds, |s| {
            run_edp(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        fig5.push_row(vec![
            matched.to_string(),
            ss.selected.to_string(),
            edp.selected.to_string(),
        ]);
        fig7.push_row(vec![
            matched.to_string(),
            num(ss.per_eid, 2),
            num(edp.per_eid, 2),
        ]);
    }
    fig5.push_note(
        "paper expectation: SS selects far fewer scenarios than EDP and the gap \
         widens with the number of matched EIDs (paper: SS ~120..330, EDP ~230..590)",
    );
    fig7.push_note(
        "paper expectation: SS needs about one more scenario per EID than EDP \
         (paper: SS ~3.3..3.5, EDP ~2.4..2.8)",
    );
    (fig5, fig7)
}

/// Fig. 6: number of selected scenarios vs EID density, for 100 and 600
/// matched EIDs.
#[must_use]
pub fn fig6(scale: Scale) -> Table {
    let seeds = scale.seeds();
    let mut table = Table::new(
        "fig6",
        "Number of selected scenarios vs density",
        vec![
            "density (EIDs/cell)",
            "SS-100",
            "EDP-100",
            "SS-600",
            "EDP-600",
        ],
    );
    let (m_small, m_large) = match scale {
        Scale::Full => (100, 600),
        Scale::Quick => (20, 60),
    };
    for side in scale.grid_sides() {
        let dataset = density_dataset(scale, side, CostModel::free());
        let density = dataset.config.density();
        let ss_small = averaged(&seeds, |s| {
            run_ss(&dataset, &sample_targets(&dataset, m_small, s), s)
        });
        let edp_small = averaged(&seeds, |s| {
            run_edp(&dataset, &sample_targets(&dataset, m_small, s), s)
        });
        let ss_large = averaged(&seeds, |s| {
            run_ss(&dataset, &sample_targets(&dataset, m_large, s), s)
        });
        let edp_large = averaged(&seeds, |s| {
            run_edp(&dataset, &sample_targets(&dataset, m_large, s), s)
        });
        table.push_row(vec![
            num(density, 0),
            ss_small.selected.to_string(),
            edp_small.selected.to_string(),
            ss_large.selected.to_string(),
            edp_large.selected.to_string(),
        ]);
    }
    table.push_note(
        "paper expectation: SS decreases with density (converging around 40) because \
         each selected scenario is reused by more EIDs; EDP increases with density",
    );
    table.push_note(
        "density varies by re-dividing the fixed 1000m x 1000m region into fewer, \
         larger cells (square grid quantizes the axis); observation time scales \
         with cell size (see DESIGN.md)",
    );
    table
}

/// Fig. 8: E/V/total processing time vs number of matched EIDs, on the
/// simulated cluster with the vision cost model enabled.
#[must_use]
pub fn fig8(scale: Scale) -> Table {
    let config = DatasetConfig {
        population: scale.population(),
        cost: CostModel::default(),
        ..DatasetConfig::paper()
    };
    let dataset = EvDataset::generate(&config).expect("valid config");
    let cluster = timing_cluster();
    let mut table = Table::new(
        "fig8",
        "Processing time (s) vs number of matched EIDs",
        vec![
            "matched EIDs",
            "SS-E",
            "SS-V",
            "SS-E+V",
            "EDP-E",
            "EDP-V",
            "EDP-E+V",
        ],
    );
    for matched in scale.timing_matched_axis() {
        let targets = sample_targets(&dataset, matched, 11);
        let ss = run_ss_parallel(&dataset, &targets, &cluster, 11);
        let edp = run_edp_parallel(&dataset, &targets, &cluster, 11);
        table.push_row(vec![
            matched.to_string(),
            num(ss.e_secs, 3),
            num(ss.v_secs, 3),
            num(ss.total_secs(), 3),
            num(edp.e_secs, 3),
            num(edp.v_secs, 3),
            num(edp.total_secs(), 3),
        ]);
    }
    table.push_note(
        "paper expectation: E stage costs negligible time; V stage dominates; SS is \
         faster than EDP overall because EDP processes many more scenarios in its V stage",
    );
    table.push_note(format!(
        "simulated cluster: {} workers; vision cost model charges {} work units per \
         extracted detection and {} per feature comparison",
        cluster.workers,
        CostModel::default().v_extraction,
        CostModel::default().v_comparison,
    ));
    table
}

/// Fig. 9: E/V/total processing time vs density.
#[must_use]
pub fn fig9(scale: Scale) -> Table {
    let cluster = timing_cluster();
    let matched = match scale {
        Scale::Full => 300,
        Scale::Quick => 60,
    };
    let mut table = Table::new(
        "fig9",
        "Processing time (s) vs density",
        vec![
            "density (EIDs/cell)",
            "SS-E",
            "SS-V",
            "SS-E+V",
            "EDP-E",
            "EDP-V",
            "EDP-E+V",
        ],
    );
    for side in scale.grid_sides() {
        let dataset = density_dataset(scale, side, CostModel::default());
        let targets = sample_targets(&dataset, matched, 11);
        let ss = run_ss_parallel(&dataset, &targets, &cluster, 11);
        let edp = run_edp_parallel(&dataset, &targets, &cluster, 11);
        table.push_row(vec![
            num(dataset.config.density(), 0),
            num(ss.e_secs, 3),
            num(ss.v_secs, 3),
            num(ss.total_secs(), 3),
            num(edp.e_secs, 3),
            num(edp.v_secs, 3),
            num(edp.total_secs(), 3),
        ]);
    }
    table.push_note(
        "paper expectation: V dominates at every density; the SS/EDP gap grows with \
         density because SS's scenario reuse compounds while EDP's selections keep growing",
    );
    table
}

/// Table I: accuracy vs number of matched EIDs.
#[must_use]
pub fn table1(scale: Scale) -> Table {
    let dataset = base_dataset(scale);
    let seeds = scale.seeds();
    let mut table = Table::new(
        "table1",
        "Accuracy (%) with respect to the number of matched EIDs",
        vec!["matched EIDs", "SS", "EDP", "SS (paper)", "EDP (paper)"],
    );
    let paper_ss = [92.42, 90.60, 91.50, 89.12];
    let paper_edp = [93.0, 92.0, 88.21, 87.70];
    for (i, matched) in scale.accuracy_axis().into_iter().enumerate() {
        let ss = averaged(&seeds, |s| {
            run_ss(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        let edp = averaged(&seeds, |s| {
            run_edp(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        let (p_ss, p_edp) = if scale == Scale::Full && i < paper_ss.len() {
            (num(paper_ss[i], 2), num(paper_edp[i], 2))
        } else {
            ("-".into(), "-".into())
        };
        table.push_row(vec![
            matched.to_string(),
            num(ss.accuracy_pct, 2),
            num(edp.accuracy_pct, 2),
            p_ss,
            p_edp,
        ]);
    }
    table.push_note("paper expectation: both algorithms above ~85% and comparable");
    table
}

/// Table II: accuracy vs density.
#[must_use]
pub fn table2(scale: Scale) -> Table {
    let seeds = scale.seeds();
    let matched = match scale {
        Scale::Full => 400,
        Scale::Quick => 40,
    };
    let mut table = Table::new(
        "table2",
        "Accuracy (%) with respect to the density",
        vec![
            "density (EIDs/cell)",
            "SS",
            "EDP",
            "SS (paper)",
            "EDP (paper)",
        ],
    );
    // Paper's densities 30/60/100/160 quantized onto our 6/4/3/2 grid.
    let sides: Vec<u32> = match scale {
        Scale::Full => vec![6, 4, 3, 2],
        Scale::Quick => vec![10, 4],
    };
    let paper_ss = [92.04, 90.22, 88.0, 87.13];
    let paper_edp = [91.0, 87.0, 89.0, 88.20];
    for (i, side) in sides.into_iter().enumerate() {
        let dataset = density_dataset(scale, side, CostModel::free());
        let ss = averaged(&seeds, |s| {
            run_ss(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        let edp = averaged(&seeds, |s| {
            run_edp(&dataset, &sample_targets(&dataset, matched, s), s)
        });
        let (p_ss, p_edp) = if scale == Scale::Full && i < paper_ss.len() {
            (num(paper_ss[i], 2), num(paper_edp[i], 2))
        } else {
            ("-".into(), "-".into())
        };
        table.push_row(vec![
            num(dataset.config.density(), 0),
            num(ss.accuracy_pct, 2),
            num(edp.accuracy_pct, 2),
            p_ss,
            p_edp,
        ]);
    }
    table.push_note(
        "paper densities 30/60/100/160 are quantized to 28/62/111/250 by the square grid",
    );
    table
}

/// Fig. 10: accuracy vs EID missing rate (device-less people), for SS
/// and EDP across the matched-EID axis.
#[must_use]
pub fn fig10(scale: Scale) -> Table {
    missing_sweep(
        scale,
        "fig10",
        "Accuracy (%) vs EID missing rate",
        &[0.01, 0.10, 0.30, 0.50],
        |config, rate| config.eid_missing_rate = rate,
        "paper expectation: accuracy degrades gently; still around 85% at a 50% missing \
         rate",
    )
}

/// Fig. 11: accuracy vs VID missing rate (missed detections), for SS and
/// EDP across the matched-EID axis.
#[must_use]
pub fn fig11(scale: Scale) -> Table {
    missing_sweep(
        scale,
        "fig11",
        "Accuracy (%) vs VID missing rate",
        &[0.02, 0.05, 0.08, 0.10],
        |config, rate| config.detection.miss_rate = rate,
        "paper expectation: VID missing hurts more than EID missing; SS stays above \
         ~80% at 10% via matching refining and beats EDP",
    )
}

fn missing_sweep(
    scale: Scale,
    id: &str,
    title: &str,
    rates: &[f64],
    mut apply: impl FnMut(&mut DatasetConfig, f64),
    note: &str,
) -> Table {
    let seeds = scale.seeds();
    let mut header = vec!["matched EIDs".to_string()];
    for rate in rates {
        header.push(format!("SS @{}%", num(rate * 100.0, 0)));
    }
    for rate in rates {
        header.push(format!("EDP @{}%", num(rate * 100.0, 0)));
    }
    let mut table = Table::new(id, title, header);

    // One dataset per rate, reused across the matched axis.
    let datasets: Vec<EvDataset> = rates
        .iter()
        .map(|&rate| {
            let mut config = DatasetConfig {
                population: scale.population(),
                ..DatasetConfig::paper()
            };
            apply(&mut config, rate);
            EvDataset::generate(&config).expect("valid config")
        })
        .collect();

    for matched in scale.accuracy_axis() {
        let mut row = vec![matched.to_string()];
        let mut ss_cells = Vec::new();
        let mut edp_cells = Vec::new();
        for dataset in &datasets {
            // The matched-EID sample must come from the EIDs that exist
            // (device-less people have none).
            let ss = averaged(&seeds, |s| {
                run_ss(dataset, &sample_targets(dataset, matched, s), s)
            });
            let edp = averaged(&seeds, |s| {
                run_edp(dataset, &sample_targets(dataset, matched, s), s)
            });
            ss_cells.push(num(ss.accuracy_pct, 1));
            edp_cells.push(num(edp.accuracy_pct, 1));
        }
        row.extend(ss_cells);
        row.extend(edp_cells);
        table.push_row(row);
    }
    table.push_note(note);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig5_fig7_have_expected_shape() {
        let (fig5, fig7) = fig5_fig7(Scale::Quick);
        assert_eq!(fig5.rows.len(), 2);
        assert_eq!(fig7.rows.len(), 2);
        // At Quick scale the world is sparse (density ~2/cell), where
        // scenario reuse barely bites — the strict SS < EDP shape claim
        // is asserted at full scale by the integration suite. Here we
        // only sanity-check the counts stay in the same ballpark.
        let last = fig5.rows.last().unwrap();
        let ss: f64 = last[1].parse().unwrap();
        let edp: f64 = last[2].parse().unwrap();
        assert!(ss > 0.0 && edp > 0.0);
        assert!(ss <= edp * 1.5, "SS {ss} wildly above EDP {edp}");
    }

    #[test]
    fn quick_table1_reports_accuracies() {
        let t = table1(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let ss: f64 = row[1].parse().unwrap();
            assert!(ss > 50.0, "SS accuracy {ss} too low");
        }
    }

    #[test]
    fn quick_fig6_covers_both_matched_sizes() {
        let t = fig6(Scale::Quick);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.header.len(), 5);
    }

    #[test]
    fn quick_fig8_times_are_positive_and_v_dominates() {
        let t = fig8(Scale::Quick);
        for row in &t.rows {
            let ss_e: f64 = row[1].parse().unwrap();
            let ss_v: f64 = row[2].parse().unwrap();
            let ss_total: f64 = row[3].parse().unwrap();
            assert!(ss_total > 0.0);
            assert!(ss_v >= ss_e, "V stage should dominate (E={ss_e}, V={ss_v})");
        }
    }

    #[test]
    fn quick_fig10_has_one_column_per_rate_and_side() {
        let t = fig10(Scale::Quick);
        assert_eq!(t.header.len(), 1 + 4 + 4);
        assert_eq!(t.rows.len(), 2);
    }
}
