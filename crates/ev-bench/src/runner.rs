//! Shared measurement plumbing: run one algorithm over one dataset and
//! summarize the metrics every experiment needs.

use ev_core::ids::Eid;
use ev_datagen::{score_report, EvDataset};
use ev_mapreduce::{ClusterConfig, MapReduce};
use ev_matching::edp::{edp_engine, match_edp, match_edp_parallel, EdpConfig};
use ev_matching::parallel::{parallel_match, ParallelSplitConfig};
use ev_matching::refine::{
    match_with_refinement, match_with_refinement_instrumented, RefineConfig, SplitMode,
};
use ev_matching::vfilter::VFilterConfig;
use ev_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which pipeline a measurement ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Set splitting (the paper's algorithm, labeled SS in §VI).
    Ss,
    /// The EDP baseline.
    Edp,
}

impl Algo {
    /// The label used in the paper's plots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Algo::Ss => "SS",
            Algo::Edp => "EDP",
        }
    }
}

/// One measured run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Which algorithm ran.
    pub algo: Algo,
    /// Number of matched (requested) EIDs.
    pub matched: usize,
    /// Distinct scenarios selected (reuse counted once) — Figs. 5–6.
    pub selected: usize,
    /// Average scenarios per matched EID — Fig. 7.
    pub per_eid: f64,
    /// Matching accuracy in percent — Tables I–II, Figs. 10–11.
    pub accuracy_pct: f64,
    /// E-stage wall time in seconds — Figs. 8–9.
    pub e_secs: f64,
    /// V-stage wall time in seconds — Figs. 8–9.
    pub v_secs: f64,
    /// Refinement rounds used (SS only; 1 for EDP).
    pub rounds: u32,
}

impl RunSummary {
    /// Total pipeline time in seconds.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.e_secs + self.v_secs
    }
}

/// Runs sequential SS (practical splitting + refinement) over `targets`.
#[must_use]
pub fn run_ss(dataset: &EvDataset, targets: &BTreeSet<Eid>, seed: u64) -> RunSummary {
    dataset.video.reset_usage();
    let mut config = RefineConfig {
        mode: SplitMode::Practical,
        ..RefineConfig::default()
    };
    if let ev_matching::setsplit::SelectionStrategy::RandomTime { seed: s } =
        &mut config.split.strategy
    {
        *s = seed;
    }
    let report = match_with_refinement(&dataset.estore, &dataset.video, targets, &config);
    summarize(dataset, targets, Algo::Ss, &report)
}

/// [`run_ss`] with a telemetry handle threaded through the pipeline, so
/// experiments can export run profiles (and the telemetry bench can
/// price each level). With a disabled handle this measures the same
/// work as `run_ss`.
#[must_use]
pub fn run_ss_telemetry(
    dataset: &EvDataset,
    targets: &BTreeSet<Eid>,
    seed: u64,
    telemetry: &Telemetry,
) -> RunSummary {
    dataset.video.reset_usage();
    let mut config = RefineConfig {
        mode: SplitMode::Practical,
        ..RefineConfig::default()
    };
    if let ev_matching::setsplit::SelectionStrategy::RandomTime { seed: s } =
        &mut config.split.strategy
    {
        *s = seed;
    }
    let report = match_with_refinement_instrumented(
        &dataset.estore,
        &dataset.video,
        targets,
        &config,
        &BTreeSet::new(),
        telemetry,
    );
    summarize(dataset, targets, Algo::Ss, &report)
}

/// Runs sequential EDP over `targets`.
#[must_use]
pub fn run_edp(dataset: &EvDataset, targets: &BTreeSet<Eid>, seed: u64) -> RunSummary {
    dataset.video.reset_usage();
    let config = EdpConfig {
        seed,
        ..EdpConfig::default()
    };
    let report = match_edp(&dataset.estore, &dataset.video, targets, &config);
    summarize(dataset, targets, Algo::Edp, &report)
}

/// Runs parallel SS (Algorithm 3 on the MapReduce engine) over `targets`.
///
/// # Panics
///
/// Panics if the engine rejects the (validated) cluster configuration —
/// impossible for the configurations the experiments use.
#[must_use]
pub fn run_ss_parallel(
    dataset: &EvDataset,
    targets: &BTreeSet<Eid>,
    cluster: &ClusterConfig,
    seed: u64,
) -> RunSummary {
    dataset.video.reset_usage();
    let engine = MapReduce::new(cluster.clone());
    let report = parallel_match(
        &engine,
        &dataset.estore,
        &dataset.video,
        targets,
        &ParallelSplitConfig {
            seed,
            max_iterations: None,
        },
        &VFilterConfig::default(),
    )
    .expect("healthy cluster cannot fail");
    summarize(dataset, targets, Algo::Ss, &report)
}

/// Runs parallel EDP (one EID per mapper) over `targets`.
///
/// # Panics
///
/// Panics if the engine rejects the (validated) cluster configuration.
#[must_use]
pub fn run_edp_parallel(
    dataset: &EvDataset,
    targets: &BTreeSet<Eid>,
    cluster: &ClusterConfig,
    seed: u64,
) -> RunSummary {
    dataset.video.reset_usage();
    let engine = edp_engine(cluster.clone());
    let config = EdpConfig {
        seed,
        ..EdpConfig::default()
    };
    let report = match_edp_parallel(&engine, &dataset.estore, &dataset.video, targets, &config)
        .expect("healthy cluster cannot fail");
    summarize(dataset, targets, Algo::Edp, &report)
}

fn summarize(
    dataset: &EvDataset,
    targets: &BTreeSet<Eid>,
    algo: Algo,
    report: &ev_matching::MatchReport,
) -> RunSummary {
    let stats = score_report(dataset, report);
    RunSummary {
        algo,
        matched: targets.len(),
        selected: report.selected_count(),
        per_eid: report.scenarios_per_eid(),
        accuracy_pct: stats.percent(),
        e_secs: report.timings.e_stage.as_secs_f64(),
        v_secs: report.timings.v_stage.as_secs_f64(),
        rounds: report.rounds,
    }
}

/// Averages a set of summaries point-wise (used to smooth over seeds).
///
/// # Panics
///
/// Panics on an empty slice or mixed algorithms.
#[must_use]
pub fn average(summaries: &[RunSummary]) -> RunSummary {
    assert!(!summaries.is_empty(), "cannot average zero runs");
    let algo = summaries[0].algo;
    assert!(
        summaries.iter().all(|s| s.algo == algo),
        "cannot average across algorithms"
    );
    let n = summaries.len() as f64;
    RunSummary {
        algo,
        matched: summaries[0].matched,
        selected: (summaries.iter().map(|s| s.selected).sum::<usize>() as f64 / n).round() as usize,
        per_eid: summaries.iter().map(|s| s.per_eid).sum::<f64>() / n,
        accuracy_pct: summaries.iter().map(|s| s.accuracy_pct).sum::<f64>() / n,
        e_secs: summaries.iter().map(|s| s.e_secs).sum::<f64>() / n,
        v_secs: summaries.iter().map(|s| s.v_secs).sum::<f64>() / n,
        rounds: summaries.iter().map(|s| s.rounds).max().unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_datagen::{sample_targets, DatasetConfig};

    fn dataset() -> EvDataset {
        EvDataset::generate(&DatasetConfig {
            population: 60,
            duration: 150,
            ..DatasetConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn sequential_runners_produce_sane_summaries() {
        let d = dataset();
        let targets = sample_targets(&d, 20, 1);
        let ss = run_ss(&d, &targets, 0);
        let edp = run_edp(&d, &targets, 0);
        assert_eq!(ss.algo.label(), "SS");
        assert_eq!(edp.algo.label(), "EDP");
        assert_eq!(ss.matched, 20);
        assert!(ss.selected > 0);
        assert!(ss.per_eid >= 1.0);
        assert!(ss.accuracy_pct > 50.0, "got {}", ss.accuracy_pct);
        assert!(edp.accuracy_pct > 50.0, "got {}", edp.accuracy_pct);
        assert!(ss.total_secs() > 0.0);
    }

    #[test]
    fn parallel_runners_work() {
        let d = dataset();
        let targets = sample_targets(&d, 15, 2);
        let cluster = ClusterConfig {
            workers: 2,
            split_size: 4,
            reduce_partitions: 2,
            ..ClusterConfig::default()
        };
        let ss = run_ss_parallel(&d, &targets, &cluster, 0);
        let edp = run_edp_parallel(&d, &targets, &cluster, 0);
        assert_eq!(ss.matched, 15);
        assert!(edp.selected > 0);
        assert!(ss.accuracy_pct > 50.0);
    }

    #[test]
    fn average_combines_runs() {
        let a = RunSummary {
            algo: Algo::Ss,
            matched: 10,
            selected: 10,
            per_eid: 2.0,
            accuracy_pct: 90.0,
            e_secs: 1.0,
            v_secs: 3.0,
            rounds: 1,
        };
        let b = RunSummary {
            selected: 20,
            per_eid: 4.0,
            accuracy_pct: 70.0,
            e_secs: 3.0,
            v_secs: 5.0,
            rounds: 2,
            ..a
        };
        let avg = average(&[a, b]);
        assert_eq!(avg.selected, 15);
        assert!((avg.per_eid - 3.0).abs() < 1e-12);
        assert!((avg.accuracy_pct - 80.0).abs() < 1e-12);
        assert!((avg.total_secs() - 6.0).abs() < 1e-12);
        assert_eq!(avg.rounds, 2);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn average_empty_panics() {
        let _ = average(&[]);
    }
}
