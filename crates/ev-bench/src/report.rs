//! Result tables: aligned text rendering, Markdown, and JSON persistence.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// One regenerated table or figure, as rows of formatted cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. `"fig5"` or `"table1"`.
    pub id: String,
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows; each must have `header.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (workload parameters, caveats, paper expectations).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        header: Vec<impl Into<String>>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("> {note}\n"));
            }
        }
        out
    }

    /// Saves the table as pretty JSON into `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths over header + rows.
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places.
#[must_use]
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("figX", "A test figure", vec!["x", "y"]);
        t.push_row(vec!["1".into(), "2.0".into()]);
        t.push_row(vec!["10".into(), "20.5".into()]);
        t.push_note("synthetic");
        t
    }

    #[test]
    fn display_alignment() {
        let text = table().to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("A test figure"));
        assert!(text.contains("20.5"));
        assert!(text.contains("note: synthetic"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", "t", vec!["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn markdown_shape() {
        let md = table().to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 10 | 20.5 |"));
        assert!(md.contains("> synthetic"));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("ev-bench-test-report");
        let t = table();
        t.save_json(&dir).unwrap();
        let loaded: Table =
            serde_json::from_str(&std::fs::read_to_string(dir.join("figX.json")).unwrap()).unwrap();
        assert_eq!(loaded, t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(10.0, 0), "10");
    }
}
