//! Experiment harness for the EV-Matching reproduction.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! regeneration function here; the `experiments` binary dispatches on
//! experiment ids and writes results to stdout and `results/*.json`.
//!
//! ```text
//! cargo run --release -p ev-bench --bin experiments -- all
//! cargo run --release -p ev-bench --bin experiments -- fig5 table1
//! cargo run --release -p ev-bench --bin experiments -- --quick all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod runner;

pub use experiments::Scale;
pub use report::Table;

/// Logical CPUs available to this process, for bench JSON headers.
///
/// Wall-clock speedups are meaningless without knowing how many cores
/// the host actually offered, so every `BENCH_*.json` records this in
/// its header. Falls back to 1 where the platform cannot say.
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Prints the host-parallelism banner every wall-clock bench opens
/// with, and returns the core count for the JSON header.
///
/// Burying the core count at the bottom of a JSON file let single-core
/// runs masquerade as "no speedup" regressions; this puts it on the
/// first line of output and warns out loud when the host offers only
/// one logical CPU (wall-clock curves are then flat by construction —
/// read the virtual-time curves instead).
#[must_use]
pub fn announce_host_parallelism() -> usize {
    let cores = host_parallelism();
    println!("host_parallelism: {cores} logical CPU(s)");
    if cores == 1 {
        eprintln!(
            "warning: single-core host — wall-clock speedups are bounded at ~1.0x; \
             judge scaling by the virtual (simulated) curves, not the wall clock"
        );
    }
    cores
}

/// Runs the experiment with the given id at the given scale.
///
/// Returns `None` for an unknown id. `fig5` and `fig7` share their sweep
/// and each id returns its own table.
#[must_use]
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Table>> {
    let tables = match id {
        "fig5" => vec![experiments::fig5_fig7(scale).0],
        "fig7" => vec![experiments::fig5_fig7(scale).1],
        "fig5+7" | "fig5_7" => {
            let (a, b) = experiments::fig5_fig7(scale);
            vec![a, b]
        }
        "fig6" => vec![experiments::fig6(scale)],
        "fig8" => vec![experiments::fig8(scale)],
        "fig9" => vec![experiments::fig9(scale)],
        "fig10" => vec![experiments::fig10(scale)],
        "fig11" => vec![experiments::fig11(scale)],
        "table1" => vec![experiments::table1(scale)],
        "table2" => vec![experiments::table2(scale)],
        "ablate-selection" => vec![ablations::ablate_selection(scale)],
        "ablate-vague" => vec![ablations::ablate_vague(scale)],
        "ablate-refine" => vec![ablations::ablate_refine(scale)],
        "ablate-mobility" => vec![ablations::ablate_mobility(scale)],
        "ablate-workers" => vec![ablations::ablate_workers(scale)],
        _ => return None,
    };
    Some(tables)
}

/// All experiment ids in presentation order.
#[must_use]
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "fig5+7",
        "fig6",
        "fig8",
        "fig9",
        "table1",
        "table2",
        "fig10",
        "fig11",
        "ablate-selection",
        "ablate-vague",
        "ablate-refine",
        "ablate-mobility",
        "ablate-workers",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", Scale::Quick).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Only check the ids dispatch (running them all is the
        // integration suite's job); use a known-cheap one end to end.
        for id in all_experiment_ids() {
            assert!(matches!(id, _s), "id list should be non-empty and static");
        }
        let tables = run_experiment("ablate-vague", Scale::Quick).unwrap();
        assert_eq!(tables.len(), 1);
    }
}
