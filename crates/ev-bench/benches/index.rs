//! Benchmarks the inverted-index rewrite against the frozen scan-based
//! reference paths (`setsplit::reference`, `filter_vids_uncached`) and
//! writes the measurements — including the headline GreedyBalanced
//! speedup — to `results/BENCH_index.json`.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_matching::setsplit::{reference, split_ideal, SelectionStrategy, SetSplitConfig};
use ev_matching::vfilter::{filter_vids, filter_vids_uncached, VFilterConfig};
use serde::Serialize;
use std::path::Path;

/// One exported measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// The full `BENCH_index.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    targets: usize,
    host_parallelism: usize,
    /// scan time / indexed time for the GreedyBalanced splitter
    /// (the issue's acceptance bar is ≥ 2).
    greedy_speedup: f64,
    /// uncached time / cached time for the V-stage filter.
    vfilter_speedup: f64,
    results: Vec<Entry>,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 400;
    let duration = 300;
    let n_targets = 100;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, n_targets, 1);

    let mut c = Criterion::default();

    // -- setsplit: indexed vs scan, per strategy ------------------------
    let mut group = c.benchmark_group("setsplit_index");
    group.sample_size(10);
    for (name, strategy) in [
        ("chrono", SelectionStrategy::Chronological),
        ("random", SelectionStrategy::RandomTime { seed: 1 }),
        ("greedy", SelectionStrategy::GreedyBalanced),
    ] {
        let config = SetSplitConfig {
            strategy,
            ..SetSplitConfig::default()
        };
        group.bench_function(format!("{name}/indexed"), |b| {
            b.iter(|| split_ideal(&data.estore, &targets, &config).recorded.len());
        });
        group.bench_function(format!("{name}/scan"), |b| {
            b.iter(|| {
                reference::split_ideal_scan(&data.estore, &targets, &config)
                    .recorded
                    .len()
            });
        });
    }
    group.finish();

    // -- vfilter: shared gallery cache vs per-EID re-extraction ---------
    let split = split_ideal(&data.estore, &targets, &SetSplitConfig::default());
    let vconfig = VFilterConfig::default();
    let mut group = c.benchmark_group("vfilter_index");
    group.sample_size(10);
    group.bench_function("cached", |b| {
        b.iter(|| filter_vids(&split.lists, &data.video, &vconfig).len());
    });
    group.bench_function("uncached", |b| {
        b.iter(|| filter_vids_uncached(&split.lists, &data.video, &vconfig).len());
    });
    group.finish();

    let results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let record = Record {
        population,
        duration,
        targets: n_targets,
        host_parallelism,
        greedy_speedup: per_iter_ns(&results, "setsplit_index/greedy/scan")
            / per_iter_ns(&results, "setsplit_index/greedy/indexed"),
        vfilter_speedup: per_iter_ns(&results, "vfilter_index/uncached")
            / per_iter_ns(&results, "vfilter_index/cached"),
        results,
    };

    for e in &record.results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            e.id, e.per_iter_ns, e.iterations
        );
    }
    println!(
        "greedy speedup: {:.1}x   vfilter speedup: {:.1}x",
        record.greedy_speedup, record.vfilter_speedup
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_index.json"), json).expect("write BENCH_index.json");
}
