//! Benchmarks the work-stealing executor under the sharded matching
//! pipeline and writes the scaling record to `results/BENCH_exec.json`.
//!
//! Two curves, because they answer different questions:
//!
//! * **wall** — real elapsed time of [`sharded_match`] at 1/2/4/8
//!   threads on *this* machine. On a single-core host the curve is flat
//!   (there is nothing to steal a core from); on an n-core host it bends
//!   down. `host_parallelism` is recorded so the reader can interpret
//!   the numbers.
//! * **virtual** — the deterministic makespan of the same MapReduce
//!   engine under [`Backend::Simulated`], which models the paper's
//!   Figure 9 cluster experiment in virtual time units and is
//!   independent of the host. This is where the ≥2× speedup at 4
//!   workers is asserted.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_mapreduce::{Backend, ClusterConfig, Emitter, FaultPlan, MapReduce, Mapper, Reducer};
use ev_matching::parallel::ParallelSplitConfig;
use ev_matching::sharded::sharded_match;
use ev_matching::vfilter::VFilterConfig;
use ev_telemetry::Telemetry;
use serde::Serialize;
use std::path::Path;

/// One exported wall-clock measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// One point of the deterministic virtual-makespan curve.
#[derive(Debug, Serialize)]
struct VirtualPoint {
    workers: usize,
    makespan_units: u64,
    speedup_vs_1: f64,
}

/// The full `BENCH_exec.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    targets: usize,
    /// `std::thread::available_parallelism()` on the benchmark host.
    /// Wall-clock scaling is bounded by this number; the virtual curve
    /// is not.
    host_parallelism: usize,
    /// threads=1 report compared field-by-field against threads=4.
    byte_identical: bool,
    /// Deterministic simulated-cluster speedup at 4 workers vs 1
    /// (virtual makespan ratio; the acceptance bar is ≥ 2).
    virtual_speedup_at_4_workers: f64,
    /// Wall-clock speedup of sharded_match at 4 threads vs 1 on this
    /// host (≈1.0 when `host_parallelism` is 1).
    wall_speedup_at_4_threads: f64,
    virtual_curve: Vec<VirtualPoint>,
    wall_results: Vec<Entry>,
    note: &'static str,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

// -- the virtual-cluster workload (Figure 9 model) ----------------------

struct Tokenize;
impl Mapper<String> for Tokenize {
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, out: &mut Emitter<String, u64>) {
        for w in line.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer<String, u64> for Sum {
    type Output = (String, u64);
    fn reduce(&self, key: &String, values: &[u64]) -> Vec<(String, u64)> {
        vec![(key.clone(), values.iter().sum())]
    }
}

fn corpus(lines: usize) -> Vec<String> {
    (0..lines)
        .map(|i| format!("alpha{} beta{} shared", i % 97, i % 31))
        .collect()
}

fn virtual_makespan(workers: usize) -> u64 {
    let cfg = ClusterConfig {
        workers,
        reduce_partitions: 4,
        split_size: 1,
        backend: Backend::Simulated,
        task_overhead_units: 5_000,
        faults: FaultPlan::default(),
    };
    MapReduce::new(cfg)
        .run(corpus(200), &Tokenize, &Sum)
        .expect("healthy cluster")
        .metrics
        .virtual_makespan_units
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 200;
    let duration = 250;
    let n_targets = 40;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, n_targets, 1);
    let split_config = ParallelSplitConfig {
        seed: 9,
        max_iterations: None,
    };
    let vconfig = VFilterConfig::default();
    let telemetry = Telemetry::disabled();

    let run = |threads: usize| {
        data.video.reset_usage();
        sharded_match(
            threads,
            &data.estore,
            &data.video,
            &targets,
            &split_config,
            &vconfig,
            telemetry,
        )
        .expect("sharded match succeeds")
    };

    // -- thread-count independence (the merge invariant) ----------------
    let reference = run(1);
    let wide = run(4);
    let byte_identical = reference.outcomes == wide.outcomes
        && reference.lists == wide.lists
        && reference.selected_scenarios == wide.selected_scenarios
        && reference.rounds == wide.rounds;
    assert!(byte_identical, "threads=4 diverged from threads=1");

    // -- wall-clock curve on this host ----------------------------------
    let mut c = Criterion::default();
    let mut group = c.benchmark_group("exec_sharded_wall");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| run(threads).outcomes.len());
        });
    }
    group.finish();

    // -- deterministic virtual curve (Figure 9 model) -------------------
    let m1 = virtual_makespan(1);
    let virtual_curve: Vec<VirtualPoint> = [1usize, 2, 4, 8, 14]
        .into_iter()
        .map(|workers| {
            let makespan_units = virtual_makespan(workers);
            VirtualPoint {
                workers,
                makespan_units,
                speedup_vs_1: m1 as f64 / makespan_units as f64,
            }
        })
        .collect();
    let virtual_speedup_at_4_workers = virtual_curve
        .iter()
        .find(|p| p.workers == 4)
        .map(|p| p.speedup_vs_1)
        .expect("4-worker point present");
    assert!(
        virtual_speedup_at_4_workers >= 2.0,
        "virtual speedup at 4 workers must be >= 2x, got {virtual_speedup_at_4_workers:.2}x"
    );

    let wall_results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let record = Record {
        population,
        duration,
        targets: n_targets,
        host_parallelism,
        byte_identical,
        virtual_speedup_at_4_workers,
        wall_speedup_at_4_threads: per_iter_ns(&wall_results, "exec_sharded_wall/threads/1")
            / per_iter_ns(&wall_results, "exec_sharded_wall/threads/4"),
        virtual_curve,
        wall_results,
        note: "wall speedup is bounded by host_parallelism; the virtual curve is the \
               host-independent Figure 9 cluster model (see EXPERIMENTS.md)",
    };

    for e in &record.wall_results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            e.id, e.per_iter_ns, e.iterations
        );
    }
    for p in &record.virtual_curve {
        println!(
            "virtual workers={:<3} makespan={:>8} units  speedup {:.2}x",
            p.workers, p.makespan_units, p.speedup_vs_1
        );
    }
    println!(
        "byte_identical: {}   virtual speedup @4: {:.2}x   wall speedup @4: {:.2}x \
         (host has {} core(s))",
        record.byte_identical,
        record.virtual_speedup_at_4_workers,
        record.wall_speedup_at_4_threads,
        record.host_parallelism
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_exec.json"), json).expect("write BENCH_exec.json");
}
