//! Criterion benchmarks of the end-to-end matching pipelines (backs the
//! Fig. 8–9 timing analysis at micro scale): SS vs EDP, sequential vs
//! parallel, and the V-stage in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_mapreduce::ClusterConfig;
use ev_matching::edp::{match_edp, EdpConfig};
use ev_matching::refine::{match_with_refinement, RefineConfig, SplitMode};
use ev_matching::vfilter::{filter_one, VFilterConfig};
use std::collections::BTreeSet;

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 300,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

fn bench_pipelines(c: &mut Criterion) {
    let data = dataset();
    let targets = sample_targets(&data, 60, 1);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("ss_sequential", |b| {
        b.iter(|| {
            data.video.reset_usage();
            match_with_refinement(
                &data.estore,
                &data.video,
                &targets,
                &RefineConfig {
                    mode: SplitMode::Practical,
                    ..RefineConfig::default()
                },
            )
            .outcomes
            .len()
        });
    });

    group.bench_function("edp_sequential", |b| {
        b.iter(|| {
            data.video.reset_usage();
            match_edp(&data.estore, &data.video, &targets, &EdpConfig::default())
                .outcomes
                .len()
        });
    });

    group.bench_function("ss_parallel", |b| {
        let engine = ev_mapreduce::MapReduce::new(ClusterConfig::default());
        b.iter(|| {
            data.video.reset_usage();
            ev_matching::parallel::parallel_match(
                &engine,
                &data.estore,
                &data.video,
                &targets,
                &ev_matching::parallel::ParallelSplitConfig::default(),
                &VFilterConfig::default(),
            )
            .expect("healthy cluster")
            .outcomes
            .len()
        });
    });
    group.finish();
}

fn bench_vfilter(c: &mut Criterion) {
    let data = dataset();
    let targets = sample_targets(&data, 20, 2);
    // Pre-build lists once so only the V stage is measured.
    let lists: Vec<(ev_core::Eid, Vec<ev_core::ScenarioId>)> = targets
        .iter()
        .map(|&eid| {
            (
                eid,
                ev_matching::edp::efilter_one(&data.estore, eid, &EdpConfig::default()),
            )
        })
        .collect();
    c.bench_function("vfilter_20_eids", |b| {
        b.iter(|| {
            data.video.reset_usage();
            let empty = BTreeSet::new();
            lists
                .iter()
                .filter(|(eid, list)| {
                    filter_one(*eid, list, &data.video, &VFilterConfig::default(), &empty)
                        .vid
                        .is_some()
                })
                .count()
        });
    });
}

criterion_group!(benches, bench_pipelines, bench_vfilter);
criterion_main!(benches);
