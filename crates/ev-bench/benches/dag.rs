//! Benchmarks the stage-DAG scheduler against the barriered engine and
//! writes the record to `results/BENCH_dag.json`.
//!
//! Two curves, mirroring `BENCH_exec`:
//!
//! * **wall** — real elapsed time of [`dag_match`] at 1/2/4 threads on
//!   *this* machine, with a byte-identity assertion across all three
//!   (the report must be a pure function of the inputs, never of the
//!   thread count). `host_parallelism` is printed first so a flat curve
//!   on a single-core host is not misread as a regression.
//! * **virtual** — the deterministic makespan of the `R`-round splitter
//!   shape ([`round_pipeline_shape`]) priced two ways on the same work:
//!   [`DagSpec::virtual_makespan`] lets round *r+1*'s snapshot scan
//!   overlap round *r*'s signature/merge work, while
//!   [`DagSpec::barriered_makespan`] models the classic stage-at-a-time
//!   engine. The ratio is the round-overlap speedup, independent of the
//!   host.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_mapreduce::DagConfig;
use ev_matching::dagflow::{dag_match, round_pipeline_shape};
use ev_matching::parallel::ParallelSplitConfig;
use ev_matching::vfilter::VFilterConfig;
use ev_telemetry::Telemetry;
use serde::Serialize;
use std::path::Path;

/// One exported wall-clock measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// One point of the deterministic virtual-makespan comparison.
#[derive(Debug, Serialize)]
struct OverlapPoint {
    rounds: usize,
    workers: usize,
    barriered_units: u64,
    overlapped_units: u64,
    overlap_speedup: f64,
}

/// The full `BENCH_dag.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    targets: usize,
    /// `std::thread::available_parallelism()` on the benchmark host.
    /// Wall-clock scaling is bounded by this number; the overlap model
    /// is not.
    host_parallelism: usize,
    /// threads=1 report compared field-by-field against threads=2 and 4.
    byte_identical: bool,
    /// Round-overlap speedup of the 6-round splitter shape at 4 workers
    /// (barriered / overlapped virtual makespan; must be > 1).
    overlap_speedup_at_4_workers: f64,
    /// Wall-clock speedup of dag_match at 4 threads vs 1 on this host
    /// (≈1.0 when `host_parallelism` is 1).
    wall_speedup_at_4_threads: f64,
    overlap_curve: Vec<OverlapPoint>,
    wall_results: Vec<Entry>,
    note: &'static str,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

/// Representative virtual costs: snapshot scans dominate (they touch
/// every scenario at the timestamp), signature extraction shards four
/// ways, merge is a single cheap reducer.
fn overlap_point(rounds: usize, workers: usize) -> OverlapPoint {
    let dag = round_pipeline_shape(rounds, 32, 2, 4);
    let barriered_units = dag.barriered_makespan(workers);
    let overlapped_units = dag.virtual_makespan(workers);
    OverlapPoint {
        rounds,
        workers,
        barriered_units,
        overlapped_units,
        overlap_speedup: barriered_units as f64 / overlapped_units as f64,
    }
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();

    let population = 200;
    let duration = 250;
    let n_targets = 40;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, n_targets, 1);
    let split_config = ParallelSplitConfig {
        seed: 9,
        max_iterations: None,
    };
    let vconfig = VFilterConfig::default();
    let telemetry = Telemetry::disabled();

    let run = |threads: usize| {
        data.video.reset_usage();
        dag_match(
            &DagConfig::new(threads),
            &data.estore,
            &data.video,
            &targets,
            &split_config,
            &vconfig,
            telemetry,
        )
        .expect("dag match succeeds")
    };

    // -- thread-count independence (the lineage-determinism invariant) --
    let reference = run(1);
    let byte_identical = [2usize, 4].iter().all(|&threads| {
        let wide = run(threads);
        reference.outcomes == wide.outcomes
            && reference.lists == wide.lists
            && reference.selected_scenarios == wide.selected_scenarios
            && reference.rounds == wide.rounds
    });
    assert!(byte_identical, "threads=2/4 diverged from threads=1");

    // -- wall-clock curve on this host ----------------------------------
    let mut c = Criterion::default();
    let mut group = c.benchmark_group("dag_match_wall");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("threads/{threads}"), |b| {
            b.iter(|| run(threads).outcomes.len());
        });
    }
    group.finish();

    // -- deterministic round-overlap model ------------------------------
    let overlap_curve: Vec<OverlapPoint> = [(2usize, 4usize), (4, 4), (6, 2), (6, 4), (10, 4)]
        .into_iter()
        .map(|(rounds, workers)| overlap_point(rounds, workers))
        .collect();
    let overlap_speedup_at_4_workers = overlap_curve
        .iter()
        .find(|p| p.rounds == 6 && p.workers == 4)
        .map(|p| p.overlap_speedup)
        .expect("6-round 4-worker point present");
    assert!(
        overlap_speedup_at_4_workers > 1.0,
        "round overlap must beat the barriered schedule, got {overlap_speedup_at_4_workers:.2}x"
    );

    let wall_results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let record = Record {
        population,
        duration,
        targets: n_targets,
        host_parallelism,
        byte_identical,
        overlap_speedup_at_4_workers,
        wall_speedup_at_4_threads: per_iter_ns(&wall_results, "dag_match_wall/threads/1")
            / per_iter_ns(&wall_results, "dag_match_wall/threads/4"),
        overlap_curve,
        wall_results,
        note: "wall speedup is bounded by host_parallelism; the overlap curve is the \
               host-independent round-pipelining model (see DESIGN.md §11, EXPERIMENTS.md)",
    };

    for e in &record.wall_results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            e.id, e.per_iter_ns, e.iterations
        );
    }
    for p in &record.overlap_curve {
        println!(
            "overlap rounds={:<3} workers={:<2} barriered={:>6} overlapped={:>6} units  speedup {:.2}x",
            p.rounds, p.workers, p.barriered_units, p.overlapped_units, p.overlap_speedup
        );
    }
    println!(
        "byte_identical: {}   overlap speedup @6r/4w: {:.2}x   wall speedup @4: {:.2}x \
         (host has {} core(s))",
        record.byte_identical,
        record.overlap_speedup_at_4_workers,
        record.wall_speedup_at_4_threads,
        record.host_parallelism
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_dag.json"), json).expect("write BENCH_dag.json");
}
