//! Prices the observability plane: the parallel matching pipeline at the
//! production `counters` level with the flight recorder off, on, and on
//! while a live `/metrics` endpoint is being scraped. Written to
//! `results/BENCH_obs.json`.
//!
//! The issue's acceptance target is < 3% overhead with the flight
//! recorder armed: every recorded entry is one `fetch_add` slot claim
//! plus a bounded copy into a fixed ring, so arming it must stay cheap
//! enough to leave on for any run whose post-mortem might matter. The
//! serve variant additionally scrapes `/metrics` from a background
//! thread mid-run to price a live dashboard against a quiet endpoint.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_mapreduce::{ClusterConfig, MapReduce};
use ev_matching::parallel::{parallel_match, ParallelSplitConfig};
use ev_matching::vfilter::VFilterConfig;
use ev_telemetry::{MetricsServer, Telemetry, TelemetryLevel};
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::Path;

/// One exported measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// The full `BENCH_obs.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    targets: usize,
    workers: usize,
    host_parallelism: usize,
    /// (flight − baseline) / baseline, in percent (the < 3% target).
    flight_overhead_pct: f64,
    /// (flight + live scrapes − baseline) / baseline, in percent.
    flight_serve_overhead_pct: f64,
    /// `/metrics` scrapes answered during the serve variant.
    scrapes_answered: u64,
    results: Vec<Entry>,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

/// One full parallel match on a fresh engine wired to `tel`.
fn run_pipeline(data: &EvDataset, targets: &BTreeSet<ev_core::ids::Eid>, tel: &Telemetry) -> usize {
    data.video.reset_usage();
    let engine = MapReduce::new(ClusterConfig {
        workers: 4,
        ..ClusterConfig::default()
    })
    .with_telemetry(tel);
    parallel_match(
        &engine,
        &data.estore,
        &data.video,
        targets,
        &ParallelSplitConfig::default(),
        &VFilterConfig::default(),
    )
    .expect("healthy cluster cannot fail")
    .outcomes
    .len()
}

/// Scrapes `GET /metrics` once; returns true on a 200 with a body.
fn scrape(addr: &std::net::SocketAddr) -> bool {
    use std::io::{Read, Write};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    if stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut body = String::new();
    stream.read_to_string(&mut body).is_ok() && body.starts_with("HTTP/1.1 200")
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 400;
    let duration = 300;
    let n_targets = 100;
    let workers = 4;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, n_targets, 1);
    let _ = data.estore.index();

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("observability");
    group.sample_size(10);

    group.bench_function("baseline", |b| {
        b.iter(|| {
            let tel = Telemetry::new(TelemetryLevel::Counters);
            run_pipeline(&data, &targets, &tel)
        });
    });
    group.bench_function("flight", |b| {
        b.iter(|| {
            let tel = Telemetry::new(TelemetryLevel::Counters);
            tel.flight().set_enabled(true);
            run_pipeline(&data, &targets, &tel)
        });
    });

    // The serve variant holds one server + one scraper for the whole
    // measurement: the endpoint is part of the process being priced, not
    // of any single iteration.
    let serve_tel = Telemetry::new(TelemetryLevel::Counters);
    serve_tel.flight().set_enabled(true);
    let server = MetricsServer::start("127.0.0.1:0", &serve_tel).expect("bind bench port");
    let addr = server.addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut answered = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if scrape(&addr) {
                    answered += 1;
                }
                // A dashboard polls on the order of seconds; 250ms is
                // already 4-60x more aggressive than any real scraper.
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
            answered
        })
    };
    group.bench_function("flight_serve", |b| {
        b.iter(|| run_pipeline(&data, &targets, &serve_tel));
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes_answered = scraper.join().expect("scraper thread");
    server.stop();
    group.finish();

    let results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let baseline = per_iter_ns(&results, "observability/baseline");
    let flight = per_iter_ns(&results, "observability/flight");
    let flight_serve = per_iter_ns(&results, "observability/flight_serve");
    let record = Record {
        population,
        duration,
        targets: n_targets,
        workers,
        host_parallelism,
        flight_overhead_pct: (flight - baseline) / baseline * 100.0,
        flight_serve_overhead_pct: (flight_serve - baseline) / baseline * 100.0,
        scrapes_answered,
        results,
    };

    for e in &record.results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            e.id, e.per_iter_ns, e.iterations
        );
    }
    println!(
        "flight overhead: {:+.2}%   flight+serve overhead: {:+.2}%   scrapes answered: {}",
        record.flight_overhead_pct, record.flight_serve_overhead_pct, record.scrapes_answered
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_obs.json"), json).expect("write BENCH_obs.json");
}
