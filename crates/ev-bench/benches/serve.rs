//! Benchmarks the streaming serve layer and writes the measurements to
//! `results/BENCH_serve.json`.
//!
//! Three questions about the live service, on the paper's density
//! regime:
//!
//! * **ingest throughput** — durable-append + publish cost of
//!   streaming a full day into a fresh corpus, window by window (one
//!   apply per window: the worst-case freshness policy);
//! * **query latency under ingest** — a match query against the
//!   applied snapshot while a half-day backlog sits staged, versus the
//!   same query on a fully applied (quiescent) corpus — the snapshot
//!   design says these should be indistinguishable;
//! * **staleness distribution** — what `evm_serve_staleness_events`
//!   actually reads when a `apply_every`-bounded service is queried
//!   after every arriving window.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_core::scenario::{EScenario, VScenario};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_telemetry::Telemetry;
use evmatch::serve::{LiveCorpus, ServeConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// One exported measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// The full `BENCH_serve.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    host_parallelism: usize,
    e_records: usize,
    v_records: usize,
    windows: usize,
    targets: usize,
    /// Events published per second by the window-by-window stream
    /// (durable append + apply + delta-update, one apply per window).
    ingest_events_per_sec: f64,
    /// query-under-ingest time / quiescent query time: the snapshot
    /// isolation overhead (should be ~1.0).
    live_vs_quiescent_query: f64,
    /// `evm_serve_staleness_events` observed after each window under
    /// `apply_every = 256`.
    staleness: StalenessDistribution,
    results: Vec<Entry>,
}

#[derive(Debug, Serialize)]
struct StalenessDistribution {
    apply_every: usize,
    min: u64,
    mean: f64,
    max: u64,
    samples: Vec<u64>,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

/// The events of `d` whose tick falls in `[from, to)`.
fn slice(d: &EvDataset, from: u64, to: u64) -> (Vec<EScenario>, Vec<VScenario>) {
    let es = d
        .estore
        .iter()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    let vs = d
        .video
        .scenarios()
        .filter(|s| (from..to).contains(&s.time().tick()))
        .cloned()
        .collect();
    (es, vs)
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ev-bench-serve-{tag}-{}", std::process::id()))
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 400;
    let duration = 300;
    let window = 30u64;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, 40, 1);
    let config = || ServeConfig {
        cost: data.video.cost_model(),
        watch: targets.clone(),
        ..ServeConfig::default()
    };
    let windows: Vec<(Vec<EScenario>, Vec<VScenario>)> = (0..duration / window)
        .map(|w| slice(&data, w * window, (w + 1) * window))
        .collect();
    let total_events: usize = windows.iter().map(|(e, v)| e.len() + v.len()).sum();

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Ingest throughput: stream the full day into a fresh corpus, one
    // durable apply per window.
    group.bench_function("stream_day", |b| {
        let dir = scratch("stream");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let mut live =
                LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("fresh corpus");
            for (e, v) in &windows {
                live.ingest(e.clone(), v.clone()).expect("ingest");
                live.apply().expect("apply");
            }
            live.finish().expect("shutdown").segments().len()
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Query latency: half the day applied, the other half staged — the
    // staged backlog must not slow (or change) the snapshot query.
    {
        let dir = scratch("query");
        let _ = std::fs::remove_dir_all(&dir);
        let mut live =
            LiveCorpus::open(&dir, config(), Telemetry::disabled()).expect("fresh corpus");
        let half = windows.len() / 2;
        for (e, v) in &windows[..half] {
            live.ingest(e.clone(), v.clone()).expect("ingest");
        }
        live.apply().expect("apply");
        for (e, v) in &windows[half..] {
            live.ingest(e.clone(), v.clone()).expect("ingest");
        }
        assert!(live.staged_events() > 0, "a backlog is staged");
        group.bench_function("query_under_ingest", |b| {
            b.iter(|| live.query(&targets).expect("query").report.outcomes.len());
        });
        live.apply().expect("drain the backlog");
        group.bench_function("query_quiescent", |b| {
            b.iter(|| live.query(&targets).expect("query").report.outcomes.len());
        });
        live.finish().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    // Staleness distribution: an `apply_every`-bounded service queried
    // after every arriving chunk (sub-window batches, so the backlog
    // actually oscillates under the bound instead of auto-applying on
    // every delivery).
    let apply_every = 256usize;
    let chunk = 64usize;
    let samples: Vec<u64> = {
        let dir = scratch("staleness");
        let _ = std::fs::remove_dir_all(&dir);
        let mut live = LiveCorpus::open(
            &dir,
            ServeConfig {
                apply_every,
                ..config()
            },
            Telemetry::disabled(),
        )
        .expect("fresh corpus");
        let mut samples = Vec::new();
        for (e, v) in &windows {
            for es in e.chunks(chunk) {
                live.ingest(es.to_vec(), Vec::new()).expect("ingest");
                samples.push(live.query(&targets).expect("query").staleness_events);
            }
            for vs in v.chunks(chunk) {
                live.ingest(Vec::new(), vs.to_vec()).expect("ingest");
                samples.push(live.query(&targets).expect("query").staleness_events);
            }
        }
        live.finish().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
        samples
    };

    let results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let stream_ns = per_iter_ns(&results, "serve/stream_day");
    let record = Record {
        population,
        duration,
        host_parallelism,
        e_records: data.estore.len(),
        v_records: data.video.len(),
        windows: windows.len(),
        targets: targets.len(),
        ingest_events_per_sec: total_events as f64 / (stream_ns / 1e9),
        live_vs_quiescent_query: per_iter_ns(&results, "serve/query_under_ingest")
            / per_iter_ns(&results, "serve/query_quiescent"),
        staleness: StalenessDistribution {
            apply_every,
            min: samples.iter().copied().min().unwrap_or(0),
            mean: samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64,
            max: samples.iter().copied().max().unwrap_or(0),
            samples,
        },
        results,
    };

    for entry in &record.results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            entry.id, entry.per_iter_ns, entry.iterations
        );
    }
    println!(
        "ingest {:.0} events/s   live/quiescent query {:.2}x   staleness [{}, {:.0}, {}] under apply_every={}",
        record.ingest_events_per_sec,
        record.live_vs_quiescent_query,
        record.staleness.min,
        record.staleness.mean,
        record.staleness.max,
        apply_every,
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(out.join("BENCH_serve.json"), json).expect("write BENCH_serve.json");
}
