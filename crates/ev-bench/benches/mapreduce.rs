//! Criterion benchmarks of the MapReduce engine substrate: scaling with
//! workers, combiner effect, and speculative execution under stragglers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ev_mapreduce::{
    ClusterConfig, Combiner, Emitter, FaultPlan, HashPartitioner, MapReduce, Mapper, Reducer,
};

struct Tokenize;
impl Mapper<String> for Tokenize {
    type Key = String;
    type Value = u64;
    fn map(&self, line: &String, out: &mut Emitter<String, u64>) {
        for w in line.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer<String, u64> for Sum {
    type Output = (String, u64);
    fn reduce(&self, key: &String, values: &[u64]) -> Vec<(String, u64)> {
        vec![(key.clone(), values.iter().sum())]
    }
}

struct SumCombiner;
impl Combiner<String, u64> for SumCombiner {
    fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.iter().sum()]
    }
}

fn corpus(lines: usize) -> Vec<String> {
    (0..lines)
        .map(|i| {
            format!(
                "alpha{} beta{} gamma{} shared common",
                i % 97,
                i % 31,
                i % 13
            )
        })
        .collect()
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce_workers");
    group.sample_size(10);
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for workers in [1usize, 2, 4, 8] {
        if workers > max * 2 {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let engine = MapReduce::new(ClusterConfig {
                    workers,
                    reduce_partitions: workers,
                    split_size: 64,
                    task_overhead_units: 50_000,
                    ..ClusterConfig::default()
                });
                let input = corpus(4096);
                b.iter(|| {
                    engine
                        .run(input.clone(), &Tokenize, &Sum)
                        .expect("healthy cluster")
                        .output
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_combiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce_combiner");
    group.sample_size(10);
    let engine = MapReduce::new(ClusterConfig::default());
    let input = corpus(8192);
    group.bench_function("without", |b| {
        b.iter(|| {
            engine
                .run(input.clone(), &Tokenize, &Sum)
                .expect("healthy cluster")
                .metrics
                .shuffled_pairs
        });
    });
    group.bench_function("with", |b| {
        b.iter(|| {
            engine
                .run_with(
                    input.clone(),
                    &Tokenize,
                    &Sum,
                    Some(&SumCombiner),
                    &HashPartitioner,
                )
                .expect("healthy cluster")
                .metrics
                .shuffled_pairs
        });
    });
    group.finish();
}

fn bench_speculation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapreduce_stragglers");
    group.sample_size(10);
    let input = corpus(2048);
    for (name, speculative) in [("no-speculation", false), ("speculation", true)] {
        group.bench_function(name, |b| {
            let engine = MapReduce::new(ClusterConfig {
                faults: FaultPlan {
                    straggler_rate: 0.2,
                    straggler_factor: 10,
                    speculative_execution: speculative,
                    seed: 7,
                    ..FaultPlan::default()
                },
                split_size: 32,
                task_overhead_units: 200_000,
                ..ClusterConfig::default()
            });
            b.iter(|| {
                engine
                    .run(input.clone(), &Tokenize, &Sum)
                    .expect("healthy cluster")
                    .output
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_worker_scaling,
    bench_combiner,
    bench_speculation
);
criterion_main!(benches);
