//! Benchmarks the similarity kernel of `DESIGN.md` §9 — the per-pair
//! scalar reference against the SoA block kernel and the 8-bit
//! quantized prefilter — and writes the record to
//! `results/BENCH_kernel.json`.
//!
//! Workload: a generated appearance gallery packed once into a
//! [`FeatureBlock`], scanned by a batch of noisy candidate descriptors,
//! at every metric × dimension in the grid. What is timed is the
//! steady-state cost of one candidate-vs-row comparison
//! (`ns/comparison`): total scan time over `candidates × rows`,
//! best-of-`REPS`. The gallery build is paid outside the timed region
//! for the block paths — exactly how the matcher amortizes it through
//! the gallery cache — and the scalar path has no build to pay.
//!
//! Before timing, every candidate's block and quantized maxima are
//! asserted **bitwise equal** to the scalar fold, so the speedups below
//! are speedups of the same answer, not of a looser one.
//!
//! Acceptance (`ISSUE` / CI): the block kernel must be at least 2×
//! faster than the scalar path per comparison at every dim ≥ 64. The
//! quantized prefilter's win is workload-dependent (it is off by
//! default), so its speedup and pruning rate are recorded, not gated.
//!
//! `EVM_BENCH_SHORT=1` (set by CI) shrinks reps and the candidate batch
//! so the smoke run stays in CI budget; the JSON is emitted either way.
//!
//! Custom main (no criterion harness): the record must land in JSON.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::kernel::Kernel;
use ev_core::PersonId;
use ev_vision::AppearanceGallery;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

const ROWS: u64 = 512;
const DIMS: [usize; 3] = [16, 64, 256];
const METRICS: [Metric; 3] = [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine];
const SEED: u64 = 42;
/// The CI acceptance bar: block vs scalar per-comparison speedup at
/// every dim ≥ [`GATE_MIN_DIM`].
const GATE_SPEEDUP: f64 = 2.0;
const GATE_MIN_DIM: usize = 64;

#[derive(Debug, Serialize)]
struct Cell {
    metric: String,
    dim: usize,
    rows: u64,
    candidates: usize,
    scalar_ns_per_cmp: f64,
    block_ns_per_cmp: f64,
    quantized_ns_per_cmp: f64,
    /// `scalar / block`; gated at ≥ 2 for dim ≥ 64.
    block_speedup: f64,
    /// `scalar / quantized`; recorded, not gated.
    quantized_speedup: f64,
    /// Gallery rows the prefilter proved unable to win, over all
    /// candidate-vs-gallery scans (0 where quantization is bypassed).
    pruned_fraction: f64,
    /// Always true — asserted, not sampled — but recorded so the JSON
    /// is self-describing.
    bitwise_equal: bool,
}

#[derive(Debug, Serialize)]
struct Record {
    rows: u64,
    seed: u64,
    reps: usize,
    host_parallelism: usize,
    short_mode: bool,
    gate_speedup: f64,
    gate_min_dim: usize,
    cells: Vec<Cell>,
    note: &'static str,
}

fn timed(f: &mut impl FnMut() -> f64) -> u64 {
    let t = Instant::now();
    let sink = f();
    std::hint::black_box(sink);
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Best-of-`reps` for all three paths with the reps **interleaved**
/// (scalar, block, quantized, scalar, ...): a noise spike on a busy CI
/// host then lands on every path equally instead of skewing one side
/// of a speedup ratio.
fn best_of_interleaved(
    reps: usize,
    mut scalar: impl FnMut() -> f64,
    mut block: impl FnMut() -> f64,
    mut quant: impl FnMut() -> f64,
) -> (u64, u64, u64) {
    let mut best = (u64::MAX, u64::MAX, u64::MAX);
    for _ in 0..reps {
        best.0 = best.0.min(timed(&mut scalar));
        best.1 = best.1.min(timed(&mut block));
        best.2 = best.2.min(timed(&mut quant));
    }
    best
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let short = std::env::var_os("EVM_BENCH_SHORT").is_some();
    // Short mode trims the candidate batch, not the rep count: the gate
    // compares best-of-reps times, and on a busy 1-core CI host
    // best-of-3 is close enough to the 2x bar to flake.
    let (reps, n_candidates) = if short { (5, 24) } else { (7, 48) };

    let mut cells = Vec::new();
    for dim in DIMS {
        let gallery = AppearanceGallery::generate(ROWS, dim, SEED + dim as u64);
        let block = gallery.to_block();
        assert!(block.has_quantized(), "dim {dim} must quantize");
        let truth: Vec<&FeatureVector> = (0..ROWS)
            .map(|p| gallery.feature_of(PersonId::new(p)).expect("in range"))
            .collect();
        // Candidates are noisy observations of real rows, so the scans
        // see realistic near/far score spreads (what the prefilter's
        // pruning rate depends on).
        let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ dim as u64);
        let candidates: Vec<FeatureVector> = (0..n_candidates)
            .map(|i| {
                gallery
                    .observe(PersonId::new(i as u64 * 7 % ROWS), 0.1, &mut rng)
                    .expect("in range")
            })
            .collect();

        for metric in METRICS {
            let kernel = Kernel::prepare(metric, dim).expect("prepare kernel");

            // Bitwise-equivalence check first: the timed paths must all
            // return the same bits before their speeds mean anything.
            let mut pruned_total = 0usize;
            for cand in &candidates {
                let scalar = truth
                    .iter()
                    .map(|row| cand.similarity(row, metric).expect("uniform dims"))
                    .fold(0.0f64, f64::max);
                let batch = kernel.score_max(cand, &block).expect("block scan");
                let (quant, pruned) = kernel
                    .score_max_quantized(cand, &block)
                    .expect("quantized scan");
                assert_eq!(scalar.to_bits(), batch.to_bits(), "{metric:?} dim {dim}");
                assert_eq!(scalar.to_bits(), quant.to_bits(), "{metric:?} dim {dim}");
                pruned_total += pruned;
            }

            let comparisons = (candidates.len() as u64 * ROWS) as f64;
            let (scalar_ns, block_ns, quant_ns) = best_of_interleaved(
                reps,
                || {
                    let mut acc = 0.0;
                    for cand in &candidates {
                        acc += truth
                            .iter()
                            .map(|row| cand.similarity(row, metric).expect("uniform dims"))
                            .fold(0.0f64, f64::max);
                    }
                    acc
                },
                || {
                    let mut acc = 0.0;
                    for cand in &candidates {
                        acc += kernel.score_max(cand, &block).expect("block scan");
                    }
                    acc
                },
                || {
                    let mut acc = 0.0;
                    for cand in &candidates {
                        acc += kernel
                            .score_max_quantized(cand, &block)
                            .expect("quantized scan")
                            .0;
                    }
                    acc
                },
            );

            let scalar_per = scalar_ns as f64 / comparisons;
            let block_per = block_ns as f64 / comparisons;
            let quant_per = quant_ns as f64 / comparisons;
            cells.push(Cell {
                metric: format!("{metric:?}"),
                dim,
                rows: ROWS,
                candidates: candidates.len(),
                scalar_ns_per_cmp: scalar_per,
                block_ns_per_cmp: block_per,
                quantized_ns_per_cmp: quant_per,
                block_speedup: scalar_per / block_per,
                quantized_speedup: scalar_per / quant_per,
                pruned_fraction: pruned_total as f64 / comparisons,
                bitwise_equal: true,
            });
        }
    }

    for c in &cells {
        println!(
            "{:>12} dim {:>3}: scalar {:>7.2} ns/cmp, block {:>6.2} ({:>5.2}x), \
             quantized {:>6.2} ({:>5.2}x, {:>4.1}% pruned)",
            c.metric,
            c.dim,
            c.scalar_ns_per_cmp,
            c.block_ns_per_cmp,
            c.block_speedup,
            c.quantized_ns_per_cmp,
            c.quantized_speedup,
            c.pruned_fraction * 100.0
        );
    }
    for c in &cells {
        assert!(
            c.dim < GATE_MIN_DIM || c.block_speedup >= GATE_SPEEDUP,
            "{} dim {}: block kernel must be >= {GATE_SPEEDUP}x over scalar (got {:.2}x)",
            c.metric,
            c.dim,
            c.block_speedup
        );
    }

    let record = Record {
        rows: ROWS,
        seed: SEED,
        reps,
        host_parallelism,
        short_mode: short,
        gate_speedup: GATE_SPEEDUP,
        gate_min_dim: GATE_MIN_DIM,
        cells,
        note: "ns per candidate-vs-row comparison, best-of-reps full-gallery scans; \
               block and quantized maxima are asserted bitwise equal to the scalar \
               fold before timing",
    };
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_kernel.json"), json).expect("write BENCH_kernel.json");
}
