//! Criterion micro-benchmarks for the E-stage: partition refinement and
//! the set-splitting strategies (feeds the Fig. 5–7 analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ev_core::ids::Eid;
use ev_core::partition::{EidPartition, VagueCover};
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_matching::practical::split_practical;
use ev_matching::setsplit::{split_ideal, SelectionStrategy, SetSplitConfig};
use std::collections::BTreeSet;

fn dataset() -> EvDataset {
    EvDataset::generate(&DatasetConfig {
        population: 400,
        duration: 300,
        ..DatasetConfig::default()
    })
    .expect("valid config")
}

fn bench_partition_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_split_by");
    for n in [100u64, 1000, 5000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let universe: Vec<Eid> = (0..n).map(Eid::from_u64).collect();
            let halves: Vec<BTreeSet<Eid>> = (0..10)
                .map(|i| {
                    (0..n)
                        .filter(|e| (e >> (i % 10)) & 1 == 1)
                        .map(Eid::from_u64)
                        .collect()
                })
                .collect();
            b.iter(|| {
                let mut p = EidPartition::new(universe.iter().copied());
                for c in &halves {
                    p.split_by(c);
                }
                p.block_count()
            });
        });
    }
    group.finish();
}

fn bench_vague_cover(c: &mut Criterion) {
    use ev_core::region::CellId;
    use ev_core::scenario::{EScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    c.bench_function("vague_cover_split_1000", |b| {
        let n = 1000u64;
        let scenarios: Vec<EScenario> = (0..10)
            .map(|i| {
                let mut s = EScenario::new(CellId::new(0), Timestamp::new(i));
                for e in 0..n {
                    if (e >> (i % 10)) & 1 == 1 {
                        let attr = if e % 17 == 0 {
                            ZoneAttr::Vague
                        } else {
                            ZoneAttr::Inclusive
                        };
                        s.insert(Eid::from_u64(e), attr);
                    }
                }
                s
            })
            .collect();
        b.iter(|| {
            let mut cover = VagueCover::new((0..n).map(Eid::from_u64));
            for s in &scenarios {
                cover.split_by_scenario(s);
            }
            cover.block_count()
        });
    });
}

fn bench_split_strategies(c: &mut Criterion) {
    let data = dataset();
    let targets = sample_targets(&data, 100, 1);
    let mut group = c.benchmark_group("setsplit_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("random", SelectionStrategy::RandomTime { seed: 1 }),
        ("chrono", SelectionStrategy::Chronological),
    ] {
        group.bench_function(name, |b| {
            let config = SetSplitConfig {
                strategy,
                ..SetSplitConfig::default()
            };
            b.iter(|| split_ideal(&data.estore, &targets, &config).recorded.len());
        });
    }
    group.bench_function("practical-random", |b| {
        let config = SetSplitConfig::default();
        b.iter(|| {
            split_practical(&data.estore, &targets, &config)
                .recorded
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_split,
    bench_vague_cover,
    bench_split_strategies
);
criterion_main!(benches);
