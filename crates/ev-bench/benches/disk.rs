//! Benchmarks the `ev-disk` persistent backend against the in-memory
//! build path and writes the measurements to `results/BENCH_disk.json`.
//!
//! Three questions, on the paper's 400-person density regime:
//!
//! * **cold open** — manifest replay + sequential segment reads +
//!   store construction, versus building the same stores from records
//!   already in RAM (the `from_scenarios` floor the disk path pays on
//!   top of);
//! * **pruned open** — how much of a cold E-load the manifest-bounds
//!   pruning skips when the query wants one narrow time slice;
//! * **append** — the durable-commit cost of one day-sized batch
//!   (two fsynced segments plus two manifest entries).
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_core::time::{TimeRange, Timestamp};
use ev_datagen::{DatasetConfig, EvDataset};
use ev_disk::{DiskBackend, DiskStore};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use serde::Serialize;
use std::path::Path;

/// One exported measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// The full `BENCH_disk.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    host_parallelism: usize,
    e_records: usize,
    v_records: usize,
    segments: usize,
    corpus_bytes: u64,
    /// cold-open time / in-memory build time: the pure disk overhead
    /// multiplier (decode + checksum + I/O over `from_scenarios`).
    cold_open_vs_memory: f64,
    /// full E-load time / pruned E-load time for a 1/6 time slice.
    prune_speedup: f64,
    results: Vec<Entry>,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 400;
    let duration = 300;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let e: Vec<_> = data.estore.iter().cloned().collect();
    let v: Vec<_> = data.video.scenarios().cloned().collect();
    let cost = data.video.cost_model();

    // Persist the corpus in day-sized thirds so the on-disk shape (six
    // segments, interleaved kinds) matches an incremental deployment
    // rather than one monolithic append.
    let dir = std::env::temp_dir().join(format!("ev-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DiskStore::create(&dir).expect("fresh corpus");
    for third in 0..3 {
        let es: Vec<_> = e
            .iter()
            .filter(|s| s.time().tick() as usize / (duration as usize / 3 + 1) == third)
            .cloned()
            .collect();
        let vs: Vec<_> = v
            .iter()
            .filter(|s| s.time().tick() as usize / (duration as usize / 3 + 1) == third)
            .cloned()
            .collect();
        store.append(&es, &vs).expect("durable append");
    }
    let segments = store.segments().len();
    let corpus_bytes: u64 = store.segments().iter().map(|s| s.file_len).sum();
    drop(store);

    let mut c = Criterion::default();

    let mut group = c.benchmark_group("disk");
    group.sample_size(10);
    group.bench_function("cold_open", |b| {
        b.iter(|| {
            let backend = DiskBackend::open(&dir, cost).expect("open corpus");
            backend.estore().len() + backend.video().len()
        });
    });
    group.bench_function("memory_build", |b| {
        b.iter(|| {
            let estore = EScenarioStore::from_scenarios(e.clone());
            let video = VideoStore::new(v.clone(), cost);
            estore.len() + video.len()
        });
    });

    // Pruning: a narrow query slice against the manifest bounds. The
    // thirds give the bounds their selectivity; a 1/6 window overlaps
    // exactly one of them.
    let slice = TimeRange::new(Timestamp::new(0), Timestamp::new(duration / 6));
    let cells: Vec<_> = data.region.cells().collect();
    let opened = DiskStore::open(&dir).expect("reopen");
    group.bench_function("e_load_full", |b| {
        b.iter(|| opened.load_estore().expect("load").len());
    });
    group.bench_function("e_load_pruned", |b| {
        b.iter(|| {
            opened
                .load_estore_pruned(&cells, slice)
                .expect("load")
                .len()
        });
    });
    drop(opened);

    // Append: durable commit of one day-sized batch into a scratch
    // corpus (created outside the timed body, appended inside it).
    group.bench_function("append_batch", |b| {
        let scratch = dir.with_extension("scratch");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&scratch);
            let mut s = DiskStore::create(&scratch).expect("scratch corpus");
            s.append(&e, &v).expect("durable append");
            s.segments().len()
        });
        let _ = std::fs::remove_dir_all(&scratch);
    });
    group.finish();

    let results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let record = Record {
        population,
        duration,
        host_parallelism,
        e_records: e.len(),
        v_records: v.len(),
        segments,
        corpus_bytes,
        cold_open_vs_memory: per_iter_ns(&results, "disk/cold_open")
            / per_iter_ns(&results, "disk/memory_build"),
        prune_speedup: per_iter_ns(&results, "disk/e_load_full")
            / per_iter_ns(&results, "disk/e_load_pruned"),
        results,
    };

    for entry in &record.results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            entry.id, entry.per_iter_ns, entry.iterations
        );
    }
    println!(
        "cold open vs memory build: {:.2}x   prune speedup: {:.1}x",
        record.cold_open_vs_memory, record.prune_speedup
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&out).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(out.join("BENCH_disk.json"), json).expect("write BENCH_disk.json");

    let _ = std::fs::remove_dir_all(&dir);
}
