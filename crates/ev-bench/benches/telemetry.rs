//! Prices the telemetry instrumentation: the full sequential matching
//! pipeline at every [`TelemetryLevel`] over the standard 400-person
//! dataset, written to `results/BENCH_telemetry.json`.
//!
//! The issue's acceptance target is < 3% overhead at the `counters`
//! level (every site behind one relaxed atomic load); `full` adds span
//! clocks and per-comparison latency histograms and is expected to cost
//! more — it is the profiling mode, not the production default.
//!
//! Custom main (no criterion harness): the results must land in a JSON
//! record, so we drain [`Criterion::take_results`] ourselves.

use criterion::{BenchResult, Criterion};
use ev_bench::runner::run_ss_telemetry;
use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_telemetry::{Telemetry, TelemetryLevel};
use serde::Serialize;
use std::path::Path;

/// One exported measurement.
#[derive(Debug, Serialize)]
struct Entry {
    id: String,
    per_iter_ns: u64,
    iterations: u64,
}

impl From<BenchResult> for Entry {
    fn from(r: BenchResult) -> Self {
        Entry {
            id: r.id,
            per_iter_ns: u64::try_from(r.per_iter.as_nanos()).unwrap_or(u64::MAX),
            iterations: r.iterations,
        }
    }
}

/// The full `BENCH_telemetry.json` record.
#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    duration: u64,
    targets: usize,
    host_parallelism: usize,
    /// (counters − off) / off, in percent (the < 3% target).
    counters_overhead_pct: f64,
    /// (full − off) / off, in percent (profiling mode; no target).
    full_overhead_pct: f64,
    results: Vec<Entry>,
}

fn per_iter_ns(results: &[Entry], id: &str) -> f64 {
    results
        .iter()
        .find(|e| e.id == id)
        .map(|e| e.per_iter_ns as f64)
        .expect("benchmark id present")
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let population = 400;
    let duration = 300;
    let n_targets = 100;
    let data = EvDataset::generate(&DatasetConfig {
        population,
        duration,
        ..DatasetConfig::default()
    })
    .expect("valid config");
    let targets = sample_targets(&data, n_targets, 1);
    // Build the lazy inverted index up front so no level pays it first.
    let _ = data.estore.index();

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("telemetry_pipeline");
    group.sample_size(10);
    for (name, level) in [
        ("off", TelemetryLevel::Off),
        ("counters", TelemetryLevel::Counters),
        ("full", TelemetryLevel::Full),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let tel = Telemetry::new(level);
                run_ss_telemetry(&data, &targets, 1, &tel).rounds
            });
        });
    }
    group.finish();

    let results: Vec<Entry> = c.take_results().into_iter().map(Entry::from).collect();
    let off = per_iter_ns(&results, "telemetry_pipeline/off");
    let counters = per_iter_ns(&results, "telemetry_pipeline/counters");
    let full = per_iter_ns(&results, "telemetry_pipeline/full");
    let record = Record {
        population,
        duration,
        targets: n_targets,
        host_parallelism,
        counters_overhead_pct: (counters - off) / off * 100.0,
        full_overhead_pct: (full - off) / off * 100.0,
        results,
    };

    for e in &record.results {
        println!(
            "{:<40} {:>12} ns/iter  ({} iters)",
            e.id, e.per_iter_ns, e.iterations
        );
    }
    println!(
        "counters overhead: {:+.2}%   full overhead: {:+.2}%",
        record.counters_overhead_pct, record.full_overhead_pct
    );

    // Anchor to the workspace-root results directory regardless of the
    // CWD cargo picked for the bench binary.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_telemetry.json"), json).expect("write BENCH_telemetry.json");
}
