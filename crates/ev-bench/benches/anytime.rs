//! Benchmarks the anytime VID filter against the exhaustive one and
//! writes the record to `results/BENCH_anytime.json`.
//!
//! Workload: EDP-style *full* recorded lists (every scenario whose
//! E-snapshot contains the EID) over a dense, high-churn crowd — the
//! regime the anytime scorer exists for. Galleries are deep (~25
//! detections per scenario, so an exact membership max is ~25
//! similarity evaluations per pair) and trajectories churn, so most
//! candidates hover near the presence quorum and the leader separates
//! after few — often zero — exact refinements. Both paths share one
//! warm [`GalleryCache`], exactly like the batch matcher: extraction,
//! grouping and the per-scenario bound boxes amortize across EIDs, and
//! what is timed is the per-EID scoring work. Per EID we time
//! [`filter_one_cached`] (exact) and [`partial_filter_one_instrumented`]
//! at `--confidence 0.95`, take the best of `REPS` runs each, and
//! report the medians across EIDs.
//!
//! Acceptance (`ISSUE` / CI): median anytime latency at confidence
//! 0.95 must be at least 2× below the exact median, with **zero**
//! accuracy loss on converged EIDs — a converged anytime VID that
//! differs from the exhaustive VID is a hard failure, not a statistic.
//!
//! Custom main (no criterion harness): the record must land in JSON.

use ev_datagen::{sample_targets, DatasetConfig, EvDataset};
use ev_matching::anytime::{partial_filter_one_instrumented, AnytimeConfig};
use ev_matching::vfilter::{filter_one_cached, GalleryCache, VFilterConfig};
use ev_telemetry::Telemetry;
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Instant;

const CONFIDENCE: f64 = 0.95;
const REPS: usize = 5;

#[derive(Debug, Serialize)]
struct PerEid {
    eid: String,
    list_len: usize,
    exact_ns: u64,
    anytime_ns: u64,
    scenarios_scored: usize,
    converged: bool,
    agrees_with_exact: bool,
}

#[derive(Debug, Serialize)]
struct Record {
    population: u64,
    cell_size: f64,
    duration: u64,
    seed: u64,
    host_parallelism: usize,
    confidence: f64,
    eids: usize,
    median_list_len: usize,
    median_exact_ns: u64,
    median_anytime_ns: u64,
    /// `median_exact_ns / median_anytime_ns`; the acceptance bar is ≥ 2.
    median_speedup: f64,
    converged_fraction: f64,
    /// Converged EIDs whose VID equals the exhaustive VID, over all
    /// converged EIDs. Must be exactly 1.0.
    accuracy_at_convergence: f64,
    /// Scenarios settled (proven equal to the exact vote) by the
    /// anytime path at its stopping point, over the total.
    scored_fraction: f64,
    per_eid: Vec<PerEid>,
    note: &'static str,
}

fn median<T: Copy + Ord>(xs: &mut [T]) -> T {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if ns < best {
            best = ns;
        }
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let host_parallelism = ev_bench::announce_host_parallelism();
    let config = DatasetConfig {
        population: 2000,
        cell_size: 150.0,
        duration: 900,
        appearance_clusters: 0,
        seed: 42,
        ..DatasetConfig::default()
    };
    let dataset = EvDataset::generate(&config).expect("generate dataset");
    let targets = sample_targets(&dataset, 40, config.seed);
    let none = BTreeSet::new();
    let exact_cfg = VFilterConfig::default();
    let anytime_cfg = VFilterConfig {
        anytime: Some(AnytimeConfig::with_confidence(CONFIDENCE)),
        ..VFilterConfig::default()
    };
    let tel = Telemetry::disabled();
    // One cache for the whole batch, like the production matcher: both
    // paths score against pre-extracted, pre-grouped galleries.
    let mut cache = GalleryCache::new();

    let mut per_eid = Vec::new();
    for &eid in &targets {
        // The EDP-style full recorded list for this EID.
        let list: Vec<_> = dataset
            .estore
            .iter()
            .filter(|s| s.contains(eid))
            .map(|s| s.id())
            .collect();
        if list.len() < 2 {
            continue;
        }
        // Warm both scorers once so extraction and bound-box misses are
        // paid outside the timed region for either path.
        let _ = filter_one_cached(eid, &list, &dataset.video, &exact_cfg, &none, &mut cache);
        let _ = partial_filter_one_instrumented(
            eid,
            &list,
            &dataset.video,
            &anytime_cfg,
            &none,
            &mut cache,
            tel,
        );

        let (exact_ns, exact) = best_of(REPS, || {
            filter_one_cached(eid, &list, &dataset.video, &exact_cfg, &none, &mut cache)
        });
        let (anytime_ns, partial) = best_of(REPS, || {
            partial_filter_one_instrumented(
                eid,
                &list,
                &dataset.video,
                &anytime_cfg,
                &none,
                &mut cache,
                tel,
            )
        });
        per_eid.push(PerEid {
            eid: eid.to_string(),
            list_len: list.len(),
            exact_ns,
            anytime_ns,
            scenarios_scored: partial.scenarios_scored,
            converged: partial.converged,
            agrees_with_exact: partial.vid == exact.vid,
        });
    }
    assert!(!per_eid.is_empty(), "no EID had a non-trivial list");

    let converged: Vec<_> = per_eid.iter().filter(|p| p.converged).collect();
    for p in &converged {
        assert!(
            p.agrees_with_exact,
            "{}: converged anytime VID differs from the exhaustive VID",
            p.eid
        );
    }
    let record = Record {
        population: config.population,
        cell_size: config.cell_size,
        duration: config.duration,
        seed: config.seed,
        host_parallelism,
        confidence: CONFIDENCE,
        eids: per_eid.len(),
        median_list_len: median(&mut per_eid.iter().map(|p| p.list_len).collect::<Vec<_>>()),
        median_exact_ns: median(&mut per_eid.iter().map(|p| p.exact_ns).collect::<Vec<_>>()),
        median_anytime_ns: median(&mut per_eid.iter().map(|p| p.anytime_ns).collect::<Vec<_>>()),
        median_speedup: 0.0,
        converged_fraction: converged.len() as f64 / per_eid.len() as f64,
        // 1.0 by construction: the loop above hard-asserts agreement
        // for every converged EID before the record is built.
        accuracy_at_convergence: 1.0,
        scored_fraction: per_eid.iter().map(|p| p.scenarios_scored).sum::<usize>() as f64
            / per_eid.iter().map(|p| p.list_len).sum::<usize>() as f64,
        per_eid,
        note: "EDP-style full recorded lists on a shared warm gallery cache; \
               best-of-5 per EID; accuracy_at_convergence is asserted to be \
               1.0, not just reported",
    };
    let record = Record {
        median_speedup: record.median_exact_ns as f64 / record.median_anytime_ns as f64,
        ..record
    };

    println!(
        "{} EIDs, median list {} scenarios: exact {} ns, anytime({}) {} ns -> {:.2}x",
        record.eids,
        record.median_list_len,
        record.median_exact_ns,
        record.confidence,
        record.median_anytime_ns,
        record.median_speedup
    );
    println!(
        "converged {:.0}% of EIDs, settled {:.0}% of scenarios, accuracy at convergence {:.0}%",
        record.converged_fraction * 100.0,
        record.scored_fraction * 100.0,
        record.accuracy_at_convergence * 100.0
    );
    assert!(
        record.median_speedup >= 2.0,
        "anytime must halve the median latency (got {:.2}x)",
        record.median_speedup
    );

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(dir.join("BENCH_anytime.json"), json).expect("write BENCH_anytime.json");
}
