//! A global-free metrics registry: atomic counters, gauges and
//! log-bucketed latency histograms, snapshot-exportable as JSON or
//! Prometheus text exposition.
//!
//! Instrumentation sites resolve `Arc` handles once (outside hot loops)
//! and then touch nothing but a relaxed atomic per update. The registry
//! itself is only locked on handle resolution and on export.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets, including the final `+Inf` overflow
/// bucket. Finite upper bounds are `2^0 .. 2^(BUCKET_COUNT-2)`, which
/// for nanosecond samples spans one nanosecond to ~4.5 minutes.
pub const BUCKET_COUNT: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (value stored as f64 bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with power-of-two bucket upper bounds (`le = 2^i`) and a
/// trailing `+Inf` overflow bucket. Samples are `u64` (by convention,
/// nanoseconds for latencies).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a sample lands in: the smallest `i` with `v <= 2^i`,
/// clamped to the overflow bucket.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let ceil_log2 = (u64::BITS - (v - 1).leading_zeros()) as usize;
        ceil_log2.min(BUCKET_COUNT - 1)
    }
}

/// The inclusive upper bound of bucket `i`, or `None` for `+Inf`.
#[must_use]
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i + 1 < BUCKET_COUNT {
        Some(1u64 << i)
    } else {
        None
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The upper bound of the first bucket whose cumulative count
    /// reaches quantile `q` (clamped to `[0, 1]`). Returns `None` when
    /// empty or when the quantile lands in the `+Inf` bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// A consistent point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (not cumulative), `BUCKET_COUNT` long.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_bound(i);
            }
        }
        None
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Default number of samples a [`Reservoir`] retains.
pub const RESERVOIR_CAPACITY: usize = 4096;

/// `splitmix64` — a tiny, high-quality deterministic bit mixer. Used
/// for reservoir replacement draws so quantiles are reproducible from
/// the insertion sequence alone (no wall clock, no RNG state).
#[must_use]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bounded uniform sample of a `u64` stream (Vitter's Algorithm R
/// with a deterministic `splitmix64` draw keyed by the insertion
/// index), supporting *exact* quantiles over the retained sample —
/// unlike [`Histogram`], whose log₂ buckets only bound a quantile to a
/// power-of-two interval.
///
/// Until `capacity` samples have been seen the reservoir holds the
/// entire stream and its quantiles are exact over all observations.
#[derive(Debug)]
pub struct Reservoir {
    samples: Mutex<Vec<u64>>,
    seen: AtomicU64,
    capacity: usize,
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::with_capacity(RESERVOIR_CAPACITY)
    }
}

impl Reservoir {
    /// A reservoir retaining at most `capacity` samples.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Reservoir {
            samples: Mutex::new(Vec::new()),
            seen: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        let mut samples = self.samples.lock();
        if samples.len() < self.capacity {
            samples.push(v);
        } else {
            let j = splitmix64(n) % (n + 1);
            if (j as usize) < self.capacity {
                samples[j as usize] = v;
            }
        }
    }

    /// Total samples ever offered (retained or not).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// The exact `q`-quantile (clamped to `[0, 1]`) of the retained
    /// sample, or `None` when empty. `q = 0.5` is the median; the value
    /// returned is always one of the retained samples (lower
    /// interpolation).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let samples = self.samples.lock();
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        drop(samples);
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        Some(sorted[rank.min(sorted.len()) - 1])
    }
}

/// A plain-data copy of every metric in a registry, in name order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → bucket snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The registry: an owned (non-global) name → metric map. Handle
/// resolution takes a short lock; updates through the returned `Arc`s
/// are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn resolve<M: Default>(map: &RwLock<BTreeMap<String, Arc<M>>>, name: &str) -> Arc<M> {
    if let Some(m) = map.read().get(name) {
        return Arc::clone(m);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// The current value of a counter, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.read().get(name).map(|c| c.get())
    }

    /// The current value of a gauge, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.read().get(name).map(|g| g.get())
    }

    /// A point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// The snapshot as a JSON value (`{"counters": .., "gauges": ..,
    /// "histograms": ..}`).
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!(self.snapshot())
    }

    /// The snapshot in Prometheus text exposition format.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        crate::prometheus::render(&self.snapshot())
    }
}
