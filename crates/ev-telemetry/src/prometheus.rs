//! Prometheus text exposition: a renderer for
//! [`MetricsSnapshot`] and a strict line-format
//! parser that round-trips the renderer's output (used by tests and by
//! the `evmatch check-metrics` CI gate).

use crate::metrics::{bucket_bound, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a snapshot in the text exposition format: one `# TYPE`
/// comment per family, then its samples. Histograms emit cumulative
/// `_bucket{le="..."}` samples plus `_sum` and `_count`.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", format_float(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, n) in hist.buckets.iter().enumerate() {
            cumulative += n;
            let le = bucket_bound(i).map_or_else(|| "+Inf".to_string(), |b| b.to_string());
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

fn format_float(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        // Integral gauges render without a fraction, like Prometheus.
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One metric family: its declared type and its samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Family {
    /// Declared type (`counter`, `gauge`, `histogram`).
    pub kind: String,
    /// Samples in source order.
    pub samples: Vec<Sample>,
}

/// A parsed exposition document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exposition {
    /// Family name → declared type and samples.
    pub families: BTreeMap<String, Family>,
}

impl Exposition {
    /// The value of the unlabelled sample named exactly `name`, looked
    /// up across all families (counters and gauges).
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.families.values().find_map(|f| {
            f.samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .map(|s| s.value)
        })
    }

    /// The declared type of family `name`, if present.
    #[must_use]
    pub fn kind(&self, name: &str) -> Option<&str> {
        self.families.get(name).map(|f| f.kind.as_str())
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_name(line: &str, lineno: usize) -> Result<(String, &str), String> {
    let end = line
        .char_indices()
        .find(|&(i, c)| {
            if i == 0 {
                !is_name_start(c)
            } else {
                !is_name_char(c)
            }
        })
        .map_or(line.len(), |(i, _)| i);
    if end == 0 {
        return Err(format!("line {lineno}: expected metric name"));
    }
    Ok((line[..end].to_string(), &line[end..]))
}

type Labels = Vec<(String, String)>;

fn parse_labels(rest: &str, lineno: usize) -> Result<(Labels, &str), String> {
    let Some(body) = rest.strip_prefix('{') else {
        return Ok((Vec::new(), rest));
    };
    let close = body
        .find('}')
        .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
    let mut labels = Vec::new();
    let inner = &body[..close];
    if !inner.is_empty() {
        for pair in inner.split(',') {
            let (key, raw) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: label without `=`"))?;
            let raw = raw
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: unquoted label value"))?;
            if key.is_empty()
                || !key.chars().enumerate().all(|(i, c)| {
                    if i == 0 {
                        is_name_start(c)
                    } else {
                        is_name_char(c)
                    }
                })
            {
                return Err(format!("line {lineno}: bad label name {key:?}"));
            }
            labels.push((key.to_string(), raw.to_string()));
        }
    }
    Ok((labels, &body[close + 1..]))
}

fn parse_value(rest: &str, lineno: usize) -> Result<f64, String> {
    let rest = rest.trim();
    if rest.is_empty() {
        return Err(format!("line {lineno}: missing sample value"));
    }
    match rest {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("line {lineno}: bad sample value {other:?}: {e}")),
    }
}

/// The family a sample belongs to: its name with any histogram suffix
/// stripped.
fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = sample_name.strip_suffix(suffix) {
            return stem;
        }
    }
    sample_name
}

/// Strictly parses a text exposition document.
///
/// Every sample line must be `name[{labels}] value`; every sample must
/// belong to a family declared by a preceding `# TYPE` line (histogram
/// suffixes `_bucket`/`_sum`/`_count` resolve to their stem family
/// when the stem was declared a histogram).
///
/// # Errors
///
/// Returns a message naming the offending line on any format
/// violation.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if parts.next().is_some() {
                    return Err(format!("line {lineno}: trailing tokens after TYPE"));
                }
                let prior = exposition.families.insert(
                    name.to_string(),
                    Family {
                        kind: kind.to_string(),
                        samples: Vec::new(),
                    },
                );
                if prior.is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
            }
            // Other comments (# HELP, plain #) are permitted and skipped.
            continue;
        }
        let (name, rest) = parse_name(line, lineno)?;
        let (labels, rest) = parse_labels(rest, lineno)?;
        if !rest.starts_with(' ') && !rest.starts_with('\t') {
            return Err(format!(
                "line {lineno}: expected whitespace before sample value"
            ));
        }
        let value = parse_value(rest, lineno)?;
        let stem = family_of(&name);
        let family_name = if exposition
            .families
            .get(stem)
            .is_some_and(|f| f.kind == "histogram")
        {
            stem.to_string()
        } else {
            name.clone()
        };
        let family = exposition
            .families
            .get_mut(&family_name)
            .ok_or_else(|| format!("line {lineno}: sample {name} has no preceding TYPE"))?;
        family.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(exposition)
}
