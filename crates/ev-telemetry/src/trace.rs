//! Hierarchical tracing spans recorded into a bounded ring buffer,
//! exportable in the Chrome trace-event format (`chrome://tracing` /
//! Perfetto's `trace.json`).
//!
//! Events are appended under a single short mutex hold; when the ring
//! is full the oldest events are evicted and counted in `dropped`, so a
//! long run degrades to "most recent window" rather than unbounded
//! memory.

use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 65_536;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small stable per-thread id for the `tid` trace field (thread 1 is
    /// the first thread that ever records an event).
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The id this thread's events carry in the `tid` field.
#[must_use]
pub fn current_tid() -> u64 {
    TRACE_TID.with(|t| *t)
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the trace slice).
    pub name: String,
    /// Category — the span taxonomy level (`pipeline`, `stage`,
    /// `round`, `task`, `event`).
    pub cat: &'static str,
    /// Chrome phase: `'X'` (complete span) or `'i'` (instant).
    pub ph: char,
    /// Start offset from the tracer epoch, microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recording thread id (see [`current_tid`]).
    pub tid: u64,
    /// Extra key/value payload rendered under `args`.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// The event as one Chrome trace-event object.
    #[must_use]
    pub fn to_value(&self, pid: u64) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.to_string())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts".to_string(), Value::Int(i128::from(self.ts_us))),
            ("pid".to_string(), Value::Int(i128::from(pid))),
            ("tid".to_string(), Value::Int(i128::from(self.tid))),
        ];
        if self.ph == 'X' {
            fields.push(("dur".to_string(), Value::Int(i128::from(self.dur_us))));
        }
        if self.ph == 'i' {
            // Instant scope: thread-local, the narrowest marker.
            fields.push(("s".to_string(), Value::Str("t".to_string())));
        }
        if !self.args.is_empty() {
            fields.push(("args".to_string(), Value::Obj(self.args.clone())));
        }
        Value::Obj(fields)
    }
}

/// The span/event recorder: a bounded ring of [`TraceEvent`]s sharing
/// one epoch, so exported timestamps are directly comparable.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// The tracer's epoch — span starts should be taken with
    /// `Instant::now()` and handed back to [`Tracer::complete`].
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds elapsed since the epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.events.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Records a complete (`'X'`) span that started at `start`.
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        args: Vec<(String, Value)>,
    ) {
        let ts_us = u64::try_from(start.saturating_duration_since(self.epoch).as_micros())
            .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts_us,
            dur_us,
            tid: current_tid(),
            args,
        });
    }

    /// Records an instant (`'i'`) event at the current time.
    pub fn instant(&self, name: impl Into<String>, cat: &'static str, args: Vec<(String, Value)>) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'i',
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            args,
        });
    }

    /// Events recorded so far, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of events recorded (retained in the ring).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The whole ring as a Chrome trace document
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing`.
    #[must_use]
    pub fn chrome_trace(&self) -> Value {
        let events: Vec<Value> = self.events.lock().iter().map(|e| e.to_value(1)).collect();
        Value::Obj(vec![
            ("traceEvents".to_string(), Value::Arr(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ])
    }

    /// [`Tracer::chrome_trace`] rendered as pretty JSON text.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace().to_json_pretty()
    }
}
