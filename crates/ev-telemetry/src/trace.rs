//! Hierarchical tracing spans recorded into a bounded ring buffer,
//! exportable in the Chrome trace-event format (`chrome://tracing` /
//! Perfetto's `trace.json`).
//!
//! Events are appended under a single short mutex hold; when the ring
//! is full the oldest events are evicted and counted in `dropped`, so a
//! long run degrades to "most recent window" rather than unbounded
//! memory.

use crate::metrics::Counter;
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 65_536;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique span id (never 0). Ids are cheap —
/// one relaxed `fetch_add` — so callers may allocate them even when
/// tracing is off (the flight recorder attributes entries by these ids
/// regardless of the telemetry level).
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Causal trace context: the identity of one span plus the ids linking
/// it to its trace and parent. Propagated by value from job submission
/// through `ev-mapreduce` rounds into every `ev-exec` task closure, so
/// distributed work can always be attributed to the job → round → task
/// → attempt chain that caused it.
///
/// A zeroed context (`TraceCtx::default()`) means "no causal parent";
/// spans recorded under it start a fresh trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace the span belongs to (the root span's id). 0 = unset.
    pub trace_id: u64,
    /// This context's own span id. 0 = unset.
    pub span_id: u64,
    /// The causal parent's span id. 0 = root.
    pub parent_span: u64,
}

impl TraceCtx {
    /// A fresh root context: new trace, no parent.
    #[must_use]
    pub fn root() -> TraceCtx {
        let id = next_span_id();
        TraceCtx {
            trace_id: id,
            span_id: id,
            parent_span: 0,
        }
    }

    /// A child context: same trace, parented to this context's span.
    /// On an unset (`default`) context this is equivalent to
    /// [`TraceCtx::root`], so plumbing code never has to special-case
    /// "no caller context".
    #[must_use]
    pub fn child(&self) -> TraceCtx {
        if self.is_unset() {
            return TraceCtx::root();
        }
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_span_id(),
            parent_span: self.span_id,
        }
    }

    /// Whether this context carries no identity at all.
    #[must_use]
    pub fn is_unset(&self) -> bool {
        self.span_id == 0
    }
}

thread_local! {
    /// Small stable per-thread id for the `tid` trace field (thread 1 is
    /// the first thread that ever records an event).
    static TRACE_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The id this thread's events carry in the `tid` field.
#[must_use]
pub fn current_tid() -> u64 {
    TRACE_TID.with(|t| *t)
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the trace slice).
    pub name: String,
    /// Category — the span taxonomy level (`pipeline`, `stage`,
    /// `round`, `task`, `event`).
    pub cat: &'static str,
    /// Chrome phase: `'X'` (complete span) or `'i'` (instant).
    pub ph: char,
    /// Start offset from the tracer epoch, microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recording thread id (see [`current_tid`]).
    pub tid: u64,
    /// Causal identity (all 0 when the event was recorded without a
    /// [`TraceCtx`]). Carried into the Chrome export inside `args` so
    /// the job→round→task→attempt tree can be reconstructed even after
    /// serialization.
    pub ctx: TraceCtx,
    /// Extra key/value payload rendered under `args`.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// The event as one Chrome trace-event object.
    #[must_use]
    pub fn to_value(&self, pid: u64) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.to_string())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts".to_string(), Value::Int(i128::from(self.ts_us))),
            ("pid".to_string(), Value::Int(i128::from(pid))),
            ("tid".to_string(), Value::Int(i128::from(self.tid))),
        ];
        if self.ph == 'X' {
            fields.push(("dur".to_string(), Value::Int(i128::from(self.dur_us))));
        }
        if self.ph == 'i' {
            // Instant scope: thread-local, the narrowest marker.
            fields.push(("s".to_string(), Value::Str("t".to_string())));
        }
        let mut args = Vec::new();
        if !self.ctx.is_unset() {
            args.push((
                "trace_id".to_string(),
                Value::Int(i128::from(self.ctx.trace_id)),
            ));
            args.push((
                "span_id".to_string(),
                Value::Int(i128::from(self.ctx.span_id)),
            ));
            args.push((
                "parent_span_id".to_string(),
                Value::Int(i128::from(self.ctx.parent_span)),
            ));
        }
        args.extend(self.args.iter().cloned());
        if !args.is_empty() {
            fields.push(("args".to_string(), Value::Obj(args)));
        }
        Value::Obj(fields)
    }

    /// The event as a flat JSON object for the `/tracez` live endpoint:
    /// identity fields are explicit top-level keys rather than being
    /// folded into Chrome `args`.
    #[must_use]
    pub fn to_tracez_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.to_string())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts_us".to_string(), Value::Int(i128::from(self.ts_us))),
            ("dur_us".to_string(), Value::Int(i128::from(self.dur_us))),
            ("tid".to_string(), Value::Int(i128::from(self.tid))),
            (
                "trace_id".to_string(),
                Value::Int(i128::from(self.ctx.trace_id)),
            ),
            (
                "span_id".to_string(),
                Value::Int(i128::from(self.ctx.span_id)),
            ),
            (
                "parent_span_id".to_string(),
                Value::Int(i128::from(self.ctx.parent_span)),
            ),
            ("args".to_string(), Value::Obj(self.args.clone())),
        ])
    }
}

/// The span/event recorder: a bounded ring of [`TraceEvent`]s sharing
/// one epoch, so exported timestamps are directly comparable.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    /// Registry counter mirroring `dropped` (`evm_trace_dropped_total`),
    /// attached once by `Telemetry::new` — the tracer itself stays
    /// registry-agnostic.
    drop_counter: OnceLock<Arc<Counter>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            drop_counter: OnceLock::new(),
        }
    }

    /// Attaches the registry counter incremented on every ring
    /// eviction. Only the first call has an effect.
    pub fn attach_drop_counter(&self, counter: Arc<Counter>) {
        let _ = self.drop_counter.set(counter);
    }

    /// The tracer's epoch — span starts should be taken with
    /// `Instant::now()` and handed back to [`Tracer::complete`].
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds elapsed since the epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.events.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(counter) = self.drop_counter.get() {
                counter.inc();
            }
        }
        ring.push_back(event);
    }

    /// Records a complete (`'X'`) span that started at `start`.
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        args: Vec<(String, Value)>,
    ) {
        self.complete_ctx(name, cat, start, TraceCtx::default(), args);
    }

    /// Records a complete (`'X'`) span carrying causal identity.
    pub fn complete_ctx(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        ctx: TraceCtx,
        args: Vec<(String, Value)>,
    ) {
        let ts_us = u64::try_from(start.saturating_duration_since(self.epoch).as_micros())
            .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts_us,
            dur_us,
            tid: current_tid(),
            ctx,
            args,
        });
    }

    /// Records an instant (`'i'`) event at the current time.
    pub fn instant(&self, name: impl Into<String>, cat: &'static str, args: Vec<(String, Value)>) {
        self.instant_ctx(name, cat, TraceCtx::default(), args);
    }

    /// Records an instant (`'i'`) event carrying causal identity — the
    /// context names the span the instant is an edge of (e.g. a
    /// `retry_scheduled` instant carries the stage span's context).
    pub fn instant_ctx(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        ctx: TraceCtx,
        args: Vec<(String, Value)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'i',
            ts_us: self.now_us(),
            dur_us: 0,
            tid: current_tid(),
            ctx,
            args,
        });
    }

    /// Events recorded so far, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// The most recent `limit` events, oldest first.
    #[must_use]
    pub fn recent(&self, limit: usize) -> Vec<TraceEvent> {
        let ring = self.events.lock();
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Number of events recorded (retained in the ring).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The whole ring as a Chrome trace document
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing`.
    #[must_use]
    pub fn chrome_trace(&self) -> Value {
        let events: Vec<Value> = self.events.lock().iter().map(|e| e.to_value(1)).collect();
        Value::Obj(vec![
            ("traceEvents".to_string(), Value::Arr(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ])
    }

    /// [`Tracer::chrome_trace`] rendered as pretty JSON text.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace().to_json_pretty()
    }
}
