//! Crash flight recorder: a fixed-size ring of recent spans, instants
//! and counter deltas that stays on even when tracing is off, so a
//! worker panic, a `JobError` exhaustion, or disk corruption can be
//! dumped as a replayable timeline instead of a one-line error.
//!
//! Slot claims are lock-free (`fetch_add` on a monotone sequence
//! number); each slot is guarded by its own micro-mutex held only for
//! the entry swap, so writers never contend unless they collide on the
//! same slot after a full ring wrap.

use crate::trace::{current_tid, TraceCtx};
use parking_lot::Mutex;
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default number of entries the ring retains.
pub const FLIGHT_CAPACITY: usize = 2048;

/// The kind of a flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A completed span (`dur_us` is meaningful).
    Span,
    /// A point event.
    Instant,
    /// A named counter delta (`delta` is meaningful).
    Counter,
}

impl FlightKind {
    /// Stable lowercase label used in dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Span => "span",
            FlightKind::Instant => "instant",
            FlightKind::Counter => "counter",
        }
    }
}

/// One recorded flight entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Ring sequence number (monotone; survives wraps, so a dump shows
    /// how many older entries were overwritten).
    pub seq: u64,
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants/counters).
    pub dur_us: u64,
    /// Entry kind.
    pub kind: FlightKind,
    /// Entry name (span/instant name, or counter name).
    pub name: String,
    /// Recording thread id (shared with the tracer's `tid` space).
    pub tid: u64,
    /// Causal identity — links the entry into the job→round→task tree.
    pub ctx: TraceCtx,
    /// Counter delta (0 unless `kind == Counter`).
    pub delta: u64,
    /// Extra structured payload.
    pub args: Vec<(String, Value)>,
}

impl FlightEntry {
    /// The entry as a JSON object for `flight-*.json` dumps.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("seq".to_string(), Value::Int(i128::from(self.seq))),
            ("ts_us".to_string(), Value::Int(i128::from(self.ts_us))),
            ("dur_us".to_string(), Value::Int(i128::from(self.dur_us))),
            (
                "kind".to_string(),
                Value::Str(self.kind.label().to_string()),
            ),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("tid".to_string(), Value::Int(i128::from(self.tid))),
            (
                "trace_id".to_string(),
                Value::Int(i128::from(self.ctx.trace_id)),
            ),
            (
                "span_id".to_string(),
                Value::Int(i128::from(self.ctx.span_id)),
            ),
            (
                "parent_span_id".to_string(),
                Value::Int(i128::from(self.ctx.parent_span)),
            ),
            ("delta".to_string(), Value::Int(i128::from(self.delta))),
            ("args".to_string(), Value::Obj(self.args.clone())),
        ])
    }
}

/// The recorder: `capacity` slots overwritten round-robin. Recording
/// while disabled is a single relaxed load.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    enabled: AtomicBool,
    next_seq: AtomicU64,
    slots: Vec<Mutex<Option<FlightEntry>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A disabled recorder with `capacity` slots (see
    /// [`FlightRecorder::set_enabled`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            enabled: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Turns recording on or off. Off is the construction default so
    /// library embedders opt in; the CLI enables it for every run.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether entries are currently being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The recorder's epoch — span starts should be taken with
    /// `Instant::now()` and handed back to [`FlightRecorder::span`].
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Total entries ever recorded (retained or overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    fn push(&self, mut entry: FlightEntry) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        entry.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock() = Some(entry);
    }

    /// Records a completed span that started at `start`.
    pub fn span(
        &self,
        name: impl Into<String>,
        ctx: TraceCtx,
        start: Instant,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled() {
            return;
        }
        let ts_us = u64::try_from(start.saturating_duration_since(self.epoch).as_micros())
            .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.push(FlightEntry {
            seq: 0,
            ts_us,
            dur_us,
            kind: FlightKind::Span,
            name: name.into(),
            tid: current_tid(),
            ctx,
            delta: 0,
            args,
        });
    }

    /// Records a point event at the current time.
    pub fn instant(&self, name: impl Into<String>, ctx: TraceCtx, args: Vec<(String, Value)>) {
        if !self.enabled() {
            return;
        }
        let ts_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.push(FlightEntry {
            seq: 0,
            ts_us,
            dur_us: 0,
            kind: FlightKind::Instant,
            name: name.into(),
            tid: current_tid(),
            ctx,
            delta: 0,
            args,
        });
    }

    /// Records a named counter delta attributed to `ctx`.
    pub fn counter_delta(&self, name: impl Into<String>, ctx: TraceCtx, delta: u64) {
        if !self.enabled() || delta == 0 {
            return;
        }
        let ts_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.push(FlightEntry {
            seq: 0,
            ts_us,
            dur_us: 0,
            kind: FlightKind::Counter,
            name: name.into(),
            tid: current_tid(),
            ctx,
            delta,
            args: Vec::new(),
        });
    }

    /// The retained entries in sequence order (oldest first). Taken
    /// slot by slot; entries recorded concurrently with the snapshot
    /// may or may not be included.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// The snapshot as the body of a `flight-*.json` dump.
    #[must_use]
    pub fn to_value(&self, reason: &str) -> Value {
        let entries = self.snapshot();
        let retained = entries.len() as u64;
        let recorded = self.recorded();
        Value::Obj(vec![
            ("reason".to_string(), Value::Str(reason.to_string())),
            ("recorded".to_string(), Value::Int(i128::from(recorded))),
            ("retained".to_string(), Value::Int(i128::from(retained))),
            (
                "overwritten".to_string(),
                Value::Int(i128::from(recorded.saturating_sub(retained))),
            ),
            (
                "entries".to_string(),
                Value::Arr(entries.iter().map(FlightEntry::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::with_capacity(8);
        rec.instant("x", TraceCtx::default(), Vec::new());
        assert_eq!(rec.recorded(), 0);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_sequence() {
        let rec = FlightRecorder::with_capacity(4);
        rec.set_enabled(true);
        for i in 0..10u64 {
            rec.counter_delta(format!("c{i}"), TraceCtx::default(), i + 1);
        }
        let entries = rec.snapshot();
        assert_eq!(entries.len(), 4);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn span_entries_carry_ctx_and_duration() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_enabled(true);
        let ctx = TraceCtx::root().child();
        let start = Instant::now();
        rec.span("attempt", ctx, start, vec![("task".into(), Value::Int(3))]);
        let entries = rec.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, FlightKind::Span);
        assert_eq!(entries[0].ctx, ctx);
        assert_eq!(entries[0].args[0].0, "task");
    }

    #[test]
    fn zero_delta_counters_are_skipped() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_enabled(true);
        rec.counter_delta("c", TraceCtx::default(), 0);
        assert_eq!(rec.recorded(), 0);
    }
}
