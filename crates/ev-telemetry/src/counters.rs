//! The shared index/cache counter triple.
//!
//! Both the sequential pipeline (`ev_matching::StageTimings`) and the
//! distributed engine (`ev_mapreduce::JobMetrics`) report how much work
//! the index/cache layer absorbed. The type lives here — below both
//! crates — so there is exactly one definition, one merge, and one
//! export path into the registry.

use crate::metrics::MetricsRegistry;
use crate::names;
use serde::{Deserialize, Serialize};

/// Usage counters of the index/cache layer across one pipeline run.
///
/// The E stage reads the scenario store through its inverted index; the
/// V stage reads footage through a gallery cache. These counters say
/// how much work those layers absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IndexCounters {
    /// Posting lists fetched from the inverted scenario index.
    pub postings_probed: u64,
    /// V-Scenario galleries served from cache without re-extraction.
    pub cache_hits: u64,
    /// Full-store scans avoided by index-backed lookups.
    pub scans_avoided: u64,
}

impl IndexCounters {
    /// Counter-wise sum with `other`.
    #[must_use]
    pub fn merged(&self, other: &IndexCounters) -> IndexCounters {
        IndexCounters {
            postings_probed: self.postings_probed + other.postings_probed,
            cache_hits: self.cache_hits + other.cache_hits,
            scans_avoided: self.scans_avoided + other.scans_avoided,
        }
    }

    /// Folds `other` into `self` counter-wise.
    pub fn absorb(&mut self, other: &IndexCounters) {
        *self = self.merged(other);
    }

    /// Adds the triple to the canonical `evm_index_*` counters.
    pub fn record_to(&self, registry: &MetricsRegistry) {
        registry
            .counter(names::INDEX_POSTINGS_PROBED)
            .add(self.postings_probed);
        registry
            .counter(names::INDEX_CACHE_HITS)
            .add(self.cache_hits);
        registry
            .counter(names::INDEX_SCANS_AVOIDED)
            .add(self.scans_avoided);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    #[test]
    fn merge_and_absorb_agree() {
        let a = IndexCounters {
            postings_probed: 1,
            cache_hits: 2,
            scans_avoided: 3,
        };
        let b = IndexCounters {
            postings_probed: 10,
            cache_hits: 20,
            scans_avoided: 30,
        };
        let mut c = a;
        c.absorb(&b);
        assert_eq!(c, a.merged(&b));
        assert_eq!(c.postings_probed, 11);
        assert_eq!(c.cache_hits, 22);
        assert_eq!(c.scans_avoided, 33);
    }

    /// Field-enumeration guard: `absorb` must sum *every* serialized
    /// field, so a newly added counter cannot be silently dropped.
    #[test]
    fn absorb_covers_every_field() {
        let mut distinct = IndexCounters::default();
        let value = serde_json::to_value(&distinct);
        let fields = value.as_obj().expect("struct serializes as an object");
        // Rebuild with each field set to a distinct non-zero value.
        let rebuilt = Value::Obj(
            fields
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), Value::Int(i as i128 + 1)))
                .collect(),
        );
        distinct = serde_json::from_str(&rebuilt.to_json()).expect("round-trip");
        let mut doubled = distinct;
        doubled.absorb(&distinct);
        let before = serde_json::to_value(&distinct);
        let after = serde_json::to_value(&doubled);
        for ((k, a), (_, b)) in before.as_obj().unwrap().iter().zip(after.as_obj().unwrap()) {
            let (Value::Int(a), Value::Int(b)) = (a, b) else {
                panic!("field {k} is not an integer counter");
            };
            assert_eq!(*b, 2 * *a, "absorb dropped field {k}");
        }
    }

    #[test]
    fn record_to_exports_every_field() {
        let counters = IndexCounters {
            postings_probed: 5,
            cache_hits: 6,
            scans_avoided: 7,
        };
        let registry = MetricsRegistry::new();
        counters.record_to(&registry);
        let snapshot = registry.snapshot();
        let total: u64 = snapshot.counters.values().sum();
        assert_eq!(total, 5 + 6 + 7);
        // One exported counter per serialized field.
        let field_count = serde_json::to_value(&counters).as_obj().unwrap().len();
        assert_eq!(snapshot.counters.len(), field_count);
    }
}
