//! Canonical metric names (`evm_` prefix). Every crate on the hot path
//! registers through these constants so exported profiles from
//! different runs and runners are directly comparable.

/// Scenarios examined by the set splitter across all rounds.
pub const SETSPLIT_SCENARIOS_EXAMINED: &str = "evm_setsplit_scenarios_examined";
/// Scenarios recorded (selected as effective) by the set splitter.
pub const SETSPLIT_RECORDED: &str = "evm_setsplit_recorded_total";
/// Greedy gain-cache entries invalidated by block splits.
pub const SETSPLIT_GAIN_CACHE_INVALIDATIONS: &str = "evm_setsplit_gain_cache_invalidations";
/// Splitting rounds executed (greedy candidate selections).
pub const SETSPLIT_ROUNDS: &str = "evm_setsplit_rounds";
/// Partition blocks after the final split round.
pub const SETSPLIT_BLOCKS: &str = "evm_setsplit_blocks";
/// Histogram of per-round winning splitter gains.
pub const SETSPLIT_SPLITTER_GAIN: &str = "evm_setsplit_splitter_gain";

/// V-Scenario galleries served from the gallery cache.
pub const VFILTER_GALLERY_HITS: &str = "evm_vfilter_gallery_hits";
/// V-Scenario galleries extracted because they were not cached.
pub const VFILTER_GALLERY_MISSES: &str = "evm_vfilter_gallery_misses";
/// hits / (hits + misses) across the run.
pub const VFILTER_GALLERY_HIT_RATIO: &str = "evm_vfilter_gallery_hit_ratio";
/// Candidate VIDs scored against scenario lists.
pub const VFILTER_CANDIDATES_SCORED: &str = "evm_vfilter_candidates_scored";
/// Histogram of per-scenario scoring latency, nanoseconds.
pub const VFILTER_SCORING_NS: &str = "evm_vfilter_scoring_ns";

/// SoA feature blocks packed for gallery-cache entries (kernel modes
/// `block`/`quantized`; one per scenario, memoized like the gallery).
pub const KERNEL_BLOCKS_BUILT: &str = "evm_kernel_blocks_built";
/// Galleries the block builder rejected because their rows disagreed on
/// dimensionality (the whole gallery scores membership 0, exactly like
/// the scalar path's per-pair error).
pub const KERNEL_GALLERIES_REJECTED: &str = "evm_kernel_galleries_rejected";
/// Gallery rows the quantized prefilter pruned without exact rescoring
/// (their similarity upper bound provably lost to the best lower bound).
pub const KERNEL_PREFILTER_ROWS_PRUNED: &str = "evm_kernel_prefilter_rows_pruned";

/// V-Scenarios whose exact scoring the anytime matcher skipped entirely
/// (their votes settled, or became irrelevant, on cheap bounds alone).
pub const ANYTIME_SCENARIOS_SKIPPED: &str = "evm_anytime_scenarios_skipped";
/// Candidate VIDs the anytime matcher never scored exactly (similarity
/// bounds proved they could not win any per-scenario argmax).
pub const ANYTIME_CANDIDATES_PRUNED: &str = "evm_anytime_candidates_pruned";
/// Histogram of refinement rounds the anytime matcher ran per EID
/// before its stop rule fired (0 = settled on cheap bounds alone).
pub const ANYTIME_CONVERGENCE_ROUNDS: &str = "evm_anytime_convergence_rounds";

/// Map tasks executed (first attempts).
pub const MAPREDUCE_MAP_TASKS: &str = "evm_mapreduce_map_tasks";
/// Reduce tasks executed.
pub const MAPREDUCE_REDUCE_TASKS: &str = "evm_mapreduce_reduce_tasks";
/// Map-task attempts launched (first tries + retries + backups).
pub const MAPREDUCE_MAP_ATTEMPTS: &str = "evm_mapreduce_map_attempts";
/// Attempts that failed and were retried.
pub const MAPREDUCE_FAILED_ATTEMPTS: &str = "evm_mapreduce_failed_attempts";
/// Speculative backup attempts launched for stragglers.
pub const MAPREDUCE_SPECULATIVE_ATTEMPTS: &str = "evm_mapreduce_speculative_attempts";
/// Key/value pairs shuffled between map and reduce.
pub const MAPREDUCE_SHUFFLED_PAIRS: &str = "evm_mapreduce_shuffled_pairs";
/// Pairs before the map-side combiner ran.
pub const MAPREDUCE_PRE_COMBINE_PAIRS: &str = "evm_mapreduce_pre_combine_pairs";
/// Distinct keys seen by the reduce stage.
pub const MAPREDUCE_DISTINCT_KEYS: &str = "evm_mapreduce_distinct_keys";
/// Successful steal operations on the work-stealing backend.
pub const MAPREDUCE_STEAL_OPS: &str = "evm_mapreduce_steal_ops";
/// Tasks migrated between worker deques by steals.
pub const MAPREDUCE_TASKS_STOLEN: &str = "evm_mapreduce_tasks_stolen";
/// Per-stage worker-deque depth high-water marks, summed over stages.
pub const MAPREDUCE_QUEUE_DEPTH_PEAKS: &str = "evm_mapreduce_queue_depth_peaks";
/// Virtual makespan units accumulated by the simulated backend.
pub const MAPREDUCE_VIRTUAL_MAKESPAN_UNITS: &str = "evm_mapreduce_virtual_makespan_units";
/// Map-stage wall time, seconds.
pub const MAPREDUCE_MAP_TIME_SECONDS: &str = "evm_mapreduce_map_time_seconds";
/// Shuffle wall time, seconds.
pub const MAPREDUCE_SHUFFLE_TIME_SECONDS: &str = "evm_mapreduce_shuffle_time_seconds";
/// Reduce-stage wall time, seconds.
pub const MAPREDUCE_REDUCE_TIME_SECONDS: &str = "evm_mapreduce_reduce_time_seconds";
/// End-to-end job wall time, seconds.
pub const MAPREDUCE_TOTAL_TIME_SECONDS: &str = "evm_mapreduce_total_time_seconds";

/// Task attempts executed by `ev-exec` sessions (panicked ones included).
pub const EXEC_TASKS_EXECUTED: &str = "evm_exec_tasks_executed";
/// Task attempts isolated after panicking inside an `ev-exec` worker.
pub const EXEC_TASKS_PANICKED: &str = "evm_exec_tasks_panicked";
/// Successful steal operations inside `ev-exec` sessions.
pub const EXEC_STEAL_OPS: &str = "evm_exec_steal_ops";
/// Tasks moved between `ev-exec` worker deques by steals.
pub const EXEC_TASKS_STOLEN: &str = "evm_exec_tasks_stolen";
/// Worker threads of the most recent `ev-exec` session.
pub const EXEC_WORKERS: &str = "evm_exec_workers";
/// Deque-depth high-water mark of the most recent `ev-exec` session.
pub const EXEC_QUEUE_DEPTH_PEAK: &str = "evm_exec_queue_depth_peak";
/// Histogram of per-worker executed-task counts (one observation per
/// worker per session) — its spread is the load-balance picture.
pub const EXEC_WORKER_TASKS: &str = "evm_exec_worker_tasks";

/// Posting lists fetched from the inverted scenario index.
pub const INDEX_POSTINGS_PROBED: &str = "evm_index_postings_probed";
/// V-Scenario galleries served from cache without re-extraction.
pub const INDEX_CACHE_HITS: &str = "evm_index_cache_hits";
/// Full-store scans avoided by index-backed lookups.
pub const INDEX_SCANS_AVOIDED: &str = "evm_index_scans_avoided";
/// Inverted scenario index build time, nanoseconds.
pub const INDEX_BUILD_NS: &str = "evm_index_build_ns";

/// Refinement rounds executed for the run.
pub const REFINE_ROUNDS: &str = "evm_refine_rounds";
/// E-stage wall time, seconds.
pub const STAGE_E_SECONDS: &str = "evm_stage_e_seconds";
/// V-stage wall time, seconds.
pub const STAGE_V_SECONDS: &str = "evm_stage_v_seconds";

/// Distinct scenarios recorded for the run (paper Figs. 5–6 y-axis).
pub const RECORDED_SCENARIOS: &str = "evm_recorded_scenarios";
/// Theorem 4.2 lower bound `ceil(log2 n)` for the run's `n` targets.
pub const THEOREM_LOWER_BOUND: &str = "evm_theorem_lower_bound";
/// Theorem 4.4 upper bound `n − 1`.
pub const THEOREM_UPPER_BOUND: &str = "evm_theorem_upper_bound";
/// 1 when the first split round fully split the targets *with
/// Algorithm 1 (sequential) recording semantics*, else 0 — the
/// precondition under which the theorem bounds apply. Parallel
/// (Algorithm 3) runs report 0: recording whole timestamp snapshots can
/// legitimately exceed the `n - 1` bound.
pub const FULLY_SPLIT: &str = "evm_fully_split";
/// Distinct V-frames (V-Scenario galleries) extracted from footage.
pub const DISTINCT_V_FRAMES: &str = "evm_distinct_v_frames";
/// Fraction of targets matched with a strict vote majority.
pub const MAJORITY_VOTE_ACCURACY: &str = "evm_majority_vote_accuracy";
/// Distinct scenarios selected across all target lists.
pub const SELECTED_SCENARIOS: &str = "evm_selected_scenarios";

/// Trace events evicted because the tracer ring was full.
pub const TRACE_DROPPED: &str = "evm_trace_dropped_total";
/// Flight-recorder dumps written (worker panic, job-error exhaustion,
/// or disk-corruption triggers).
pub const FLIGHT_DUMPS: &str = "evm_flight_dumps_total";
/// Exact median task-attempt latency (ns) from the bounded reservoir.
pub const EXEC_TASK_LATENCY_P50_NS: &str = "evm_exec_task_latency_p50_ns";
/// Exact p90 task-attempt latency (ns) from the bounded reservoir.
pub const EXEC_TASK_LATENCY_P90_NS: &str = "evm_exec_task_latency_p90_ns";
/// Exact p99 task-attempt latency (ns) from the bounded reservoir.
pub const EXEC_TASK_LATENCY_P99_NS: &str = "evm_exec_task_latency_p99_ns";

/// Segment files committed by `ev-disk` appends.
pub const DISK_SEGMENTS_WRITTEN: &str = "evm_disk_segments_written";
/// Segment files opened and decoded during corpus loads.
pub const DISK_SEGMENTS_OPENED: &str = "evm_disk_segments_opened";
/// Segment files skipped by cell/time bounds during pruned loads.
pub const DISK_SEGMENTS_PRUNED: &str = "evm_disk_segments_pruned";
/// Scenario records decoded from segment files.
pub const DISK_RECORDS_READ: &str = "evm_disk_records_read";
/// Segment bytes read from disk during loads.
pub const DISK_BYTES_READ: &str = "evm_disk_bytes_read";
/// Torn tails truncated and orphan segments removed during recovery.
pub const DISK_RECOVERY_TRUNCATIONS: &str = "evm_disk_recovery_truncations";
/// Wall time of the last `DiskStore` open (recovery included), seconds.
pub const DISK_OPEN_SECONDS: &str = "evm_disk_open_seconds";
/// Live manifest entries after the last open or append.
pub const DISK_MANIFEST_ENTRIES: &str = "evm_disk_manifest_entries";

/// Ingest batches accepted by the streaming serve loop.
pub const SERVE_INGEST_BATCHES: &str = "evm_serve_ingest_batches_total";
/// E/V events (scenario records) accepted by the streaming serve loop.
pub const SERVE_INGEST_EVENTS: &str = "evm_serve_ingest_events_total";
/// Apply rounds: staged events spliced into the queryable snapshot.
pub const SERVE_APPLIES: &str = "evm_serve_applies_total";
/// Manifest checkpoints committed by the streaming append path.
pub const SERVE_CHECKPOINTS: &str = "evm_serve_checkpoints_total";
/// Match queries answered against a live-corpus snapshot.
pub const SERVE_QUERIES: &str = "evm_serve_queries_total";
/// Events durably staged but not yet visible to queries — the staleness
/// of the snapshot the next query will see.
pub const SERVE_STALENESS_EVENTS: &str = "evm_serve_staleness_events";
/// Snapshot epoch (generation counter) queries are answered against;
/// bumped by every apply round.
pub const SERVE_EPOCH: &str = "evm_serve_epoch";
/// Histogram of end-to-end serve query latency, nanoseconds.
pub const SERVE_QUERY_LATENCY_NS: &str = "evm_serve_query_latency_ns";

/// Task attempts submitted to a DAG scheduler session (first runs +
/// panic retries + lineage recomputes).
pub const DAG_TASKS_TOTAL: &str = "evm_dag_tasks_total";
/// DAG task attempts that panicked and were retried.
pub const DAG_TASK_RETRIES: &str = "evm_dag_task_retries_total";
/// Previously-produced DAG partitions recomputed from lineage after a
/// cache eviction.
pub const DAG_RECOMPUTED_PARTITIONS: &str = "evm_dag_recomputed_partitions_total";
/// DAG partition-cache entries dropped (natural releases after the last
/// consumer plus capacity-pressure evictions).
pub const DAG_CACHE_EVICTIONS: &str = "evm_dag_cache_evictions_total";
/// Stages in the most recent DAG submission.
pub const DAG_STAGES: &str = "evm_dag_stages";
/// High-water mark of live cached partitions in the most recent DAG run.
pub const DAG_CACHE_PEAK_PARTITIONS: &str = "evm_dag_cache_peak_partitions";

/// Scenarios walked by the incremental Algorithm-1 delta-update.
pub const INCR_SCENARIOS_ABSORBED: &str = "evm_incr_scenarios_absorbed_total";
/// Effective splitters recorded by delta-updates (vs. full re-splits).
pub const INCR_SPLITTERS_RECORDED: &str = "evm_incr_splitters_recorded_total";
/// Partition blocks created by delta-update refinements.
pub const INCR_BLOCKS_SPLIT: &str = "evm_incr_blocks_split_total";
/// Partition blocks after the latest delta-update.
pub const INCR_PARTITION_BLOCKS: &str = "evm_incr_partition_blocks";

/// Every canonical counter name.
pub const ALL_COUNTERS: &[&str] = &[
    SETSPLIT_SCENARIOS_EXAMINED,
    SETSPLIT_RECORDED,
    SETSPLIT_GAIN_CACHE_INVALIDATIONS,
    SETSPLIT_ROUNDS,
    VFILTER_GALLERY_HITS,
    VFILTER_GALLERY_MISSES,
    VFILTER_CANDIDATES_SCORED,
    KERNEL_BLOCKS_BUILT,
    KERNEL_GALLERIES_REJECTED,
    KERNEL_PREFILTER_ROWS_PRUNED,
    ANYTIME_SCENARIOS_SKIPPED,
    ANYTIME_CANDIDATES_PRUNED,
    MAPREDUCE_MAP_TASKS,
    MAPREDUCE_REDUCE_TASKS,
    MAPREDUCE_MAP_ATTEMPTS,
    MAPREDUCE_FAILED_ATTEMPTS,
    MAPREDUCE_SPECULATIVE_ATTEMPTS,
    MAPREDUCE_SHUFFLED_PAIRS,
    MAPREDUCE_PRE_COMBINE_PAIRS,
    MAPREDUCE_DISTINCT_KEYS,
    MAPREDUCE_STEAL_OPS,
    MAPREDUCE_TASKS_STOLEN,
    MAPREDUCE_QUEUE_DEPTH_PEAKS,
    MAPREDUCE_VIRTUAL_MAKESPAN_UNITS,
    EXEC_TASKS_EXECUTED,
    EXEC_TASKS_PANICKED,
    EXEC_STEAL_OPS,
    EXEC_TASKS_STOLEN,
    INDEX_POSTINGS_PROBED,
    INDEX_CACHE_HITS,
    INDEX_SCANS_AVOIDED,
    REFINE_ROUNDS,
    TRACE_DROPPED,
    FLIGHT_DUMPS,
    DISK_SEGMENTS_WRITTEN,
    DISK_SEGMENTS_OPENED,
    DISK_SEGMENTS_PRUNED,
    DISK_RECORDS_READ,
    DISK_BYTES_READ,
    DISK_RECOVERY_TRUNCATIONS,
    SERVE_INGEST_BATCHES,
    SERVE_INGEST_EVENTS,
    SERVE_APPLIES,
    SERVE_CHECKPOINTS,
    SERVE_QUERIES,
    DAG_TASKS_TOTAL,
    DAG_TASK_RETRIES,
    DAG_RECOMPUTED_PARTITIONS,
    DAG_CACHE_EVICTIONS,
    INCR_SCENARIOS_ABSORBED,
    INCR_SPLITTERS_RECORDED,
    INCR_BLOCKS_SPLIT,
];

/// Every canonical gauge name.
pub const ALL_GAUGES: &[&str] = &[
    SETSPLIT_BLOCKS,
    VFILTER_GALLERY_HIT_RATIO,
    MAPREDUCE_MAP_TIME_SECONDS,
    MAPREDUCE_SHUFFLE_TIME_SECONDS,
    MAPREDUCE_REDUCE_TIME_SECONDS,
    MAPREDUCE_TOTAL_TIME_SECONDS,
    EXEC_WORKERS,
    EXEC_QUEUE_DEPTH_PEAK,
    EXEC_TASK_LATENCY_P50_NS,
    EXEC_TASK_LATENCY_P90_NS,
    EXEC_TASK_LATENCY_P99_NS,
    INDEX_BUILD_NS,
    STAGE_E_SECONDS,
    STAGE_V_SECONDS,
    RECORDED_SCENARIOS,
    THEOREM_LOWER_BOUND,
    THEOREM_UPPER_BOUND,
    FULLY_SPLIT,
    DISTINCT_V_FRAMES,
    MAJORITY_VOTE_ACCURACY,
    SELECTED_SCENARIOS,
    DISK_OPEN_SECONDS,
    DISK_MANIFEST_ENTRIES,
    SERVE_STALENESS_EVENTS,
    SERVE_EPOCH,
    DAG_STAGES,
    DAG_CACHE_PEAK_PARTITIONS,
    INCR_PARTITION_BLOCKS,
];

/// Every canonical histogram name.
pub const ALL_HISTOGRAMS: &[&str] = &[
    SETSPLIT_SPLITTER_GAIN,
    VFILTER_SCORING_NS,
    ANYTIME_CONVERGENCE_ROUNDS,
    EXEC_WORKER_TASKS,
    SERVE_QUERY_LATENCY_NS,
];

/// Registers every canonical metric at its zero value, so an exported
/// profile always contains the full schema even when a run never touched
/// some subsystem (e.g. a sequential run records no mapreduce attempts).
pub fn preregister(registry: &crate::MetricsRegistry) {
    for &name in ALL_COUNTERS {
        let _ = registry.counter(name);
    }
    for &name in ALL_GAUGES {
        let _ = registry.gauge(name);
    }
    for &name in ALL_HISTOGRAMS {
        let _ = registry.histogram(name);
    }
}
