//! Telemetry substrate for the EV-Matching pipeline: hierarchical
//! tracing spans with Chrome-trace export, a global-free metrics
//! registry (counters / gauges / log-bucketed histograms) with
//! Prometheus text and JSON export, and a shared [`IndexCounters`]
//! type unifying the index/cache counter plumbing that was previously
//! duplicated between `ev-matching` and `ev-mapreduce`.
//!
//! # Cost model
//!
//! A [`Telemetry`] handle is an `Arc` around one atomic level byte, a
//! [`MetricsRegistry`] and a [`Tracer`]. Every instrumentation site
//! checks the level with a single relaxed atomic load
//! ([`Telemetry::counters_on`] / [`Telemetry::tracing_on`]) and does
//! nothing else when disabled, so `--telemetry off` runs are
//! bit-identical to uninstrumented code. Hot loops resolve metric
//! handles once and then pay one relaxed `fetch_add` per update.
//!
//! # Span taxonomy
//!
//! Spans nest `pipeline → stage → round → task`, carried in the event
//! `cat` field; ad-hoc markers (retries, speculative launches,
//! stragglers, cache invalidations) are instant events under `event`.

mod counters;
mod flight;
mod metrics;
pub mod names;
pub mod prometheus;
mod serve;
mod trace;

pub use counters::IndexCounters;
pub use flight::{FlightEntry, FlightKind, FlightRecorder, FLIGHT_CAPACITY};
pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, Reservoir, BUCKET_COUNT, RESERVOIR_CAPACITY,
};
pub use serve::MetricsServer;
pub use trace::{current_tid, next_span_id, TraceCtx, TraceEvent, Tracer, DEFAULT_CAPACITY};

use parking_lot::Mutex;
use serde_json::Value;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How much the pipeline records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Record nothing; every site is a single relaxed load.
    #[default]
    Off,
    /// Update counters, gauges and histograms; no trace events.
    Counters,
    /// Counters plus tracing spans and instant events.
    Full,
}

impl TelemetryLevel {
    const fn from_u8(v: u8) -> TelemetryLevel {
        match v {
            0 => TelemetryLevel::Off,
            1 => TelemetryLevel::Counters,
            _ => TelemetryLevel::Full,
        }
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "counters" => Ok(TelemetryLevel::Counters),
            "full" => Ok(TelemetryLevel::Full),
            other => Err(format!(
                "unknown telemetry level {other:?} (expected off|counters|full)"
            )),
        }
    }
}

impl fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        })
    }
}

#[derive(Debug)]
struct Inner {
    level: AtomicU8,
    registry: MetricsRegistry,
    tracer: Tracer,
    flight: FlightRecorder,
    flight_dir: Mutex<Option<PathBuf>>,
    dump_seq: AtomicU64,
    task_latency: Reservoir,
}

/// A cloneable handle to one run's telemetry state. Clones share the
/// same registry, tracer and level.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

impl Telemetry {
    /// Fresh telemetry state recording at `level`.
    #[must_use]
    pub fn new(level: TelemetryLevel) -> Self {
        Telemetry::with_trace_capacity(level, DEFAULT_CAPACITY)
    }

    /// Fresh telemetry state whose tracer ring retains at most
    /// `capacity` events (smaller rings surface `evm_trace_dropped_total`
    /// sooner; the default is [`DEFAULT_CAPACITY`]).
    #[must_use]
    pub fn with_trace_capacity(level: TelemetryLevel, capacity: usize) -> Self {
        let registry = MetricsRegistry::new();
        let tracer = Tracer::with_capacity(capacity);
        if level >= TelemetryLevel::Counters {
            // Ring evictions increment the registry counter live; an
            // `off` registry stays empty (sites record nothing).
            tracer.attach_drop_counter(registry.counter(names::TRACE_DROPPED));
        }
        Telemetry {
            inner: Arc::new(Inner {
                level: AtomicU8::new(level as u8),
                registry,
                tracer,
                flight: FlightRecorder::default(),
                flight_dir: Mutex::new(None),
                dump_seq: AtomicU64::new(0),
                task_latency: Reservoir::default(),
            }),
        }
    }

    /// Fresh telemetry state that records nothing.
    #[must_use]
    pub fn off() -> Self {
        Telemetry::new(TelemetryLevel::Off)
    }

    /// The shared always-off instance used by uninstrumented entry
    /// points, so plumbing a default costs one pointer copy.
    #[must_use]
    pub fn disabled() -> &'static Telemetry {
        static DISABLED: OnceLock<Telemetry> = OnceLock::new();
        DISABLED.get_or_init(Telemetry::off)
    }

    /// Current recording level.
    #[must_use]
    pub fn level(&self) -> TelemetryLevel {
        TelemetryLevel::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Changes the recording level for every clone of this handle.
    pub fn set_level(&self, level: TelemetryLevel) {
        self.inner.level.store(level as u8, Ordering::Relaxed);
    }

    /// Whether counter/gauge/histogram updates are recorded — the one
    /// relaxed load guarding each instrumentation site.
    #[inline]
    #[must_use]
    pub fn counters_on(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) >= TelemetryLevel::Counters as u8
    }

    /// Whether trace spans and events are recorded.
    #[inline]
    #[must_use]
    pub fn tracing_on(&self) -> bool {
        self.inner.level.load(Ordering::Relaxed) >= TelemetryLevel::Full as u8
    }

    /// The metrics registry shared by every clone.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The tracer shared by every clone.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Opens a span; it records a complete (`'X'`) trace event when
    /// dropped. A no-op (no clock read) unless tracing is on.
    #[must_use]
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> Span<'_> {
        self.span_ctx(name, cat, TraceCtx::default())
    }

    /// Opens a span carrying causal identity. The context is retained
    /// even when tracing is off (so [`Span::ctx`] still chains), but no
    /// clock is read and nothing is recorded.
    #[must_use]
    pub fn span_ctx(&self, name: impl Into<String>, cat: &'static str, ctx: TraceCtx) -> Span<'_> {
        if self.tracing_on() {
            Span {
                tracer: Some(&self.inner.tracer),
                name: name.into(),
                cat,
                start: Instant::now(),
                ctx,
                args: Vec::new(),
            }
        } else {
            Span {
                tracer: None,
                name: String::new(),
                cat,
                start: self.inner.tracer.epoch(),
                ctx,
                args: Vec::new(),
            }
        }
    }

    /// Records an instant event when tracing is on.
    pub fn event(&self, name: &str, args: Vec<(String, Value)>) {
        if self.tracing_on() {
            self.inner.tracer.instant(name, "event", args);
        }
    }

    /// Records an instant event attributed to `ctx` when tracing is on.
    pub fn event_ctx(&self, name: &str, ctx: TraceCtx, args: Vec<(String, Value)>) {
        if self.tracing_on() {
            self.inner.tracer.instant_ctx(name, "event", ctx, args);
        }
    }

    /// The always-on flight recorder shared by every clone. Disabled by
    /// default for library embedders; the CLI enables it per run.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// The bounded reservoir of task-attempt latencies (nanoseconds)
    /// backing the exact `evm_exec_task_latency_p*` gauges.
    #[must_use]
    pub fn task_latency(&self) -> &Reservoir {
        &self.inner.task_latency
    }

    /// Sets (or clears) the directory [`Telemetry::dump_flight`] writes
    /// into. Unset by default, making dumps a no-op for library users.
    pub fn set_flight_dir(&self, dir: Option<PathBuf>) {
        *self.inner.flight_dir.lock() = dir;
    }

    /// The currently configured flight-dump directory.
    #[must_use]
    pub fn flight_dir(&self) -> Option<PathBuf> {
        self.inner.flight_dir.lock().clone()
    }

    /// Dumps the flight-recorder ring to `flight-<ts>-<n>.json` in the
    /// configured dump directory and returns the path, or `None` when
    /// no directory is set (or the write fails — dumping is a crash
    /// path and must never panic or mask the original error).
    pub fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.flight_dir()?;
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let n = self.inner.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{secs}-{n}.json"));
        let body = self.inner.flight.to_value(reason).to_json_pretty();
        if std::fs::create_dir_all(&dir).is_err() || std::fs::write(&path, body).is_err() {
            return None;
        }
        if self.counters_on() {
            self.inner.registry.counter(names::FLIGHT_DUMPS).inc();
        }
        Some(path)
    }

    /// Refreshes metrics derived from non-registry state: mirrors
    /// tracer ring drops into `evm_trace_dropped_total` (covering
    /// `set_level` upgrades after construction) and publishes exact
    /// p50/p90/p99 task-latency gauges from the reservoir. Called
    /// before every `/metrics` scrape and before profile export.
    pub fn sync_derived_metrics(&self) {
        if !self.counters_on() {
            return;
        }
        let dropped = self.inner.tracer.dropped();
        let counter = self.inner.registry.counter(names::TRACE_DROPPED);
        let counted = counter.get();
        if dropped > counted {
            counter.add(dropped - counted);
        }
        let latency = &self.inner.task_latency;
        if !latency.is_empty() {
            for (name, q) in [
                (names::EXEC_TASK_LATENCY_P50_NS, 0.50),
                (names::EXEC_TASK_LATENCY_P90_NS, 0.90),
                (names::EXEC_TASK_LATENCY_P99_NS, 0.99),
            ] {
                if let Some(v) = latency.quantile(q) {
                    self.inner.registry.gauge(name).set(v as f64);
                }
            }
        }
    }
}

/// An open tracing span; records itself on drop. Obtained from
/// [`Telemetry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    name: String,
    cat: &'static str,
    start: Instant,
    ctx: TraceCtx,
    args: Vec<(String, Value)>,
}

impl Span<'_> {
    /// Attaches a key/value pair to the span's `args` payload.
    pub fn arg(&mut self, key: &str, value: Value) {
        if self.tracer.is_some() {
            self.args.push((key.to_string(), value));
        }
    }

    /// The span's causal context (unset unless opened with
    /// [`Telemetry::span_ctx`]). Derive children with
    /// [`TraceCtx::child`].
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            tracer.complete_ctx(
                std::mem::take(&mut self.name),
                self.cat,
                self.start,
                self.ctx,
                std::mem::take(&mut self.args),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("off".parse::<TelemetryLevel>(), Ok(TelemetryLevel::Off));
        assert_eq!(
            "counters".parse::<TelemetryLevel>(),
            Ok(TelemetryLevel::Counters)
        );
        assert_eq!("full".parse::<TelemetryLevel>(), Ok(TelemetryLevel::Full));
        assert!("verbose".parse::<TelemetryLevel>().is_err());
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Full);
        assert_eq!(TelemetryLevel::Full.to_string(), "full");
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::off();
        assert!(!tel.counters_on());
        assert!(!tel.tracing_on());
        {
            let mut span = tel.span("noop", "stage");
            span.arg("k", Value::Int(1));
        }
        tel.event("noop", Vec::new());
        assert!(tel.tracer().is_empty());
        assert!(tel.registry().snapshot().counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new(TelemetryLevel::Counters);
        let other = tel.clone();
        other.registry().counter("shared").add(3);
        assert_eq!(tel.registry().counter_value("shared"), Some(3));
        other.set_level(TelemetryLevel::Full);
        assert!(tel.tracing_on());
    }

    #[test]
    fn spans_record_complete_events() {
        let tel = Telemetry::new(TelemetryLevel::Full);
        {
            let mut span = tel.span("e_stage", "stage");
            span.arg("round", Value::Int(1));
        }
        tel.event("retry_scheduled", vec![("task".to_string(), Value::Int(7))]);
        let events = tel.tracer().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "e_stage");
        assert_eq!(events[0].ph, 'X');
        assert_eq!(events[0].cat, "stage");
        assert_eq!(events[1].ph, 'i');
    }
}
