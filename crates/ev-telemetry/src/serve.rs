//! Zero-dependency live metrics endpoint: a blocking
//! `std::net::TcpListener` accept loop on one background thread,
//! serving the strict Prometheus text render at `GET /metrics`, a
//! liveness document at `GET /healthz`, and a JSON snapshot of recent
//! spans at `GET /tracez`. No HTTP library — requests are parsed just
//! enough to route (method + path of the first line), responses are
//! `Connection: close` with an explicit `Content-Length`.

use crate::Telemetry;
use serde_json::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum spans returned by `/tracez` (most recent first retained).
const TRACEZ_LIMIT: usize = 512;

/// Maximum request bytes read before giving up on a connection.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Stops (and joins its thread) on
/// [`MetricsServer::stop`] or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free one —
    /// see [`MetricsServer::addr`]) and starts serving the given
    /// telemetry handle on a background thread.
    pub fn start(addr: impl ToSocketAddrs, telemetry: &Telemetry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let tel = telemetry.clone();
        let handle = std::thread::Builder::new()
            .name("evm-metrics".to_string())
            .spawn(move || accept_loop(&listener, &tel, &thread_shutdown))?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // `accept` blocks until the next connection: poke the listener
        // so the loop observes the flag immediately.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(listener: &TcpListener, tel: &Telemetry, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: scrapes are short and sequential handling keeps
        // the server to exactly one thread.
        let _ = serve_connection(stream, tel);
    }
}

fn serve_connection(mut stream: TcpStream, tel: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request_line = match read_request_line(&mut stream) {
        Some(line) => line,
        None => return Ok(()),
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                tel.sync_derived_metrics();
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    tel.registry().prometheus_text(),
                )
            }
            "/healthz" => ("200 OK", "application/json", healthz_body(tel)),
            "/tracez" => ("200 OK", "application/json", tracez_body(tel)),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics, /healthz, /tracez)\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads up to the end of the request head and returns its first line.
/// Returns `None` on timeouts, oversized requests, or non-UTF-8 bytes.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8(buf).ok()?;
    head.lines().next().map(str::to_string)
}

fn healthz_body(tel: &Telemetry) -> String {
    let flight = tel.flight();
    Value::Obj(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("level".to_string(), Value::Str(tel.level().to_string())),
        (
            "uptime_us".to_string(),
            Value::Int(i128::from(tel.tracer().now_us())),
        ),
        (
            "trace_events".to_string(),
            Value::Int(tel.tracer().len() as i128),
        ),
        (
            "trace_dropped".to_string(),
            Value::Int(i128::from(tel.tracer().dropped())),
        ),
        ("flight_enabled".to_string(), Value::Bool(flight.enabled())),
        (
            "flight_recorded".to_string(),
            Value::Int(i128::from(flight.recorded())),
        ),
    ])
    .to_json()
}

fn tracez_body(tel: &Telemetry) -> String {
    let events = tel.tracer().recent(TRACEZ_LIMIT);
    Value::Obj(vec![
        (
            "retained".to_string(),
            Value::Int(tel.tracer().len() as i128),
        ),
        (
            "dropped".to_string(),
            Value::Int(i128::from(tel.tracer().dropped())),
        ),
        ("returned".to_string(), Value::Int(events.len() as i128)),
        (
            "spans".to_string(),
            Value::Arr(events.iter().map(|e| e.to_tracez_value()).collect()),
        ),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryLevel;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_healthz_and_tracez() {
        let tel = Telemetry::new(TelemetryLevel::Full);
        tel.registry().counter("evm_test_requests").add(7);
        tel.span("pipeline", "pipeline").arg("k", Value::Int(1));
        let server = MetricsServer::start("127.0.0.1:0", &tel).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let parsed = crate::prometheus::parse_exposition(&body).unwrap();
        assert_eq!(parsed.value("evm_test_requests"), Some(7.0));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let health: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(health.get("status"), Some(&Value::Str("ok".to_string())));

        let (head, body) = get(addr, "/tracez");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let tracez: Value = serde_json::from_str(&body).unwrap();
        let spans = tracez.get("spans").and_then(Value::as_arr).unwrap();
        assert_eq!(spans.len(), 1);

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.stop();
    }

    #[test]
    fn stop_joins_cleanly_and_frees_the_port() {
        let tel = Telemetry::off();
        let server = MetricsServer::start("127.0.0.1:0", &tel).unwrap();
        let addr = server.addr();
        server.stop();
        // The port is released: rebinding succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
