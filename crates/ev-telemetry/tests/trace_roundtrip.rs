//! Chrome-trace round-trip: a job → stage → task → attempt span tree
//! with steal and retry edges must survive export to JSON text and be
//! reconstructible from the parsed document alone — the exact contract
//! `--trace-out` hands to `chrome://tracing` and to post-mortem scripts
//! that join spans on `args.trace_id` / `args.span_id`.

use ev_telemetry::{TraceCtx, Tracer};
use serde::Value;
use std::time::Instant;

/// Integer field of a parsed trace-event object (top level or `args`).
fn int_field(event: &Value, key: &str) -> Option<i128> {
    let v = event
        .get(key)
        .or_else(|| event.get("args").and_then(|a| a.get(key)))?;
    match v {
        Value::Int(n) => Some(*n),
        _ => None,
    }
}

/// String field of a parsed trace-event object.
fn str_field<'a>(event: &'a Value, key: &str) -> Option<&'a str> {
    match event.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Finds the unique parsed event with the given name.
fn find<'a>(events: &'a [Value], name: &str) -> &'a Value {
    let mut hits = events.iter().filter(|e| str_field(e, "name") == Some(name));
    let first = hits
        .next()
        .unwrap_or_else(|| panic!("event {name} missing"));
    assert!(hits.next().is_none(), "event {name} not unique");
    first
}

#[test]
fn span_tree_with_steal_and_retry_edges_survives_serialization() {
    let tracer = Tracer::default();

    // Record the tree the engine records: one job span over one stage
    // span over two task attempts, with a steal edge on the first
    // attempt and a retry edge (attempt 0 fails, attempt 1 succeeds)
    // on the second task.
    let job = TraceCtx::root();
    let stage = job.child();
    let attempt_a = stage.child();
    let attempt_b0 = stage.child();
    let attempt_b1 = stage.child();

    let t0 = Instant::now();
    tracer.instant_ctx(
        "task_stolen",
        "event",
        attempt_a,
        vec![("thief".to_string(), Value::Int(2))],
    );
    tracer.complete_ctx("extract[0]#0", "task", t0, attempt_a, Vec::new());
    tracer.instant_ctx("retry_scheduled", "event", attempt_b0, Vec::new());
    tracer.complete_ctx("extract[1]#0", "task", t0, attempt_b0, Vec::new());
    tracer.complete_ctx("extract[1]#1", "task", t0, attempt_b1, Vec::new());
    tracer.complete_ctx("shard_extract", "stage", t0, stage, Vec::new());
    tracer.complete_ctx("mapreduce_job", "round", t0, job, Vec::new());

    // Serialize to text and forget the in-memory events: everything
    // below works off the parsed document only.
    let text = tracer.chrome_trace_json();
    drop(tracer);
    let doc: Value = serde_json::from_str(&text).expect("export must re-parse");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), 7, "all recorded events exported");

    // Every event of the tree carries the one trace id.
    let trace_id = int_field(find(events, "mapreduce_job"), "trace_id").expect("job trace_id");
    for event in events {
        assert_eq!(
            int_field(event, "trace_id"),
            Some(trace_id),
            "{:?} lost its trace id",
            str_field(event, "name"),
        );
    }

    // Parent/child nesting: job → stage → each attempt, joined purely
    // on the serialized span ids.
    let job_span = int_field(find(events, "mapreduce_job"), "span_id").expect("job span_id");
    let stage_event = find(events, "shard_extract");
    assert_eq!(int_field(stage_event, "parent_span_id"), Some(job_span));
    let stage_span = int_field(stage_event, "span_id").expect("stage span_id");
    for name in ["extract[0]#0", "extract[1]#0", "extract[1]#1"] {
        let attempt = find(events, name);
        assert_eq!(
            int_field(attempt, "parent_span_id"),
            Some(stage_span),
            "{name} must hang off the stage span",
        );
        assert_eq!(str_field(attempt, "ph"), Some("X"));
    }

    // Retry attempts are siblings — distinct spans under one parent.
    assert_ne!(
        int_field(find(events, "extract[1]#0"), "span_id"),
        int_field(find(events, "extract[1]#1"), "span_id"),
        "each attempt gets its own span id",
    );

    // Steal and retry instants survive as 'i' events attributed to the
    // exact attempt they happened to, payload intact.
    let steal = find(events, "task_stolen");
    assert_eq!(str_field(steal, "ph"), Some("i"));
    assert_eq!(
        int_field(steal, "span_id"),
        int_field(find(events, "extract[0]#0"), "span_id"),
        "steal edge must name the stolen attempt's span",
    );
    assert_eq!(int_field(steal, "thief"), Some(2), "instant args survive");
    let retry = find(events, "retry_scheduled");
    assert_eq!(str_field(retry, "ph"), Some("i"));
    assert_eq!(
        int_field(retry, "span_id"),
        int_field(find(events, "extract[1]#0"), "span_id"),
        "retry edge must name the failed attempt's span",
    );
}
