//! Integration tests: histogram bucketing/merge/quantiles, Prometheus
//! exposition round-trips through the strict parser, and the Chrome
//! trace export matches the schema `chrome://tracing` loads.

use ev_telemetry::prometheus::{self, parse_exposition};
use ev_telemetry::{
    bucket_bound, bucket_index, Histogram, MetricsRegistry, Telemetry, TelemetryLevel, BUCKET_COUNT,
};
use serde_json::Value;

#[test]
fn histogram_bucket_boundaries() {
    // Bucket i covers (2^(i-1), 2^i]; 0 and 1 land in bucket 0.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    assert_eq!(bucket_index(2), 1);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 2);
    assert_eq!(bucket_index(5), 3);
    assert_eq!(bucket_index(1 << 20), 20);
    assert_eq!(bucket_index((1 << 20) + 1), 21);
    assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    assert_eq!(bucket_bound(0), Some(1));
    assert_eq!(bucket_bound(10), Some(1024));
    assert_eq!(bucket_bound(BUCKET_COUNT - 1), None, "+Inf bucket");
    // Every sample lands in a bucket whose bound covers it.
    for v in [0u64, 1, 2, 7, 100, 4095, 4096, 4097, 1 << 30] {
        let i = bucket_index(v);
        if let Some(bound) = bucket_bound(i) {
            assert!(v <= bound, "{v} exceeds bucket bound {bound}");
        }
        if i > 0 {
            let lower = bucket_bound(i - 1).unwrap();
            assert!(v > lower, "{v} should be in a lower bucket than {i}");
        }
    }
}

#[test]
fn histogram_counts_and_sum() {
    let h = Histogram::default();
    for v in [1u64, 2, 3, 1000] {
        h.record(v);
    }
    assert_eq!(h.count(), 4);
    assert_eq!(h.sum(), 1006);
    let snap = h.snapshot();
    assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
    assert_eq!(snap.buckets[bucket_index(1000)], 1);
    assert!((snap.mean() - 251.5).abs() < 1e-9);
}

#[test]
fn histogram_merge_is_bucketwise() {
    let a = Histogram::default();
    let b = Histogram::default();
    for v in 1..=100u64 {
        a.record(v);
        b.record(v * 1000);
    }
    a.merge(&b);
    assert_eq!(a.count(), 200);
    assert_eq!(a.sum(), 5050 + 5050 * 1000);
    let merged = a.snapshot();
    let b_snap = b.snapshot();
    for (i, &n) in b_snap.buckets.iter().enumerate() {
        assert!(merged.buckets[i] >= n, "bucket {i} lost samples in merge");
    }
}

#[test]
fn histogram_quantiles() {
    let h = Histogram::default();
    assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
    for v in 1..=1000u64 {
        h.record(v);
    }
    // p50 of 1..=1000 is 500 → bucket bound 512; p99 is 990 → 1024.
    assert_eq!(h.quantile(0.5), Some(512));
    assert_eq!(h.quantile(0.99), Some(1024));
    assert_eq!(h.quantile(0.0), Some(1), "q=0 is the first sample's bucket");
    assert_eq!(h.quantile(1.0), Some(1024));
}

#[test]
fn quantile_in_overflow_bucket_is_none() {
    let h = Histogram::default();
    h.record(u64::MAX);
    assert_eq!(h.quantile(0.5), None, "+Inf bucket has no finite bound");
}

fn populated_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("evm_test_requests_total").add(42);
    registry.counter("evm_test_empty_total").add(0);
    registry.gauge("evm_test_ratio").set(0.375);
    registry.gauge("evm_test_whole").set(17.0);
    let h = registry.histogram("evm_test_latency_ns");
    for v in [1u64, 3, 900, 70_000] {
        h.record(v);
    }
    registry
}

#[test]
fn prometheus_round_trips_through_strict_parser() {
    let registry = populated_registry();
    let text = registry.prometheus_text();
    let parsed = parse_exposition(&text).expect("own output must parse strictly");

    assert_eq!(parsed.kind("evm_test_requests_total"), Some("counter"));
    assert_eq!(parsed.value("evm_test_requests_total"), Some(42.0));
    assert_eq!(parsed.value("evm_test_empty_total"), Some(0.0));
    assert_eq!(parsed.kind("evm_test_ratio"), Some("gauge"));
    assert_eq!(parsed.value("evm_test_ratio"), Some(0.375));
    assert_eq!(parsed.value("evm_test_whole"), Some(17.0));

    let hist = &parsed.families["evm_test_latency_ns"];
    assert_eq!(hist.kind, "histogram");
    assert_eq!(parsed.value("evm_test_latency_ns_count"), Some(4.0));
    assert_eq!(parsed.value("evm_test_latency_ns_sum"), Some(70_904.0));
    let buckets: Vec<&prometheus::Sample> = hist
        .samples
        .iter()
        .filter(|s| s.name == "evm_test_latency_ns_bucket")
        .collect();
    assert_eq!(buckets.len(), BUCKET_COUNT);
    // Cumulative counts are monotone and end at the total count.
    let values: Vec<f64> = buckets.iter().map(|s| s.value).collect();
    assert!(values.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*values.last().unwrap(), 4.0);
    assert_eq!(
        buckets.last().unwrap().labels,
        vec![("le".to_string(), "+Inf".to_string())]
    );
}

#[test]
fn parser_rejects_malformed_expositions() {
    // Sample without a preceding TYPE.
    assert!(parse_exposition("evm_orphan 1\n").is_err());
    // Unknown type.
    assert!(parse_exposition("# TYPE x summary\nx 1\n").is_err());
    // Missing value.
    assert!(parse_exposition("# TYPE x counter\nx\n").is_err());
    // Unquoted label value.
    assert!(parse_exposition("# TYPE x counter\nx{le=1} 1\n").is_err());
    // Garbage value.
    assert!(parse_exposition("# TYPE x counter\nx one\n").is_err());
    // Duplicate TYPE declaration.
    assert!(parse_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err());
    // HELP comments and blank lines are fine.
    let ok = parse_exposition("# HELP x about x\n# TYPE x counter\n\nx 5\n").unwrap();
    assert_eq!(ok.value("x"), Some(5.0));
}

#[test]
fn chrome_trace_export_matches_schema() {
    let tel = Telemetry::new(TelemetryLevel::Full);
    {
        let mut pipeline = tel.span("match_many", "pipeline");
        pipeline.arg("targets", Value::Int(3));
        let _stage = tel.span("e_stage", "stage");
        tel.event("retry_scheduled", vec![("task".to_string(), Value::Int(7))]);
    }

    let text = tel.tracer().chrome_trace_json();
    let doc: Value = serde_json::from_str(&text).expect("export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), 3);

    for e in events {
        // Required fields for chrome://tracing: name, ph, ts, pid, tid.
        for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("ph must be a string, got {other:?}"),
        };
        match ph.as_str() {
            "X" => assert!(
                matches!(e.get("dur"), Some(Value::Int(d)) if *d >= 0),
                "complete events carry a duration"
            ),
            "i" => assert_eq!(
                e.get("s"),
                Some(&Value::Str("t".to_string())),
                "instants carry a scope"
            ),
            other => panic!("unexpected phase {other}"),
        }
        assert!(matches!(e.get("ts"), Some(Value::Int(t)) if *t >= 0));
    }

    // Spans closed inner-first: the stage span precedes the pipeline
    // span in the ring, and nests within it on the timeline.
    let name_of = |e: &Value| match e.get("name") {
        Some(Value::Str(s)) => s.clone(),
        _ => panic!("name"),
    };
    let names: Vec<String> = events.iter().map(name_of).collect();
    assert_eq!(names, vec!["retry_scheduled", "e_stage", "match_many"]);
}

#[test]
fn json_snapshot_export_has_all_sections() {
    let registry = populated_registry();
    let doc = registry.to_json();
    for key in ["counters", "gauges", "histograms"] {
        assert!(doc.get(key).is_some(), "snapshot JSON missing {key}");
    }
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters.get("evm_test_requests_total"),
        Some(&Value::Int(42))
    );
}
