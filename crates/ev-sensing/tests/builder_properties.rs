//! Property tests for E-Scenario construction invariants.

use ev_core::geometry::Point;
use ev_core::ids::PersonId;
use ev_core::region::GridRegion;
use ev_core::scenario::ZoneAttr;
use ev_core::time::Timestamp;
use ev_mobility::{TraceSet, Trajectory};
use ev_sensing::{EScenarioBuilder, EidRoster, SensingNoise, WindowThresholds};
use proptest::prelude::*;

fn region() -> GridRegion {
    GridRegion::new(100.0, 100.0, 20.0, 2.0).expect("valid region")
}

/// Builds a trace set from per-person position lists.
fn traces(paths: &[Vec<(f64, f64)>]) -> TraceSet {
    let mut set = TraceSet::new();
    for (i, path) in paths.iter().enumerate() {
        let mut t = Trajectory::new(Timestamp::ZERO);
        for &(x, y) in path {
            t.push(Point::new(x, y));
        }
        set.insert(PersonId::new(i as u64), t);
    }
    set
}

fn arb_paths() -> impl Strategy<Value = Vec<Vec<(f64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 10..30),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No EID may be *inclusive* in two different cells of the same
    /// window — a device is in one place at a time, and the inclusive
    /// threshold (> 50% occupancy) makes double-inclusion arithmetically
    /// impossible.
    #[test]
    fn no_eid_is_inclusive_in_two_cells_at_once(paths in arb_paths()) {
        let ts = traces(&paths);
        let roster = EidRoster::full(paths.len() as u64);
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(
                &ts,
                &roster,
                SensingNoise::none(),
                10,
                WindowThresholds { inclusive: 0.6, vague: 0.2 },
                1,
            )
            .expect("valid inputs");
        use std::collections::BTreeMap;
        let mut inclusive_at: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for s in &scenarios {
            for (eid, attr) in s.iter() {
                if attr == ZoneAttr::Inclusive {
                    let key = (s.time().tick(), eid.as_u64());
                    let prev = inclusive_at.insert(key, s.cell().index() as u64);
                    prop_assert!(
                        prev.is_none(),
                        "EID {eid} inclusive in two cells at t={}",
                        s.time()
                    );
                }
            }
        }
    }

    /// Without noise, every person with a device appears somewhere in
    /// every full window they were alive for (occupancy across all cells
    /// sums to the window) — at least vaguely.
    #[test]
    fn noiseless_carriers_are_always_sensed_somewhere(paths in arb_paths()) {
        let window = 10u64;
        let ts = traces(&paths);
        let population = paths.len() as u64;
        let roster = EidRoster::full(population);
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(
                &ts,
                &roster,
                SensingNoise::none(),
                window,
                // vague threshold low enough that a 50/50 split between
                // two cells still registers in both.
                WindowThresholds { inclusive: 0.6, vague: 0.1 },
                1,
            )
            .expect("valid inputs");
        // Only check complete windows.
        let shortest = paths.iter().map(Vec::len).min().unwrap_or(0) as u64;
        for w in 0..(shortest / window) {
            let t = Timestamp::new(w * window);
            for p in 0..population {
                let eid = PersonId::new(p).canonical_eid();
                let heard = scenarios
                    .iter()
                    .any(|s| s.time() == t && s.contains(eid));
                prop_assert!(heard, "EID {eid} silent in window {t}");
            }
        }
    }

    /// The capture log and scenario construction are deterministic in the
    /// seed, and different seeds only matter when noise is active.
    #[test]
    fn determinism_in_seed(paths in arb_paths(), seed in any::<u64>()) {
        let ts = traces(&paths);
        let roster = EidRoster::full(paths.len() as u64);
        let builder = EScenarioBuilder::new(region());
        let noise = SensingNoise { sigma: 3.0, dropout: 0.1 };
        let a = builder.capture_log(&ts, &roster, noise, seed);
        let b = builder.capture_log(&ts, &roster, noise, seed);
        prop_assert_eq!(a, b);
        // Noiseless logs ignore the seed entirely.
        let c = builder.capture_log(&ts, &roster, SensingNoise::none(), seed);
        let d = builder.capture_log(&ts, &roster, SensingNoise::none(), seed ^ 1);
        prop_assert_eq!(c, d);
    }

    /// Device-less persons never appear in any E-Scenario.
    #[test]
    fn device_less_persons_never_captured(paths in arb_paths(), missing_seed in any::<u64>()) {
        let ts = traces(&paths);
        let population = paths.len() as u64;
        let roster = EidRoster::with_missing(population, 0.5, missing_seed);
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(
                &ts,
                &roster,
                SensingNoise::default(),
                10,
                WindowThresholds::default(),
                2,
            )
            .expect("valid inputs");
        for s in &scenarios {
            for eid in s.eids() {
                prop_assert!(
                    roster.owner_of(eid).is_some(),
                    "captured EID {eid} belongs to nobody"
                );
            }
        }
    }
}
