//! The EID roster: which person carries which electronic device.
//!
//! The paper's *missing EID* practical issue (§IV-C1) models people who do
//! not carry any electronic device — they appear in V-data but never in
//! E-data. The roster assigns each person either their canonical EID or no
//! EID at all.

use ev_core::ids::{Eid, PersonId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Assignment of electronic identities to a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EidRoster {
    /// Persons that carry a device, with its EID.
    carriers: BTreeMap<PersonId, Eid>,
    /// Reverse lookup.
    owners: BTreeMap<Eid, PersonId>,
    population: u64,
}

impl EidRoster {
    /// Every one of the `population` persons carries a device with their
    /// canonical EID.
    #[must_use]
    pub fn full(population: u64) -> Self {
        let carriers: BTreeMap<PersonId, Eid> = (0..population)
            .map(|i| {
                let p = PersonId::new(i);
                (p, p.canonical_eid())
            })
            .collect();
        let owners = carriers.iter().map(|(&p, &e)| (e, p)).collect();
        EidRoster {
            carriers,
            owners,
            population,
        }
    }

    /// A roster where a uniformly random fraction `missing_rate` of the
    /// population carries no device (paper Fig. 10 sweeps this from 1 % to
    /// 50 %). Deterministic for a given `seed`.
    ///
    /// `missing_rate` is clamped into `[0, 1]`.
    #[must_use]
    pub fn with_missing(population: u64, missing_rate: f64, seed: u64) -> Self {
        let mut roster = EidRoster::full(population);
        let missing = ((population as f64) * missing_rate.clamp(0.0, 1.0)).round() as usize;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids: Vec<PersonId> = roster.carriers.keys().copied().collect();
        ids.shuffle(&mut rng);
        for p in ids.into_iter().take(missing) {
            if let Some(eid) = roster.carriers.remove(&p) {
                roster.owners.remove(&eid);
            }
        }
        roster
    }

    /// Total population size (carriers plus device-less persons).
    #[must_use]
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of persons that carry a device.
    #[must_use]
    pub fn carrier_count(&self) -> usize {
        self.carriers.len()
    }

    /// The EID carried by `person`, or `None` if they have no device.
    #[must_use]
    pub fn eid_of(&self, person: PersonId) -> Option<Eid> {
        self.carriers.get(&person).copied()
    }

    /// The person carrying `eid`, if any.
    #[must_use]
    pub fn owner_of(&self, eid: Eid) -> Option<PersonId> {
        self.owners.get(&eid).copied()
    }

    /// Iterates over `(person, eid)` pairs in person order.
    pub fn iter(&self) -> impl Iterator<Item = (PersonId, Eid)> + '_ {
        self.carriers.iter().map(|(&p, &e)| (p, e))
    }

    /// All EIDs in the roster, in order.
    pub fn eids(&self) -> impl Iterator<Item = Eid> + '_ {
        self.owners.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_roster_covers_everyone() {
        let r = EidRoster::full(10);
        assert_eq!(r.population(), 10);
        assert_eq!(r.carrier_count(), 10);
        for i in 0..10 {
            let p = PersonId::new(i);
            let eid = r.eid_of(p).unwrap();
            assert_eq!(eid, p.canonical_eid());
            assert_eq!(r.owner_of(eid), Some(p));
        }
    }

    #[test]
    fn missing_rate_removes_the_right_fraction() {
        let r = EidRoster::with_missing(100, 0.3, 1);
        assert_eq!(r.population(), 100);
        assert_eq!(r.carrier_count(), 70);
        // Reverse map stays consistent.
        for (p, e) in r.iter() {
            assert_eq!(r.owner_of(e), Some(p));
        }
    }

    #[test]
    fn missing_rate_boundaries() {
        assert_eq!(EidRoster::with_missing(10, 0.0, 1).carrier_count(), 10);
        assert_eq!(EidRoster::with_missing(10, 1.0, 1).carrier_count(), 0);
        // Out-of-range rates are clamped, not a panic.
        assert_eq!(EidRoster::with_missing(10, 2.0, 1).carrier_count(), 0);
        assert_eq!(EidRoster::with_missing(10, -0.5, 1).carrier_count(), 10);
    }

    #[test]
    fn missing_selection_is_deterministic_per_seed() {
        let a = EidRoster::with_missing(50, 0.2, 9);
        let b = EidRoster::with_missing(50, 0.2, 9);
        let c = EidRoster::with_missing(50, 0.2, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn eids_iterator_matches_carriers() {
        let r = EidRoster::with_missing(20, 0.5, 3);
        assert_eq!(r.eids().count(), r.carrier_count());
    }
}
