//! E-Scenario construction from ground-truth trajectories.
//!
//! * **Ideal** construction snapshots exact positions at every tick: each
//!   EID lands in exactly the cell its person occupies, always inclusive
//!   (paper §IV-B assumptions).
//! * **Practical** construction aggregates noisy captures over a time
//!   window and classifies each EID per cell by its occurrence fraction:
//!   "the EIDs which appear mostly are considered in the inclusive zone,
//!   the ones who appear adequately are considered in the vague zone, and
//!   the ones who appear occasionally are considered in the exclusive
//!   zone" (paper §IV-C2).

use crate::capture::{CaptureEvent, SensingNoise};
use crate::roster::EidRoster;
use ev_core::ids::Eid;
use ev_core::region::{CellId, GridRegion};
use ev_core::scenario::{EScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_mobility::TraceSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Occurrence-fraction thresholds for window classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowThresholds {
    /// Fraction of window ticks at or above which an EID is *inclusive*.
    pub inclusive: f64,
    /// Fraction at or above which an EID is *vague* (below `inclusive`).
    pub vague: f64,
}

impl Default for WindowThresholds {
    /// Appear in ≥ 60 % of the window → inclusive; ≥ 20 % → vague.
    fn default() -> Self {
        WindowThresholds {
            inclusive: 0.6,
            vague: 0.2,
        }
    }
}

impl WindowThresholds {
    /// Validates `0 < vague <= inclusive <= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] on a violated bound.
    pub fn validate(&self) -> ev_core::Result<()> {
        let ok = self.vague > 0.0
            && self.vague <= self.inclusive
            && self.inclusive <= 1.0
            && self.vague.is_finite()
            && self.inclusive.is_finite();
        if !ok {
            return Err(ev_core::Error::InvalidParameter {
                name: "thresholds",
                reason: format!(
                    "require 0 < vague <= inclusive <= 1, got vague={} inclusive={}",
                    self.vague, self.inclusive
                ),
            });
        }
        Ok(())
    }
}

/// Builds E-Scenarios (and raw capture logs) over a [`GridRegion`].
#[derive(Debug, Clone)]
pub struct EScenarioBuilder {
    region: GridRegion,
}

impl EScenarioBuilder {
    /// Creates a builder for `region`.
    #[must_use]
    pub fn new(region: GridRegion) -> Self {
        EScenarioBuilder { region }
    }

    /// The region scenarios are built over.
    #[must_use]
    pub fn region(&self) -> &GridRegion {
        &self.region
    }

    /// Ideal-setting E-Scenarios: one per (tick, cell) with at least one
    /// carrier present; every EID inclusive. Sorted by scenario id.
    #[must_use]
    pub fn build_ideal(&self, traces: &TraceSet, roster: &EidRoster) -> Vec<EScenario> {
        let mut scenarios: BTreeMap<(Timestamp, CellId), EScenario> = BTreeMap::new();
        for (person, trajectory) in traces.iter() {
            let Some(eid) = roster.eid_of(person) else {
                continue;
            };
            for (offset, &pos) in trajectory.positions.iter().enumerate() {
                let t = trajectory.start + offset as u64;
                // Trajectories stay in the region by construction.
                let Ok(cell) = self.region.cell_at(pos) else {
                    continue;
                };
                scenarios
                    .entry((t, cell))
                    .or_insert_with(|| EScenario::new(cell, t))
                    .insert(eid, ZoneAttr::Inclusive);
            }
        }
        scenarios.into_values().collect()
    }

    /// Raw capture log: one [`CaptureEvent`] per (tick, carrier) that the
    /// noisy sensor actually heard. Deterministic for a given `seed`.
    #[must_use]
    pub fn capture_log(
        &self,
        traces: &TraceSet,
        roster: &EidRoster,
        noise: SensingNoise,
        seed: u64,
    ) -> Vec<CaptureEvent> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut log = Vec::new();
        for (person, trajectory) in traces.iter() {
            let Some(eid) = roster.eid_of(person) else {
                continue;
            };
            for (offset, &pos) in trajectory.positions.iter().enumerate() {
                let t = trajectory.start + offset as u64;
                if let Some(estimated) = noise.observe(pos, &mut rng) {
                    log.push(CaptureEvent {
                        eid,
                        time: t,
                        estimated,
                    });
                }
            }
        }
        log.sort_by_key(|e| (e.time, e.eid));
        log
    }

    /// Practical-setting E-Scenarios: aggregates a noisy capture log over
    /// consecutive windows of `window` ticks and classifies each (EID,
    /// cell) pair by occurrence fraction against `thresholds`. The
    /// scenario timestamp is the window start.
    ///
    /// Estimated positions that fall outside the region (noise can push
    /// them out) are clamped back in, as a real deployment would attribute
    /// them to the nearest covered cell.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] if `window` is zero or
    /// the thresholds are invalid.
    pub fn build_practical(
        &self,
        traces: &TraceSet,
        roster: &EidRoster,
        noise: SensingNoise,
        window: u64,
        thresholds: WindowThresholds,
        seed: u64,
    ) -> ev_core::Result<Vec<EScenario>> {
        if window == 0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "window",
                reason: "window length must be at least one tick".into(),
            });
        }
        thresholds.validate()?;
        noise.validate()?;

        let log = self.capture_log(traces, roster, noise, seed);
        let bounds = self.region.bounds();

        // (window start, cell, eid) -> (occurrences, inclusive-zone hits).
        // Each capture is additionally classified against the cell's
        // vague-zone geometry (paper Fig. 2): estimates landing within
        // `vague_width` of the border are *vague hits* — they could
        // belong to the neighbouring cell.
        let mut counts: BTreeMap<(Timestamp, CellId), BTreeMap<Eid, (u64, u64)>> = BTreeMap::new();
        for event in &log {
            let win_start = Timestamp::new((event.time.tick() / window) * window);
            let clamped = event.estimated.clamped(bounds);
            let Ok(cell) = self.region.cell_at(clamped) else {
                continue;
            };
            let deep = self.region.zone_of(cell, clamped) == crate::Zone::Inclusive;
            let entry = counts
                .entry((win_start, cell))
                .or_default()
                .entry(event.eid)
                .or_insert((0, 0));
            entry.0 += 1;
            entry.1 += u64::from(deep);
        }

        let mut scenarios = Vec::new();
        for ((start, cell), eids) in counts {
            let mut scenario = EScenario::new(cell, start);
            for (eid, (count, deep_hits)) in eids {
                let fraction = count as f64 / window as f64;
                if fraction < thresholds.vague {
                    continue; // exclusive, i.e. absent
                }
                // Inclusive needs both a dominant occurrence fraction and
                // a majority of hits safely away from the border.
                if fraction >= thresholds.inclusive && deep_hits * 2 > count {
                    scenario.insert(eid, ZoneAttr::Inclusive);
                } else {
                    scenario.insert(eid, ZoneAttr::Vague);
                }
            }
            if !scenario.is_empty() {
                scenarios.push(scenario);
            }
        }
        Ok(scenarios)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::geometry::Point;
    use ev_core::ids::PersonId;
    use ev_mobility::{TraceSet, Trajectory};

    fn region() -> GridRegion {
        GridRegion::new(100.0, 100.0, 10.0, 1.0).unwrap()
    }

    /// A trace set with one person standing still at `p` for `ticks`.
    fn stationary(person: u64, p: Point, ticks: usize) -> TraceSet {
        let mut t = Trajectory::new(Timestamp::ZERO);
        for _ in 0..ticks {
            t.push(p);
        }
        let mut s = TraceSet::new();
        s.insert(PersonId::new(person), t);
        s
    }

    fn merge(a: TraceSet, b: &TraceSet) -> TraceSet {
        let mut out = a;
        for (p, t) in b.iter() {
            out.insert(p, t.clone());
        }
        out
    }

    #[test]
    fn ideal_builder_places_eids_in_true_cells() {
        let traces = stationary(0, Point::new(15.0, 15.0), 3);
        let roster = EidRoster::full(1);
        let scenarios = EScenarioBuilder::new(region()).build_ideal(&traces, &roster);
        assert_eq!(scenarios.len(), 3, "one scenario per tick");
        let eid = PersonId::new(0).canonical_eid();
        for s in &scenarios {
            assert_eq!(s.cell(), CellId::new(11));
            assert!(s.contains_inclusive(eid));
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn ideal_builder_skips_device_less_persons() {
        let traces = stationary(0, Point::new(15.0, 15.0), 2);
        let roster = EidRoster::with_missing(1, 1.0, 0);
        let scenarios = EScenarioBuilder::new(region()).build_ideal(&traces, &roster);
        assert!(scenarios.is_empty());
    }

    #[test]
    fn ideal_builder_groups_cohabitants() {
        let a = stationary(0, Point::new(15.0, 15.0), 2);
        let b = stationary(1, Point::new(16.0, 14.0), 2);
        let traces = merge(a, &b);
        let roster = EidRoster::full(2);
        let scenarios = EScenarioBuilder::new(region()).build_ideal(&traces, &roster);
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            assert_eq!(s.len(), 2, "both EIDs share the cell");
        }
    }

    #[test]
    fn capture_log_is_sorted_and_deterministic() {
        let traces = merge(
            stationary(0, Point::new(15.0, 15.0), 5),
            &stationary(1, Point::new(55.0, 55.0), 5),
        );
        let roster = EidRoster::full(2);
        let b = EScenarioBuilder::new(region());
        let log1 = b.capture_log(&traces, &roster, SensingNoise::default(), 42);
        let log2 = b.capture_log(&traces, &roster, SensingNoise::default(), 42);
        assert_eq!(log1, log2);
        assert!(log1
            .windows(2)
            .all(|w| (w[0].time, w[0].eid) <= (w[1].time, w[1].eid)));
        // Noiseless log has one event per (person, tick).
        let full = b.capture_log(&traces, &roster, SensingNoise::none(), 0);
        assert_eq!(full.len(), 10);
    }

    #[test]
    fn practical_builder_marks_center_dwellers_inclusive() {
        // Person parked at a cell centre, mild noise: every window
        // observation stays in the cell -> inclusive.
        let traces = stationary(0, Point::new(15.0, 15.0), 10);
        let roster = EidRoster::full(1);
        let noise = SensingNoise {
            sigma: 1.0,
            dropout: 0.0,
        };
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(&traces, &roster, noise, 10, WindowThresholds::default(), 7)
            .unwrap();
        assert_eq!(scenarios.len(), 1);
        let eid = PersonId::new(0).canonical_eid();
        assert_eq!(scenarios[0].attr(eid), Some(ZoneAttr::Inclusive));
        assert_eq!(scenarios[0].time(), Timestamp::ZERO);
    }

    #[test]
    fn practical_builder_marks_border_dwellers_vague() {
        // Person parked exactly on a cell border with noticeable noise:
        // observations split between the two cells -> vague in both (or,
        // rarely, inclusive in one), never inclusive in both.
        let traces = stationary(0, Point::new(20.0, 15.0), 20);
        let roster = EidRoster::full(1);
        let noise = SensingNoise {
            sigma: 3.0,
            dropout: 0.0,
        };
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(&traces, &roster, noise, 20, WindowThresholds::default(), 11)
            .unwrap();
        let eid = PersonId::new(0).canonical_eid();
        let inclusive = scenarios
            .iter()
            .filter(|s| s.attr(eid) == Some(ZoneAttr::Inclusive))
            .count();
        let vague = scenarios
            .iter()
            .filter(|s| s.attr(eid) == Some(ZoneAttr::Vague))
            .count();
        assert!(inclusive <= 1, "cannot be firmly in two cells at once");
        assert!(
            vague >= 1 || inclusive == 1,
            "border dweller must surface somewhere"
        );
    }

    #[test]
    fn practical_builder_validates_inputs() {
        let traces = stationary(0, Point::new(15.0, 15.0), 4);
        let roster = EidRoster::full(1);
        let b = EScenarioBuilder::new(region());
        assert!(b
            .build_practical(
                &traces,
                &roster,
                SensingNoise::none(),
                0,
                WindowThresholds::default(),
                0
            )
            .is_err());
        let bad = WindowThresholds {
            inclusive: 0.1,
            vague: 0.5,
        };
        assert!(b
            .build_practical(&traces, &roster, SensingNoise::none(), 4, bad, 0)
            .is_err());
        let bad_noise = SensingNoise {
            sigma: -1.0,
            dropout: 0.0,
        };
        assert!(b
            .build_practical(
                &traces,
                &roster,
                bad_noise,
                4,
                WindowThresholds::default(),
                0
            )
            .is_err());
    }

    #[test]
    fn practical_with_no_noise_equals_ideal_occupancy() {
        let traces = stationary(0, Point::new(35.0, 75.0), 10);
        let roster = EidRoster::full(1);
        let b = EScenarioBuilder::new(region());
        let practical = b
            .build_practical(
                &traces,
                &roster,
                SensingNoise::none(),
                10,
                WindowThresholds::default(),
                0,
            )
            .unwrap();
        assert_eq!(practical.len(), 1);
        let eid = PersonId::new(0).canonical_eid();
        assert_eq!(practical[0].attr(eid), Some(ZoneAttr::Inclusive));
        assert_eq!(
            practical[0].cell(),
            region().cell_at(Point::new(35.0, 75.0)).unwrap()
        );
    }

    #[test]
    fn dropout_below_vague_threshold_excludes_eid() {
        let traces = stationary(0, Point::new(15.0, 15.0), 10);
        let roster = EidRoster::full(1);
        // 95 % dropout: expected occurrence fraction ~0.05 < vague 0.2.
        let noise = SensingNoise {
            sigma: 0.0,
            dropout: 0.95,
        };
        let scenarios = EScenarioBuilder::new(region())
            .build_practical(&traces, &roster, noise, 10, WindowThresholds::default(), 3)
            .unwrap();
        // Either no scenario at all, or one without an inclusive EID.
        for s in &scenarios {
            assert_ne!(
                s.attr(PersonId::new(0).canonical_eid()),
                Some(ZoneAttr::Inclusive)
            );
        }
    }
}
