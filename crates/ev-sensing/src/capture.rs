//! EID capture events and the electronic localization noise model.

use ev_core::geometry::Point;
use ev_core::ids::Eid;
use ev_core::time::Timestamp;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One raw E-data record: an EID heard at a time, with the estimated
/// position of the emitting device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureEvent {
    /// The captured electronic identity.
    pub eid: Eid,
    /// When the frame was heard.
    pub time: Timestamp,
    /// Estimated device position (true position plus localization error).
    pub estimated: Point,
}

/// The localization error model: isotropic Gaussian noise with standard
/// deviation `sigma` metres, plus a per-tick probability that the device
/// is not heard at all (duty-cycling, collisions).
///
/// The paper notes that "the range error of E localization is relatively
/// large" (§I); `sigma` controls how often estimated positions drift
/// across cell borders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingNoise {
    /// Standard deviation of the position estimate, in metres.
    pub sigma: f64,
    /// Probability that a given tick produces no capture for a device.
    pub dropout: f64,
}

impl Default for SensingNoise {
    /// 8 m localization error, 2 % capture dropout.
    fn default() -> Self {
        SensingNoise {
            sigma: 8.0,
            dropout: 0.02,
        }
    }
}

impl SensingNoise {
    /// A noiseless, lossless sensor (the ideal setting).
    #[must_use]
    pub const fn none() -> Self {
        SensingNoise {
            sigma: 0.0,
            dropout: 0.0,
        }
    }

    /// Validates the noise parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] if `sigma` is negative
    /// or non-finite, or `dropout` is outside `[0, 1]`.
    pub fn validate(&self) -> ev_core::Result<()> {
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "sigma",
                reason: format!("must be non-negative and finite, got {}", self.sigma),
            });
        }
        if !self.dropout.is_finite() || !(0.0..=1.0).contains(&self.dropout) {
            return Err(ev_core::Error::InvalidParameter {
                name: "dropout",
                reason: format!("must be in [0, 1], got {}", self.dropout),
            });
        }
        Ok(())
    }

    /// Attempts to capture a device at true position `truth`; returns the
    /// estimated position or `None` on dropout.
    pub fn observe(&self, truth: Point, rng: &mut ChaCha8Rng) -> Option<Point> {
        if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
            return None;
        }
        if self.sigma == 0.0 {
            return Some(truth);
        }
        let (nx, ny) = gaussian_pair(rng);
        Some(Point::new(
            truth.x + nx * self.sigma,
            truth.y + ny * self.sigma,
        ))
    }
}

/// Two independent standard-normal samples via Box–Muller.
fn gaussian_pair(rng: &mut ChaCha8Rng) -> (f64, f64) {
    // Draw u1 in (0, 1] to keep the log finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(123)
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(SensingNoise {
            sigma: -1.0,
            dropout: 0.0
        }
        .validate()
        .is_err());
        assert!(SensingNoise {
            sigma: f64::NAN,
            dropout: 0.0
        }
        .validate()
        .is_err());
        assert!(SensingNoise {
            sigma: 1.0,
            dropout: 1.5
        }
        .validate()
        .is_err());
        assert!(SensingNoise {
            sigma: 1.0,
            dropout: -0.1
        }
        .validate()
        .is_err());
        assert!(SensingNoise::default().validate().is_ok());
        assert!(SensingNoise::none().validate().is_ok());
    }

    #[test]
    fn noiseless_sensor_reports_truth() {
        let mut r = rng();
        let truth = Point::new(10.0, 20.0);
        assert_eq!(SensingNoise::none().observe(truth, &mut r), Some(truth));
    }

    #[test]
    fn noise_has_roughly_the_configured_sigma() {
        let mut r = rng();
        let noise = SensingNoise {
            sigma: 5.0,
            dropout: 0.0,
        };
        let truth = Point::new(0.0, 0.0);
        let n = 20_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let p = noise.observe(truth, &mut r).unwrap();
            sum_sq += p.x * p.x + p.y * p.y;
        }
        // E[x^2 + y^2] = 2 sigma^2 = 50.
        let mean_sq = sum_sq / n as f64;
        assert!(
            (mean_sq - 50.0).abs() < 2.5,
            "mean squared error {mean_sq} far from 50"
        );
    }

    #[test]
    fn noise_is_unbiased() {
        let mut r = rng();
        let noise = SensingNoise {
            sigma: 5.0,
            dropout: 0.0,
        };
        let truth = Point::new(100.0, 200.0);
        let n = 20_000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let p = noise.observe(truth, &mut r).unwrap();
            sx += p.x;
            sy += p.y;
        }
        assert!((sx / n as f64 - 100.0).abs() < 0.2);
        assert!((sy / n as f64 - 200.0).abs() < 0.2);
    }

    #[test]
    fn dropout_rate_is_respected() {
        let mut r = rng();
        let noise = SensingNoise {
            sigma: 0.0,
            dropout: 0.25,
        };
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| noise.observe(Point::ORIGIN, &mut r).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "dropout rate {rate}");
    }

    #[test]
    fn full_dropout_never_captures() {
        let mut r = rng();
        let noise = SensingNoise {
            sigma: 1.0,
            dropout: 1.0,
        };
        for _ in 0..100 {
            assert!(noise.observe(Point::ORIGIN, &mut r).is_none());
        }
    }
}
