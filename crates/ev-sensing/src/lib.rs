//! Electronic sensing substrate.
//!
//! This crate turns ground-truth trajectories into the **E-data** the
//! matching algorithms consume: per-tick EID capture events with realistic
//! localization error, and [`EScenario`](ev_core::EScenario)s built either
//! under the paper's *ideal* consistency assumption or under the
//! *practical* model with electronic drift, vague-zone classification and
//! device-less people (missing EIDs, paper §IV-C).
//!
//! The physical story: one base station (or WiFi sniffer) per grid cell
//! hears the frames a device emits and estimates the device position with
//! a Gaussian range error. A device whose estimated position lands near a
//! cell border may be attributed to the wrong cell — exactly the
//! *drifting EID* problem the vague zone exists to absorb.
//!
//! # Example
//!
//! ```
//! use ev_core::region::GridRegion;
//! use ev_mobility::{World, WaypointParams};
//! use ev_sensing::{EidRoster, EScenarioBuilder};
//!
//! let region = GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap();
//! let traces = World::random_waypoint(region.clone(), 30, WaypointParams::default(), 7)
//!     .run(50);
//! let roster = EidRoster::full(30);
//!
//! // Ideal E-Scenarios: exact positions, everyone inclusive.
//! let scenarios = EScenarioBuilder::new(region).build_ideal(&traces, &roster);
//! assert!(!scenarios.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod capture;
mod roster;

pub use builder::{EScenarioBuilder, WindowThresholds};
pub use capture::{CaptureEvent, SensingNoise};
pub use roster::EidRoster;

pub(crate) use ev_core::region::Zone;
