//! Work-stealing thread-pool executor for the EV-Matching pipelines.
//!
//! The paper's §V distributes set splitting and VID filtering over a
//! MapReduce cluster; this crate is the *real-thread* substrate for
//! that design. `ev-mapreduce` uses it as its
//! [`WorkStealing`](../ev_mapreduce/enum.Backend.html) backend, so the
//! engine's straggler/speculation/retry logic drives actual OS threads,
//! and `ev-matching` runs its cell-sharded matching on it directly. The
//! crate is intentionally zero-dependency (std only) and `forbid`s
//! unsafe code.
//!
//! # Execution model
//!
//! An [`Executor`] is only a thread-count; every
//! [`session`](Executor::session) (or
//! [`map_ordered`](Executor::map_ordered)) call spins up that many
//! scoped workers, so borrowed
//! closures work without `'static` bounds and nothing outlives the
//! call.
//!
//! * **Per-worker deques.** Each worker owns a `Mutex<VecDeque>` of
//!   `(task id, payload)` entries. The driver pushes submissions
//!   round-robin (or pinned via [`SessionHandle::submit_to`], which the
//!   sharded matcher uses for shard affinity). Owners pop from the
//!   *front* (oldest first).
//! * **Steal-half.** An idle worker scans the other deques in ring
//!   order and, on finding a non-empty victim, takes the newest
//!   ⌈len/2⌉ entries in one lock acquisition — the victim keeps the
//!   oldest half it is about to reach anyway. Two queue locks are never
//!   held at once, so the protocol cannot deadlock.
//! * **Channel-based collection.** Workers push
//!   [`Completion`]s into one lock+condvar channel the driver drains
//!   with [`SessionHandle::recv`]; `recv` returns `None` exactly when
//!   every submitted task has been delivered, so drivers cannot hang on
//!   an empty session.
//! * **Panic isolation.** Each task runs under
//!   [`std::panic::catch_unwind`]; a panicking task yields an
//!   `Err(`[`TaskPanic`]`)` completion and its worker keeps serving the
//!   queue. `ev-mapreduce` maps such completions onto its failed-attempt
//!   retry path.
//! * **Deterministic ordered merge.** Results are keyed by the caller's
//!   task id; [`Executor::map_ordered`] returns them in input order, so
//!   outputs never depend on which worker ran what when.
//! * **Shutdown.** When the driver returns (or unwinds), a guard flips
//!   the shutdown flag and wakes every parked worker; tasks still queued
//!   are dropped without running (counted in
//!   [`ExecStats::tasks_dropped`]) and the scope joins all threads
//!   before the session returns.
//!
//! # Example
//!
//! ```
//! use ev_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let (squares, stats) = exec.map_ordered((0u64..64).collect(), |_ctx, x| x * x);
//! let squares: Vec<u64> = squares.into_iter().map(Result::unwrap).collect();
//! assert_eq!(squares[7], 49);
//! assert_eq!(stats.tasks_executed, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Caller-chosen identifier a completion is keyed by.
pub type TaskId = u64;

/// Callbacks invoked from inside worker threads, letting embedders
/// (e.g. `ev-mapreduce`'s telemetry bridge) observe steals and task
/// completions without this crate growing a telemetry dependency.
///
/// All methods default to no-ops. Implementations must be cheap and
/// must not panic (they run on the worker hot path, outside the task's
/// `catch_unwind` isolation).
pub trait ExecObserver: Sync {
    /// Whether workers should time each task attempt (two monotonic
    /// clock reads per task). When `false`, `task_finished` receives
    /// `dur_ns == 0`.
    fn wants_timing(&self) -> bool {
        false
    }

    /// A successful steal moved `moved` tasks from `victim`'s deque to
    /// `thief` (the first of which `thief` runs immediately).
    fn steal(&self, _thief: usize, _victim: usize, _moved: usize) {}

    /// A task was submitted to `worker`'s deque. Unlike the other
    /// callbacks this fires on the *driver* thread (submission is a
    /// driver-side act); stage schedulers use it to count scheduled
    /// attempts without threading a counter through every submit site.
    fn task_submitted(&self, _worker: usize, _task: TaskId) {}

    /// A task attempt finished on `ctx.worker` (panicked ones
    /// included).
    fn task_finished(&self, _ctx: WorkerCtx, _dur_ns: u64, _panicked: bool) {}
}

/// The default observer: observes nothing, requests no timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl ExecObserver for NoopObserver {}

/// Identity of the worker running a task, passed to the work closure
/// (telemetry consumers label per-worker spans with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Worker index in `0..threads`.
    pub worker: usize,
    /// The task id the closure is running.
    pub task: TaskId,
}

/// A task that panicked; the payload is the panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Best-effort panic payload rendered to text.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// One finished task delivered to the driver.
#[derive(Debug)]
pub struct Completion<T> {
    /// The id the task was submitted under.
    pub task: TaskId,
    /// The closure's return value, or the isolated panic.
    pub result: Result<T, TaskPanic>,
}

/// Counters describing one session's execution, used by `ev-mapreduce`
/// and `ev-matching` to export the canonical `evm_exec_*` /
/// `evm_mapreduce_steal_*` metrics.
///
/// # Snapshot guarantee
///
/// The stats are taken by `Shared::into_stats`, which consumes the
/// session state **by value** after `thread::scope` has joined every
/// worker — the borrow checker itself proves no worker can still be
/// incrementing a counter. They are therefore an *exact* post-join
/// snapshot, not a racy sample:
///
/// * `tasks_executed + tasks_dropped` equals the number of tasks
///   submitted, exactly;
/// * `per_worker_executed` sums to `tasks_executed`, exactly;
/// * `tasks_stolen >= steal_ops` (each successful steal moves at least
///   one task), and both are `0` when `threads == 1` (there is no
///   victim to steal from).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads the session ran with.
    pub threads: usize,
    /// Task attempts actually run (including panicked ones).
    pub tasks_executed: u64,
    /// Tasks whose closure panicked (isolated, reported as `Err`).
    pub tasks_panicked: u64,
    /// Successful steal operations (each moves a batch).
    pub steal_ops: u64,
    /// Tasks moved between deques by steals.
    pub tasks_stolen: u64,
    /// High-water mark of any single worker deque's depth.
    pub queue_depth_peak: u64,
    /// Tasks still queued when the session shut down (never run).
    pub tasks_dropped: u64,
    /// Tasks executed per worker, indexed by worker id.
    pub per_worker_executed: Vec<u64>,
}

struct Shared<I, T> {
    queues: Vec<Mutex<VecDeque<(TaskId, I)>>>,
    /// Guards the park condvar; holds no data — the wait predicate reads
    /// `pending`/`shutdown` under this lock to avoid lost wake-ups.
    park: Mutex<()>,
    park_cv: Condvar,
    /// Tasks sitting in some deque, not yet claimed for execution.
    pending: AtomicU64,
    shutdown: AtomicBool,
    completions: Mutex<VecDeque<Completion<T>>>,
    completions_cv: Condvar,
    /// Submitted minus delivered-to-driver.
    outstanding: AtomicU64,
    executed: Vec<AtomicU64>,
    panicked: AtomicU64,
    steal_ops: AtomicU64,
    tasks_stolen: AtomicU64,
    depth_peak: AtomicU64,
}

impl<I, T> Shared<I, T> {
    fn new(threads: usize) -> Self {
        Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
            pending: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            completions: Mutex::new(VecDeque::new()),
            completions_cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
            executed: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            panicked: AtomicU64::new(0),
            steal_ops: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            depth_peak: AtomicU64::new(0),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.depth_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn push_task(&self, worker: usize, id: TaskId, payload: I) {
        let depth = {
            let mut q = self.queues[worker].lock().expect("queue lock");
            q.push_back((id, payload));
            q.len()
        };
        self.note_depth(depth);
        self.pending.fetch_add(1, Ordering::Release);
        // Wake-up protocol: workers only wait after re-checking
        // `pending`/`shutdown` under the park lock, so taking the lock
        // here (after the increment) guarantees no wake-up is lost.
        let _guard = self.park.lock().expect("park lock");
        self.park_cv.notify_all();
    }

    /// Claims one task for worker `w`: own deque first (oldest entry),
    /// else steal the newest half of the first non-empty victim.
    fn find_task(&self, w: usize, observer: &dyn ExecObserver) -> Option<(TaskId, I)> {
        if let Some(task) = {
            let mut own = self.queues[w].lock().expect("queue lock");
            own.pop_front()
        } {
            self.pending.fetch_sub(1, Ordering::Release);
            return Some(task);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (w + offset) % n;
            let mut stolen = {
                let mut vq = self.queues[victim].lock().expect("queue lock");
                let len = vq.len();
                if len == 0 {
                    continue;
                }
                vq.split_off(len - len.div_ceil(2))
            };
            self.steal_ops.fetch_add(1, Ordering::Relaxed);
            self.tasks_stolen
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
            observer.steal(w, victim, stolen.len());
            let task = stolen.pop_front().expect("stole at least one task");
            self.pending.fetch_sub(1, Ordering::Release);
            if !stolen.is_empty() {
                let depth = {
                    let mut own = self.queues[w].lock().expect("queue lock");
                    own.append(&mut stolen);
                    own.len()
                };
                self.note_depth(depth);
            }
            return Some(task);
        }
        None
    }

    fn park(&self) {
        let guard = self.park.lock().expect("park lock");
        if self.shutdown.load(Ordering::Acquire) || self.pending.load(Ordering::Acquire) > 0 {
            return;
        }
        // Condvars may wake spuriously; the worker loop re-scans and
        // parks again, so a single wait (no loop) is sufficient here.
        drop(self.park_cv.wait(guard).expect("park wait"));
    }

    fn shut_down(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _guard = self.park.lock().expect("park lock");
        self.park_cv.notify_all();
    }

    fn deliver(&self, completion: Completion<T>) {
        let mut q = self.completions.lock().expect("completions lock");
        q.push_back(completion);
        self.completions_cv.notify_all();
    }

    fn worker_loop<F>(&self, w: usize, work: &F, observer: &dyn ExecObserver)
    where
        F: Fn(WorkerCtx, I) -> T + Sync,
    {
        let timing = observer.wants_timing();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match self.find_task(w, observer) {
                Some((task, payload)) => {
                    let ctx = WorkerCtx { worker: w, task };
                    let start = if timing { Some(Instant::now()) } else { None };
                    let outcome = catch_unwind(AssertUnwindSafe(|| work(ctx, payload)));
                    let dur_ns = start.map_or(0, |s| {
                        u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    self.executed[w].fetch_add(1, Ordering::Relaxed);
                    observer.task_finished(ctx, dur_ns, outcome.is_err());
                    let result = outcome.map_err(|panic| {
                        self.panicked.fetch_add(1, Ordering::Relaxed);
                        TaskPanic {
                            message: panic_message(&*panic),
                        }
                    });
                    self.deliver(Completion { task, result });
                }
                None => self.park(),
            }
        }
    }

    /// Converts the session state into its final [`ExecStats`].
    ///
    /// Takes `self` by value deliberately: the only way to call this is
    /// after `thread::scope` returns (all workers joined), so every
    /// `Relaxed` load below observes the final value of its counter and
    /// the snapshot invariants documented on [`ExecStats`] hold exactly.
    fn into_stats(self, threads: usize) -> ExecStats {
        let per_worker: Vec<u64> = self
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let dropped: u64 = self
            .queues
            .iter()
            .map(|q| q.lock().expect("queue lock").len() as u64)
            .sum();
        ExecStats {
            threads,
            tasks_executed: per_worker.iter().sum(),
            tasks_panicked: self.panicked.load(Ordering::Relaxed),
            steal_ops: self.steal_ops.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            queue_depth_peak: self.depth_peak.load(Ordering::Relaxed),
            tasks_dropped: dropped,
            per_worker_executed: per_worker,
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Driver-side handle of a running [`Executor::session`]: submit tasks,
/// receive completions.
pub struct SessionHandle<'a, I, T> {
    shared: &'a Shared<I, T>,
    round_robin: AtomicUsize,
    observer: &'a dyn ExecObserver,
}

impl<I, T> std::fmt::Debug for SessionHandle<'_, I, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("threads", &self.shared.queues.len())
            .finish_non_exhaustive()
    }
}

impl<I: Send, T: Send> SessionHandle<'_, I, T> {
    /// Submits a task to the next worker in round-robin order.
    pub fn submit(&self, id: TaskId, payload: I) {
        let n = self.shared.queues.len();
        let w = self.round_robin.fetch_add(1, Ordering::Relaxed) % n;
        self.submit_to(w, id, payload);
    }

    /// Submits a task pinned to `worker`'s deque (`worker` wraps modulo
    /// the thread count). Stealing may still migrate it — pinning is an
    /// affinity hint, not an isolation guarantee.
    pub fn submit_to(&self, worker: usize, id: TaskId, payload: I) {
        let n = self.shared.queues.len();
        self.shared.outstanding.fetch_add(1, Ordering::Release);
        self.observer.task_submitted(worker % n, id);
        self.shared.push_task(worker % n, id, payload);
    }

    /// Submits a whole stage of tasks round-robin in one call. Stage
    /// schedulers (the DAG layer in `ev-mapreduce`) use this to launch
    /// every ready partition of a stage at once.
    pub fn submit_batch(&self, tasks: impl IntoIterator<Item = (TaskId, I)>) {
        for (id, payload) in tasks {
            self.submit(id, payload);
        }
    }

    /// Blocks for the next completion; `None` once every submitted task
    /// has already been delivered.
    pub fn recv(&self) -> Option<Completion<T>> {
        let mut q = self.shared.completions.lock().expect("completions lock");
        loop {
            if let Some(c) = q.pop_front() {
                self.shared.outstanding.fetch_sub(1, Ordering::Release);
                return Some(c);
            }
            if self.shared.outstanding.load(Ordering::Acquire) == 0 {
                return None;
            }
            q = self
                .shared
                .completions_cv
                .wait(q)
                .expect("completions wait");
        }
    }
}

/// Wakes and joins the workers even when the driver unwinds.
struct ShutdownGuard<'a, I, T>(&'a Shared<I, T>);
impl<I, T> Drop for ShutdownGuard<'_, I, T> {
    fn drop(&mut self) {
        self.0.shut_down();
    }
}

/// A work-stealing thread pool configuration. Cheap to create; threads
/// are spawned per [`session`](Executor::session) so work closures can
/// borrow from the caller's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a dynamic session: `driver` runs on the calling thread and
    /// submits/receives through the [`SessionHandle`] while the workers
    /// execute `work`. Used by the MapReduce engine, whose retry and
    /// speculative-execution logic decides mid-flight what to submit
    /// next.
    pub fn session<I, T, R, F, D>(&self, work: F, driver: D) -> (R, ExecStats)
    where
        I: Send,
        T: Send,
        F: Fn(WorkerCtx, I) -> T + Sync,
        D: FnOnce(&SessionHandle<'_, I, T>) -> R,
    {
        self.session_observed(work, driver, &NoopObserver)
    }

    /// [`session`](Executor::session) with an [`ExecObserver`] whose
    /// callbacks fire from inside the worker threads.
    pub fn session_observed<I, T, R, F, D>(
        &self,
        work: F,
        driver: D,
        observer: &dyn ExecObserver,
    ) -> (R, ExecStats)
    where
        I: Send,
        T: Send,
        F: Fn(WorkerCtx, I) -> T + Sync,
        D: FnOnce(&SessionHandle<'_, I, T>) -> R,
    {
        let shared: Shared<I, T> = Shared::new(self.threads);
        let out = std::thread::scope(|scope| {
            for w in 0..self.threads {
                let shared = &shared;
                let work = &work;
                scope.spawn(move || shared.worker_loop(w, work, observer));
            }
            let _guard = ShutdownGuard(&shared);
            let handle = SessionHandle {
                shared: &shared,
                round_robin: AtomicUsize::new(0),
                observer,
            };
            driver(&handle)
        });
        let stats = shared.into_stats(self.threads);
        (out, stats)
    }

    /// Static batch fan-out: runs `work` over every item and returns the
    /// results *in input order* (the deterministic ordered merge), each
    /// individually `Err` if its task panicked.
    pub fn map_ordered<I, T, F>(
        &self,
        items: Vec<I>,
        work: F,
    ) -> (Vec<Result<T, TaskPanic>>, ExecStats)
    where
        I: Send,
        T: Send,
        F: Fn(WorkerCtx, I) -> T + Sync,
    {
        self.map_ordered_observed(items, work, &NoopObserver)
    }

    /// [`map_ordered`](Executor::map_ordered) with an [`ExecObserver`]
    /// whose callbacks fire from inside the worker threads.
    pub fn map_ordered_observed<I, T, F>(
        &self,
        items: Vec<I>,
        work: F,
        observer: &dyn ExecObserver,
    ) -> (Vec<Result<T, TaskPanic>>, ExecStats)
    where
        I: Send,
        T: Send,
        F: Fn(WorkerCtx, I) -> T + Sync,
    {
        let n = items.len();
        self.session_observed(
            work,
            move |handle| {
                for (i, item) in items.into_iter().enumerate() {
                    handle.submit(i as TaskId, item);
                }
                let mut slots: Vec<Option<Result<T, TaskPanic>>> = (0..n).map(|_| None).collect();
                let mut filled = 0usize;
                while filled < n {
                    let c = handle.recv().expect("submitted tasks all complete");
                    let slot = &mut slots[c.task as usize];
                    debug_assert!(slot.is_none(), "map_ordered task ids are unique");
                    if slot.is_none() {
                        filled += 1;
                    }
                    *slot = Some(c.result);
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every slot filled"))
                    .collect()
            },
            observer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_batch_counts_through_the_submission_hook() {
        struct Counting(AtomicU64);
        impl ExecObserver for Counting {
            fn task_submitted(&self, _worker: usize, _task: TaskId) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let observer = Counting(AtomicU64::new(0));
        let exec = Executor::new(3);
        let (total, stats) = exec.session_observed(
            |_ctx, x: u64| x + 1,
            |handle| {
                handle.submit_batch((0u64..40).map(|i| (i, i)));
                let mut total = 0u64;
                while let Some(c) = handle.recv() {
                    total += c.result.expect("no panics");
                }
                total
            },
            &observer,
        );
        assert_eq!(total, (1u64..=40).sum::<u64>());
        assert_eq!(stats.tasks_executed, 40);
        assert_eq!(observer.0.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn map_ordered_preserves_input_order() {
        let exec = Executor::new(4);
        let (out, stats) = exec.map_ordered((0u64..200).collect(), |_ctx, x| x * 3);
        let out: Vec<u64> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(out, (0u64..200).map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(stats.tasks_executed, 200);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.per_worker_executed.iter().sum::<u64>(), 200);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let exec = Executor::new(0);
        assert_eq!(exec.threads(), 1);
        let (out, stats) = exec.map_ordered(vec![5u64], |_ctx, x| x + 1);
        assert_eq!(out[0].as_ref().unwrap(), &6);
        assert_eq!(stats.per_worker_executed, vec![1]);
    }

    #[test]
    fn empty_session_recv_returns_none() {
        let exec = Executor::new(2);
        let (got, stats) = exec.session(|_ctx, x: u64| x, |handle| handle.recv().is_none());
        assert!(got, "no submissions → recv must not block");
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn panics_are_isolated_per_task() {
        let exec = Executor::new(3);
        let (out, stats) = exec.map_ordered((0u64..30).collect(), |_ctx, x| {
            assert!(x % 7 != 3, "injected panic on {x}");
            x
        });
        let mut panicked = 0;
        for (i, r) in out.iter().enumerate() {
            if i as u64 % 7 == 3 {
                assert!(r.is_err(), "task {i} must panic");
                assert!(r.as_ref().unwrap_err().message.contains("injected panic"));
                panicked += 1;
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64);
            }
        }
        assert_eq!(stats.tasks_panicked, panicked);
        assert_eq!(
            stats.tasks_executed, 30,
            "panicked tasks still count as executed"
        );
    }

    #[test]
    fn pinned_submissions_get_stolen() {
        // All tasks land on worker 0's deque; with 4 workers the others
        // can only make progress by stealing.
        let exec = Executor::new(4);
        let (got, stats) = exec.session(
            |_ctx, x: u64| {
                // Enough work per task that worker 0 cannot drain the
                // deque before the thieves wake up.
                let mut acc = x;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
                x
            },
            |handle| {
                for i in 0..256u64 {
                    handle.submit_to(0, i, i);
                }
                let mut seen = 0u64;
                while handle.recv().is_some() {
                    seen += 1;
                }
                seen
            },
        );
        assert_eq!(got, 256);
        assert_eq!(stats.tasks_executed, 256);
        assert!(stats.steal_ops > 0, "thieves must steal from worker 0");
        assert!(
            stats.tasks_stolen >= stats.steal_ops,
            "steal-half moves ≥1 task per op"
        );
        assert!(
            stats.queue_depth_peak >= 128,
            "deque 0 held the bulk of the backlog"
        );
    }

    #[test]
    fn observer_sees_every_task_and_steal() {
        struct Recorder {
            tasks: AtomicU64,
            timed: AtomicU64,
            panicked: AtomicU64,
            steals: AtomicU64,
            moved: AtomicU64,
        }
        impl ExecObserver for Recorder {
            fn wants_timing(&self) -> bool {
                true
            }
            fn steal(&self, thief: usize, victim: usize, moved: usize) {
                assert_ne!(thief, victim);
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.moved.fetch_add(moved as u64, Ordering::Relaxed);
            }
            fn task_finished(&self, _ctx: WorkerCtx, dur_ns: u64, panicked: bool) {
                self.tasks.fetch_add(1, Ordering::Relaxed);
                if dur_ns > 0 {
                    self.timed.fetch_add(1, Ordering::Relaxed);
                }
                if panicked {
                    self.panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let recorder = Recorder {
            tasks: AtomicU64::new(0),
            timed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            moved: AtomicU64::new(0),
        };
        let exec = Executor::new(4);
        let (_, stats) = exec.map_ordered_observed(
            (0u64..200).collect(),
            |_ctx, x| {
                assert!(x != 13, "injected panic");
                let mut acc = x;
                for i in 0..5_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc)
            },
            &recorder,
        );
        assert_eq!(recorder.tasks.load(Ordering::Relaxed), 200);
        assert_eq!(recorder.panicked.load(Ordering::Relaxed), 1);
        assert_eq!(stats.tasks_panicked, 1);
        assert!(
            recorder.timed.load(Ordering::Relaxed) > 0,
            "wants_timing must produce nonzero durations"
        );
        assert_eq!(
            recorder.steals.load(Ordering::Relaxed),
            stats.steal_ops,
            "observer steal callbacks must match ExecStats exactly"
        );
        assert_eq!(recorder.moved.load(Ordering::Relaxed), stats.tasks_stolen);
    }

    #[test]
    fn driver_can_stop_early_and_drop_queued_tasks() {
        let exec = Executor::new(2);
        let ((), stats) = exec.session(
            |_ctx, x: u64| {
                std::thread::sleep(std::time::Duration::from_millis(u64::from(x == 0)));
                x
            },
            |handle| {
                for i in 0..64u64 {
                    handle.submit(i, i);
                }
                // Take one completion and walk away.
                let _ = handle.recv();
            },
        );
        assert!(stats.tasks_executed >= 1);
        assert_eq!(
            stats.tasks_executed + stats.tasks_dropped,
            64,
            "every task either ran or was dropped at shutdown"
        );
    }

    #[test]
    fn stats_are_an_exact_post_join_snapshot_under_stress() {
        // The `ExecStats` snapshot invariants must hold *exactly* on
        // every run, not just on average: stats are read after the
        // scope joins the workers, so no counter can still be moving.
        // Hammer many short racy sessions (drivers that walk away at
        // random points) and demand exact accounting each time.
        for iteration in 0..200u64 {
            let threads = [1, 2, 3, 4][(iteration % 4) as usize];
            let submitted = 1 + (iteration * 7) % 40;
            let receive = (iteration * 3) % (submitted + 1);
            let exec = Executor::new(threads as usize);
            let ((), stats) = exec.session(
                |_ctx, x: u64| {
                    if x.is_multiple_of(5) {
                        std::thread::yield_now();
                    }
                    std::hint::black_box(x.wrapping_mul(2862933555777941757));
                },
                |handle| {
                    for i in 0..submitted {
                        // Pin everything to worker 0 so multi-thread
                        // runs exercise the steal path too.
                        handle.submit_to(0, i, i);
                    }
                    for _ in 0..receive {
                        let _ = handle.recv();
                    }
                },
            );
            let ctx = format!("iteration {iteration}: {stats:?}");
            assert_eq!(
                stats.tasks_executed + stats.tasks_dropped,
                submitted,
                "executed + dropped must equal submitted exactly ({ctx})"
            );
            assert_eq!(
                stats.per_worker_executed.iter().sum::<u64>(),
                stats.tasks_executed,
                "per-worker counts must sum to the total exactly ({ctx})"
            );
            assert_eq!(stats.per_worker_executed.len(), threads as usize);
            assert_eq!(stats.tasks_panicked, 0, "{ctx}");
            assert!(
                stats.tasks_executed >= receive,
                "every received completion was executed ({ctx})"
            );
            assert!(
                stats.tasks_stolen >= stats.steal_ops,
                "each successful steal moves at least one task ({ctx})"
            );
            // Note: `tasks_stolen` counts *moves*, and a task parked in
            // a thief's deque can be stolen again — so it may exceed
            // the number of distinct tasks.
            if threads == 1 {
                assert_eq!(stats.steal_ops, 0, "{ctx}");
                assert_eq!(stats.tasks_stolen, 0, "{ctx}");
            }
        }
    }

    #[test]
    fn stats_roll_up_per_worker_counts() {
        let exec = Executor::new(2);
        let (_, stats) = exec.map_ordered((0u64..50).collect(), |_ctx, x| x);
        assert_eq!(stats.per_worker_executed.len(), 2);
        assert_eq!(
            stats.per_worker_executed.iter().sum::<u64>(),
            stats.tasks_executed
        );
        assert_eq!(stats.tasks_dropped, 0);
    }
}
