//! Trails: the per-identity spatiotemporal evidence on each side of the
//! fused dataset.

use ev_core::ids::Eid;
use ev_core::region::CellId;
use ev_core::scenario::ZoneAttr;
use ev_core::time::{TimeRange, Timestamp};
use ev_store::EScenarioStore;
use serde::{Deserialize, Serialize};

/// One electronic observation: the device was heard in `cell` during the
/// window starting at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrailPoint {
    /// Window start.
    pub time: Timestamp,
    /// The cell whose base station heard the device.
    pub cell: CellId,
    /// Confidence zone of the observation.
    pub attr: ZoneAttr,
}

/// The electronic trail of one EID: its coarse-grained trajectory
/// through the scenario grid, in time order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ETrail {
    /// Observations in (time, cell) order.
    pub points: Vec<TrailPoint>,
}

impl ETrail {
    /// Reconstructs the trail of `eid` from the E-store.
    #[must_use]
    pub fn of(store: &EScenarioStore, eid: Eid) -> Self {
        let mut points: Vec<TrailPoint> = store
            .containing(eid)
            .filter_map(|s| {
                s.attr(eid).map(|attr| TrailPoint {
                    time: s.time(),
                    cell: s.cell(),
                    attr,
                })
            })
            .collect();
        points.sort_by_key(|p| (p.time, p.cell));
        ETrail { points }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the device was never heard.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observations within a time range.
    pub fn within(&self, range: TimeRange) -> impl Iterator<Item = &TrailPoint> {
        self.points.iter().filter(move |p| range.contains(p.time))
    }

    /// The confident (inclusive-zone) observations only.
    pub fn confident(&self) -> impl Iterator<Item = &TrailPoint> {
        self.points.iter().filter(|p| p.attr == ZoneAttr::Inclusive)
    }

    /// Distinct cells the device was heard in.
    #[must_use]
    pub fn cells_visited(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self.points.iter().map(|p| p.cell).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// First and last observation times, if any.
    #[must_use]
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.points.first()?.time;
        let last = self.points.last()?.time;
        Some((first, last))
    }
}

/// One visual sighting: the person's VID was detected in `cell`'s
/// footage at the window starting at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VSighting {
    /// Window start.
    pub time: Timestamp,
    /// The cell whose camera filmed the person.
    pub cell: CellId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::scenario::EScenario;

    fn store() -> EScenarioStore {
        let mk = |cell: usize, t: u64, eids: &[(u64, ZoneAttr)]| {
            let mut s = EScenario::new(CellId::new(cell), Timestamp::new(t));
            for &(e, attr) in eids {
                s.insert(Eid::from_u64(e), attr);
            }
            s
        };
        EScenarioStore::from_scenarios(vec![
            mk(0, 0, &[(1, ZoneAttr::Inclusive), (2, ZoneAttr::Inclusive)]),
            mk(1, 10, &[(1, ZoneAttr::Vague)]),
            mk(2, 20, &[(1, ZoneAttr::Inclusive)]),
            mk(0, 30, &[(2, ZoneAttr::Inclusive)]),
        ])
    }

    #[test]
    fn trail_reconstruction_is_time_ordered() {
        let trail = ETrail::of(&store(), Eid::from_u64(1));
        assert_eq!(trail.len(), 3);
        let times: Vec<u64> = trail.points.iter().map(|p| p.time.tick()).collect();
        assert_eq!(times, vec![0, 10, 20]);
        assert_eq!(trail.span(), Some((Timestamp::new(0), Timestamp::new(20))));
        assert_eq!(trail.cells_visited().len(), 3);
    }

    #[test]
    fn unknown_eid_has_empty_trail() {
        let trail = ETrail::of(&store(), Eid::from_u64(9));
        assert!(trail.is_empty());
        assert_eq!(trail.span(), None);
        assert!(trail.cells_visited().is_empty());
    }

    #[test]
    fn confident_filter_drops_vague_points() {
        let trail = ETrail::of(&store(), Eid::from_u64(1));
        let confident: Vec<_> = trail.confident().collect();
        assert_eq!(confident.len(), 2);
        assert!(confident.iter().all(|p| p.attr == ZoneAttr::Inclusive));
    }

    #[test]
    fn within_respects_the_range() {
        let trail = ETrail::of(&store(), Eid::from_u64(1));
        let range = TimeRange::new(Timestamp::new(5), Timestamp::new(25));
        let hits: Vec<_> = trail.within(range).collect();
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .all(|p| p.time.tick() >= 5 && p.time.tick() < 25));
    }
}
