//! Fused EV queries over matched identities.
//!
//! Matching is the means; *fusion* is the end the paper motivates:
//! "we are further able to fuse these two big and heterogeneous datasets,
//! and retrieve the E and V information for a person at the same time
//! with one single query" (§I).
//!
//! A [`FusedIndex`] is built from a [`MatchReport`](ev_matching::MatchReport)
//! and the two stores. It answers:
//!
//! * [`profile_by_eid`](FusedIndex::profile_by_eid) /
//!   [`profile_by_vid`](FusedIndex::profile_by_vid) — one query, both
//!   sides: the electronic trail (every scenario that heard the device)
//!   and the visual sightings (every *processed* scenario that filmed
//!   the person).
//! * [`present_at`](FusedIndex::present_at) — spatiotemporal search:
//!   which fused identities were in a cell set during a time range,
//!   by electronic or visual evidence.
//! * [`encounters`](FusedIndex::encounters) — co-location analysis: who
//!   shared scenarios with a person of interest, how often.
//!
//! The paper's evaluation (§VI) stops at matching, so nothing here maps
//! to a figure; this crate reproduces the *application* layer §I
//! promises on top of the matched identities (see `DESIGN.md` §14,
//! "Beyond the paper"). The `crime_scene` and `universal_labeling`
//! examples drive it end to end.
//!
//! Visual evidence only covers footage that has already been extracted
//! (extraction is the expensive operation the matcher minimizes); the
//! index never silently triggers new extraction work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod trail;

pub use index::{Encounter, FusedIdentity, FusedIndex, FusedProfile};
pub use trail::{ETrail, TrailPoint, VSighting};
