//! The fused identity index.

use crate::trail::{ETrail, VSighting};
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::ScenarioId;
use ev_core::time::TimeRange;
use ev_matching::MatchReport;
use ev_store::{EScenarioStore, VideoStore};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One matched person: the link between an electronic and a visual
/// identity, with the matcher's confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedIdentity {
    /// The electronic identity.
    pub eid: Eid,
    /// The matched visual identity.
    pub vid: Vid,
    /// The matcher's vote share for this link.
    pub vote_share: f64,
    /// The matcher's joint membership probability for this link.
    pub confidence: f64,
}

/// The answer to a single fused query: both sides of one person's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedProfile {
    /// The identity link.
    pub identity: FusedIdentity,
    /// The electronic trail (every scenario that heard the device).
    pub e_trail: ETrail,
    /// Visual sightings within the already-processed footage.
    pub v_sightings: Vec<VSighting>,
}

/// A co-location record: another identity seen together with the queried
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encounter {
    /// The other person's electronic identity.
    pub eid: Eid,
    /// Number of scenarios shared (electronic evidence).
    pub shared_scenarios: usize,
}

/// An index over the matched identities of one [`MatchReport`], answering
/// fused E+V queries without re-running any matching.
///
/// Only majority matches enter the index; ambiguous outcomes are not
/// trustworthy enough to label footage with.
#[derive(Debug)]
pub struct FusedIndex<'a> {
    estore: &'a EScenarioStore,
    video: &'a VideoStore,
    by_eid: BTreeMap<Eid, FusedIdentity>,
    by_vid: BTreeMap<Vid, FusedIdentity>,
    /// Footage that the matching run already paid to extract.
    processed: BTreeSet<ScenarioId>,
}

impl<'a> FusedIndex<'a> {
    /// Builds the index from a finished matching run.
    #[must_use]
    pub fn build(estore: &'a EScenarioStore, video: &'a VideoStore, report: &MatchReport) -> Self {
        let mut by_eid = BTreeMap::new();
        let mut by_vid = BTreeMap::new();
        for outcome in &report.outcomes {
            if !outcome.is_majority() {
                continue;
            }
            let Some(vid) = outcome.vid else { continue };
            let identity = FusedIdentity {
                eid: outcome.eid,
                vid,
                vote_share: outcome.vote_share,
                confidence: outcome.confidence,
            };
            by_eid.insert(outcome.eid, identity);
            // On a vid collision keep the stronger link.
            by_vid
                .entry(vid)
                .and_modify(|existing: &mut FusedIdentity| {
                    if identity.vote_share > existing.vote_share {
                        *existing = identity;
                    }
                })
                .or_insert(identity);
        }
        FusedIndex {
            estore,
            video,
            by_eid,
            by_vid,
            processed: report.selected_scenarios.clone(),
        }
    }

    /// Number of fused identities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_eid.len()
    }

    /// Whether no identities were fused.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_eid.is_empty()
    }

    /// Iterates over all fused identities in EID order.
    pub fn identities(&self) -> impl Iterator<Item = &FusedIdentity> {
        self.by_eid.values()
    }

    /// The identity link for an EID, if it was matched.
    #[must_use]
    pub fn identity_of_eid(&self, eid: Eid) -> Option<FusedIdentity> {
        self.by_eid.get(&eid).copied()
    }

    /// The identity link for a VID, if some EID matched to it.
    #[must_use]
    pub fn identity_of_vid(&self, vid: Vid) -> Option<FusedIdentity> {
        self.by_vid.get(&vid).copied()
    }

    /// One query, both datasets: the full profile for an EID.
    #[must_use]
    pub fn profile_by_eid(&self, eid: Eid) -> Option<FusedProfile> {
        let identity = self.identity_of_eid(eid)?;
        Some(self.assemble(identity))
    }

    /// One query, both datasets: the full profile for a VID.
    #[must_use]
    pub fn profile_by_vid(&self, vid: Vid) -> Option<FusedProfile> {
        let identity = self.identity_of_vid(vid)?;
        Some(self.assemble(identity))
    }

    fn assemble(&self, identity: FusedIdentity) -> FusedProfile {
        let e_trail = ETrail::of(self.estore, identity.eid);
        let mut v_sightings: Vec<VSighting> = self
            .processed
            .iter()
            .filter_map(|&id| {
                let footage = self.video.extract(id)?;
                footage.contains(identity.vid).then_some(VSighting {
                    time: id.time,
                    cell: id.cell,
                })
            })
            .collect();
        v_sightings.sort_unstable();
        FusedProfile {
            identity,
            e_trail,
            v_sightings,
        }
    }

    /// Spatiotemporal search: fused identities present in any of `cells`
    /// during `range`, by electronic evidence (base-station captures).
    #[must_use]
    pub fn present_at(&self, cells: &[CellId], range: TimeRange) -> Vec<FusedIdentity> {
        let mut hits: BTreeSet<Eid> = BTreeSet::new();
        for scenario in self.estore.query(range, Some(cells)) {
            for eid in scenario.eids() {
                if self.by_eid.contains_key(&eid) {
                    hits.insert(eid);
                }
            }
        }
        hits.into_iter()
            .filter_map(|e| self.identity_of_eid(e))
            .collect()
    }

    /// Co-location analysis: every other matched identity that shared at
    /// least `min_shared` E-Scenarios with `eid`, strongest first.
    #[must_use]
    pub fn encounters(&self, eid: Eid, min_shared: usize) -> Vec<Encounter> {
        let mut counts: BTreeMap<Eid, usize> = BTreeMap::new();
        for scenario in self.estore.containing(eid) {
            for other in scenario.eids() {
                if other != eid && self.by_eid.contains_key(&other) {
                    *counts.entry(other).or_insert(0) += 1;
                }
            }
        }
        let mut encounters: Vec<Encounter> = counts
            .into_iter()
            .filter(|&(_, n)| n >= min_shared.max(1))
            .map(|(eid, shared_scenarios)| Encounter {
                eid,
                shared_scenarios,
            })
            .collect();
        encounters.sort_by_key(|e| (std::cmp::Reverse(e.shared_scenarios), e.eid));
        encounters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::FeatureVector;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_matching::{EvMatcher, MatcherConfig};
    use ev_vision::cost::CostModel;

    /// A tiny world where persons 0..4 visit deterministic cells.
    fn world() -> (EScenarioStore, VideoStore) {
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1]),
            (0, 1, vec![2, 3]),
            (10, 0, vec![0, 2]),
            (10, 1, vec![1, 3]),
            (20, 0, vec![0, 3]),
            (20, 1, vec![1, 2]),
        ];
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 4];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).expect("valid"),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn matched_index<'a>(
        estore: &'a EScenarioStore,
        video: &'a VideoStore,
    ) -> (FusedIndex<'a>, MatchReport) {
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let matcher = EvMatcher::new(estore, video, MatcherConfig::default());
        let report = matcher.match_many(&targets).expect("sequential");
        (FusedIndex::build(estore, video, &report), report)
    }

    #[test]
    fn index_contains_all_majority_matches() {
        let (estore, video) = world();
        let (index, report) = matched_index(&estore, &video);
        let majorities = report.outcomes.iter().filter(|o| o.is_majority()).count();
        assert_eq!(index.len(), majorities);
        assert!(!index.is_empty());
        assert_eq!(index.identities().count(), index.len());
    }

    #[test]
    fn profiles_link_both_sides() {
        let (estore, video) = world();
        let (index, _) = matched_index(&estore, &video);
        let eid = Eid::from_u64(0);
        let profile = index.profile_by_eid(eid).expect("matched");
        assert_eq!(profile.identity.eid, eid);
        assert_eq!(profile.identity.vid, Vid::new(0));
        assert_eq!(profile.e_trail.len(), 3, "heard at t=0,10,20");
        assert!(
            !profile.v_sightings.is_empty(),
            "person 0 appears in processed footage"
        );
        // Round-trip by vid.
        let by_vid = index.profile_by_vid(Vid::new(0)).expect("matched");
        assert_eq!(by_vid.identity.eid, eid);
    }

    #[test]
    fn unknown_identities_return_none() {
        let (estore, video) = world();
        let (index, _) = matched_index(&estore, &video);
        assert!(index.profile_by_eid(Eid::from_u64(99)).is_none());
        assert!(index.profile_by_vid(Vid::new(99)).is_none());
    }

    #[test]
    fn spatiotemporal_search_finds_occupants() {
        let (estore, video) = world();
        let (index, _) = matched_index(&estore, &video);
        let cells = [CellId::new(0)];
        let range = TimeRange::new(Timestamp::new(0), Timestamp::new(11));
        let found = index.present_at(&cells, range);
        // Cell 0 hosted {0,1} at t=0 and {0,2} at t=10.
        let eids: BTreeSet<u64> = found.iter().map(|i| i.eid.as_u64()).collect();
        assert!(eids.contains(&0));
        assert!(eids.contains(&1));
        assert!(eids.contains(&2));
        assert!(!eids.contains(&3));
        // An empty window finds nobody.
        let nobody = index.present_at(
            &cells,
            TimeRange::new(Timestamp::new(40), Timestamp::new(50)),
        );
        assert!(nobody.is_empty());
    }

    #[test]
    fn encounters_count_shared_scenarios() {
        let (estore, video) = world();
        let (index, _) = matched_index(&estore, &video);
        // Person 0 shares exactly one scenario with each of 1, 2, 3.
        let encounters = index.encounters(Eid::from_u64(0), 1);
        assert_eq!(encounters.len(), 3);
        for e in &encounters {
            assert_eq!(e.shared_scenarios, 1);
        }
        // Raising the threshold filters everyone out.
        assert!(index.encounters(Eid::from_u64(0), 2).is_empty());
    }

    #[test]
    fn profile_serializes() {
        let (estore, video) = world();
        let (index, _) = matched_index(&estore, &video);
        let profile = index.profile_by_eid(Eid::from_u64(1)).expect("matched");
        let json = serde_json::to_string(&profile).expect("serializable");
        let back: FusedProfile = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.identity.eid, profile.identity.eid);
        assert_eq!(back.identity.vid, profile.identity.vid);
        // JSON float round-trips can differ in the last ULP.
        assert!((back.identity.confidence - profile.identity.confidence).abs() < 1e-12);
        assert_eq!(back.e_trail, profile.e_trail);
        assert_eq!(back.v_sightings, profile.v_sightings);
    }
}
