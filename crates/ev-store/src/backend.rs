//! [`StoreBackend`]: one trait over every way a corpus can be held.
//!
//! The matching pipelines only ever need two things from a corpus: the
//! indexed E-Scenario store and the video store. This trait abstracts
//! over where those live — built in memory ([`MemoryBackend`]), loaded
//! from a persistent segment directory (`ev_disk::DiskBackend`), or
//! generated (`ev_datagen::EvDataset`) — so `refine`, the incremental
//! updater and the mapreduce driver run unchanged against any of them.

use crate::estore::EScenarioStore;
use crate::video::VideoStore;

/// A source of the two stores the matching pipelines read.
///
/// Implementations hand out references, so a backend materializes its
/// stores once (at construction or load) and every pipeline borrows
/// them; nothing about the trait forces a copy per run.
pub trait StoreBackend {
    /// The indexed E-Scenario store.
    fn estore(&self) -> &EScenarioStore;

    /// The video corpus with its cost model.
    fn video(&self) -> &VideoStore;
}

impl<B: StoreBackend + ?Sized> StoreBackend for &B {
    fn estore(&self) -> &EScenarioStore {
        (**self).estore()
    }

    fn video(&self) -> &VideoStore {
        (**self).video()
    }
}

/// A pair of already-borrowed stores is itself a backend — the adapter
/// that lets existing call sites holding `(&estore, &video)` feed the
/// backend-generic entry points without restructuring.
impl StoreBackend for (&EScenarioStore, &VideoStore) {
    fn estore(&self) -> &EScenarioStore {
        self.0
    }

    fn video(&self) -> &VideoStore {
        self.1
    }
}

/// The in-memory backend: owns both stores directly.
#[derive(Debug)]
pub struct MemoryBackend {
    estore: EScenarioStore,
    video: VideoStore,
}

impl MemoryBackend {
    /// Wraps already-built stores.
    #[must_use]
    pub fn new(estore: EScenarioStore, video: VideoStore) -> Self {
        MemoryBackend { estore, video }
    }

    /// Consumes the backend, handing the stores back.
    #[must_use]
    pub fn into_parts(self) -> (EScenarioStore, VideoStore) {
        (self.estore, self.video)
    }
}

impl StoreBackend for MemoryBackend {
    fn estore(&self) -> &EScenarioStore {
        &self.estore
    }

    fn video(&self) -> &VideoStore {
        &self.video
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ids::Eid;
    use ev_core::region::CellId;
    use ev_core::scenario::{EScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    fn backend() -> MemoryBackend {
        let mut s = EScenario::new(CellId::new(0), Timestamp::new(0));
        s.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
        MemoryBackend::new(
            EScenarioStore::from_scenarios(vec![s]),
            VideoStore::new(vec![], CostModel::default()),
        )
    }

    #[test]
    fn memory_backend_borrows_its_stores() {
        let b = backend();
        assert_eq!(b.estore().len(), 1);
        assert!(b.video().is_empty());
        // A reference to a backend is a backend.
        let by_ref: &dyn StoreBackend = &&b;
        assert_eq!(by_ref.estore().len(), 1);
    }

    #[test]
    fn store_pair_is_a_backend() {
        let b = backend();
        let (estore, video) = b.into_parts();
        let pair = (&estore, &video);
        assert_eq!(pair.estore().len(), 1);
        assert!(pair.video().is_empty());
    }
}
