//! The E-Scenario store: an indexed, queryable collection of E-Scenarios.

use crate::index::ScenarioIndex;
use ev_core::ids::Eid;
use ev_core::region::CellId;
use ev_core::scenario::{EScenario, ScenarioId};
use ev_core::time::{TimeRange, Timestamp};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// What one [`EScenarioStore::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Scenarios taken from the batch (collisions still count; the
    /// colliding newer scenario replaced the stored one).
    pub appended: usize,
    /// `true` when the batch forced a full index rebuild; `false` on
    /// the pure-append splice path, which does `O(batch)` index work.
    pub rebuilt: bool,
}

/// An immutable, indexed collection of E-Scenarios.
///
/// Indexes are built once at construction: scenario-id lookup, a
/// time-major index (for Algorithm 3's pick-a-random-timestamp step) and a
/// cell-major index (for spatial queries). The inverted EID → scenario
/// index ([`ScenarioIndex`]) is built lazily on first use and then shared
/// by every pipeline reading the store.
#[derive(Debug)]
pub struct EScenarioStore {
    scenarios: Vec<EScenario>,
    by_id: BTreeMap<ScenarioId, usize>,
    by_time: BTreeMap<Timestamp, Vec<usize>>,
    by_cell: BTreeMap<CellId, Vec<usize>>,
    /// Lazily built inverted index. Excluded from equality, cloning and
    /// serialization: it is derived state, rebuilt on demand.
    inverted: OnceLock<ScenarioIndex>,
}

impl Clone for EScenarioStore {
    fn clone(&self) -> Self {
        EScenarioStore {
            scenarios: self.scenarios.clone(),
            by_id: self.by_id.clone(),
            by_time: self.by_time.clone(),
            by_cell: self.by_cell.clone(),
            // A clone starts with a fresh (unbuilt) index so its usage
            // counters are independent of the original's.
            inverted: OnceLock::new(),
        }
    }
}

impl PartialEq for EScenarioStore {
    fn eq(&self, other: &Self) -> bool {
        // The lookup maps and the inverted index are all derived from
        // `scenarios`; comparing the source of truth is enough.
        self.scenarios == other.scenarios
    }
}

impl Serialize for EScenarioStore {
    fn to_value(&self) -> serde::Value {
        // Only the scenarios are persisted; every index is rebuilt on
        // deserialization (they are pure functions of the scenarios).
        self.scenarios.to_value()
    }
}

impl Deserialize for EScenarioStore {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(EScenarioStore::from_scenarios(
            Vec::<EScenario>::from_value(value)?,
        ))
    }
}

impl EScenarioStore {
    /// Builds a store from scenarios. Later duplicates of the same
    /// scenario id replace earlier ones.
    #[must_use]
    pub fn from_scenarios(scenarios: Vec<EScenario>) -> Self {
        let mut dedup: BTreeMap<ScenarioId, EScenario> = BTreeMap::new();
        for s in scenarios {
            dedup.insert(s.id(), s);
        }
        let scenarios: Vec<EScenario> = dedup.into_values().collect();
        let mut by_id = BTreeMap::new();
        let mut by_time: BTreeMap<Timestamp, Vec<usize>> = BTreeMap::new();
        let mut by_cell: BTreeMap<CellId, Vec<usize>> = BTreeMap::new();
        for (i, s) in scenarios.iter().enumerate() {
            by_id.insert(s.id(), i);
            by_time.entry(s.time()).or_default().push(i);
            by_cell.entry(s.cell()).or_default().push(i);
        }
        EScenarioStore {
            scenarios,
            by_id,
            by_time,
            by_cell,
            inverted: OnceLock::new(),
        }
    }

    /// The inverted EID → scenario index, built on first call and cached
    /// for the lifetime of the store.
    #[must_use]
    pub fn index(&self) -> &ScenarioIndex {
        self.inverted
            .get_or_init(|| ScenarioIndex::build(self.scenarios.iter()))
    }

    /// Number of scenarios stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Looks a scenario up by id.
    #[must_use]
    pub fn get(&self, id: ScenarioId) -> Option<&EScenario> {
        self.by_id.get(&id).map(|&i| &self.scenarios[i])
    }

    /// Iterates over all scenarios in id order.
    pub fn iter(&self) -> impl Iterator<Item = &EScenario> {
        self.scenarios.iter()
    }

    /// Iterates, in id order, over the scenarios whose id is strictly
    /// greater than `after` — the suffix a streaming
    /// [`ingest`](Self::ingest) splices in. `O(log n)` to locate the
    /// start, then one step per yielded scenario; the incremental
    /// set-splitting delta-update walks only this suffix instead of
    /// re-scanning the store.
    pub fn iter_after(&self, after: ScenarioId) -> impl Iterator<Item = &EScenario> {
        use std::ops::Bound;
        self.by_id
            .range((Bound::Excluded(after), Bound::Unbounded))
            .map(|(_, &i)| &self.scenarios[i])
    }

    /// All distinct timestamps with at least one scenario, ascending.
    pub fn times(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.by_time.keys().copied()
    }

    /// Scenarios snapshotted at exactly `t`.
    pub fn at_time(&self, t: Timestamp) -> impl Iterator<Item = &EScenario> {
        self.by_time
            .get(&t)
            .into_iter()
            .flatten()
            .map(|&i| &self.scenarios[i])
    }

    /// All distinct cells with at least one scenario, ascending.
    pub(crate) fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.by_cell.keys().copied()
    }

    /// Scenarios covering `cell`, in time order.
    pub fn at_cell(&self, cell: CellId) -> impl Iterator<Item = &EScenario> {
        self.by_cell
            .get(&cell)
            .into_iter()
            .flatten()
            .map(|&i| &self.scenarios[i])
    }

    /// Spatiotemporal range query: scenarios within `range` and, if given,
    /// restricted to `cells`.
    pub fn query<'a>(
        &'a self,
        range: TimeRange,
        cells: Option<&'a [CellId]>,
    ) -> impl Iterator<Item = &'a EScenario> + 'a {
        self.by_time
            .range(range.start..range.end)
            .flat_map(|(_, idxs)| idxs.iter())
            .map(move |&i| &self.scenarios[i])
            .filter(move |s| cells.is_none_or(|cs| cs.contains(&s.cell())))
    }

    /// All scenarios containing `eid`, in id (= scan) order. Answered
    /// from the inverted index posting list — `O(|postings| log |store|)`
    /// instead of a full scan — with results identical to
    /// [`containing_scan`](EScenarioStore::containing_scan).
    pub fn containing(&self, eid: Eid) -> impl Iterator<Item = &EScenario> {
        self.index()
            .postings(eid)
            .iter()
            .filter_map(move |&id| self.get(id))
    }

    /// Scan-based reference implementation of
    /// [`containing`](EScenarioStore::containing): walks every scenario's
    /// membership map. Kept for equivalence tests and as the comparison
    /// baseline in the index benchmarks.
    pub fn containing_scan(&self, eid: Eid) -> impl Iterator<Item = &EScenario> {
        self.scenarios.iter().filter(move |s| s.contains(eid))
    }

    /// Picks a uniformly random timestamp among those present
    /// (Algorithm 3's preprocess step), or `None` on an empty store.
    #[must_use]
    pub fn random_time(&self, rng: &mut ChaCha8Rng) -> Option<Timestamp> {
        let times: Vec<Timestamp> = self.by_time.keys().copied().collect();
        times.choose(rng).copied()
    }

    /// Appends a batch of scenarios in place, splicing the indexes when
    /// possible instead of rebuilding them.
    ///
    /// The **fast path** applies when every scenario in `batch` has an
    /// id strictly greater than everything already stored (the common
    /// shape of an incremental ingest: today's snapshots all sort after
    /// yesterday's, because scenario ids order time-major). It appends
    /// to the scenario vector, splices the id/time/cell maps, and — if
    /// the inverted index was already built — extends its posting lists
    /// in place, all in `O(batch × log |store|)` work. Posting lists
    /// stay sorted because every appended id is greater than every id
    /// already posted.
    ///
    /// Batches with collisions, out-of-order ids, or internal duplicates
    /// fall back to a full rebuild (`rebuilt = true` in the returned
    /// stats), preserving the later-wins semantics of
    /// [`EScenarioStore::from_scenarios`].
    pub fn ingest(&mut self, mut batch: Vec<EScenario>) -> IngestStats {
        if batch.is_empty() {
            return IngestStats {
                appended: 0,
                rebuilt: false,
            };
        }
        batch.sort_by_key(EScenario::id);
        let internally_unique = batch.windows(2).all(|w| w[0].id() < w[1].id());
        let after_existing = match self.scenarios.last() {
            Some(last) => batch[0].id() > last.id(),
            None => true,
        };
        if !(internally_unique && after_existing) {
            let mut all = std::mem::take(&mut self.scenarios);
            let appended = batch.len();
            all.extend(batch);
            *self = EScenarioStore::from_scenarios(all);
            return IngestStats {
                appended,
                rebuilt: true,
            };
        }

        // Fast path: pure append. Extend the built inverted index (if
        // any) rather than dropping it; `OnceLock::take` hands it back
        // for in-place splicing.
        if let Some(mut index) = self.inverted.take() {
            index.extend(batch.iter());
            let _ = self.inverted.set(index);
        }
        let appended = batch.len();
        for s in batch {
            let i = self.scenarios.len();
            self.by_id.insert(s.id(), i);
            self.by_time.entry(s.time()).or_default().push(i);
            self.by_cell.entry(s.cell()).or_default().push(i);
            self.scenarios.push(s);
        }
        IngestStats {
            appended,
            rebuilt: false,
        }
    }

    /// Combines this store with `newer` scenarios (e.g. the next day's
    /// ingest); on a scenario-id collision the newer scenario wins.
    /// Delegates to [`EScenarioStore::ingest`], so strictly-newer
    /// batches splice instead of rebuilding.
    #[must_use]
    pub fn merged(&self, newer: &EScenarioStore) -> EScenarioStore {
        let mut out = self.clone();
        out.ingest(newer.scenarios.clone());
        out
    }

    /// Total number of (scenario, EID) membership records — the raw E-data
    /// volume, used by the cost accounting.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.scenarios.iter().map(|s| s.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::scenario::ZoneAttr;
    use rand::SeedableRng;

    fn scenario(cell: usize, time: u64, eids: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in eids {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        s
    }

    fn store() -> EScenarioStore {
        EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[1, 2]),
            scenario(1, 0, &[3]),
            scenario(0, 1, &[1]),
            scenario(2, 2, &[2, 3]),
        ])
    }

    #[test]
    fn basic_lookup() {
        let s = store();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let id = ScenarioId::new(Timestamp::new(0), CellId::new(1));
        assert_eq!(s.get(id).unwrap().len(), 1);
        let missing = ScenarioId::new(Timestamp::new(9), CellId::new(9));
        assert!(s.get(missing).is_none());
    }

    #[test]
    fn duplicate_ids_are_replaced() {
        let s =
            EScenarioStore::from_scenarios(vec![scenario(0, 0, &[1]), scenario(0, 0, &[1, 2, 3])]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().len(), 3, "later wins");
    }

    #[test]
    fn time_index() {
        let s = store();
        assert_eq!(s.at_time(Timestamp::new(0)).count(), 2);
        assert_eq!(s.at_time(Timestamp::new(1)).count(), 1);
        assert_eq!(s.at_time(Timestamp::new(9)).count(), 0);
        let times: Vec<u64> = s.times().map(Timestamp::tick).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn cell_index() {
        let s = store();
        assert_eq!(s.at_cell(CellId::new(0)).count(), 2);
        assert_eq!(s.at_cell(CellId::new(2)).count(), 1);
        assert_eq!(s.at_cell(CellId::new(9)).count(), 0);
    }

    #[test]
    fn range_query_with_and_without_cells() {
        let s = store();
        let range = TimeRange::new(Timestamp::new(0), Timestamp::new(2));
        assert_eq!(s.query(range, None).count(), 3, "t in {{0, 1}}");
        let cells = [CellId::new(0)];
        assert_eq!(s.query(range, Some(&cells)).count(), 2);
        let empty = TimeRange::new(Timestamp::new(5), Timestamp::new(9));
        assert_eq!(s.query(empty, None).count(), 0);
    }

    #[test]
    fn containing_scans_memberships() {
        let s = store();
        assert_eq!(s.containing(Eid::from_u64(1)).count(), 2);
        assert_eq!(s.containing(Eid::from_u64(3)).count(), 2);
        assert_eq!(s.containing(Eid::from_u64(9)).count(), 0);
    }

    #[test]
    fn containing_matches_scan_reference() {
        let s = store();
        for e in 0..10 {
            let eid = Eid::from_u64(e);
            let indexed: Vec<ScenarioId> = s.containing(eid).map(EScenario::id).collect();
            let scanned: Vec<ScenarioId> = s.containing_scan(eid).map(EScenario::id).collect();
            assert_eq!(indexed, scanned, "order and content for EID {e}");
        }
    }

    #[test]
    fn index_is_built_once_and_survives_clone() {
        let s = store();
        let first = s.index() as *const _;
        let second = s.index() as *const _;
        assert_eq!(first, second, "same cached index");
        let cloned = s.clone();
        assert_eq!(cloned, s, "clone equals original");
        assert_eq!(
            cloned.index().stats().postings_probed,
            0,
            "clone starts with fresh counters"
        );
    }

    #[test]
    fn serde_round_trip_rebuilds_indexes() {
        let s = store();
        let value = s.to_value();
        let back = EScenarioStore::from_value(&value).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.at_time(Timestamp::new(0)).count(), 2);
        assert_eq!(back.containing(Eid::from_u64(1)).count(), 2);
    }

    #[test]
    fn random_time_draws_from_present_times() {
        let s = store();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..20 {
            let t = s.random_time(&mut rng).unwrap();
            assert!(t.tick() <= 2);
        }
        let empty = EScenarioStore::from_scenarios(vec![]);
        assert!(empty.random_time(&mut rng).is_none());
    }

    #[test]
    fn record_count_sums_memberships() {
        assert_eq!(store().record_count(), 6);
    }

    #[test]
    fn ingest_appends_splice_instead_of_rebuilding() {
        let mut s = store();
        // Build the inverted index and leave a fingerprint on its usage
        // counters; a rebuild would discard them.
        let _ = s.containing(Eid::from_u64(1)).count();
        assert_eq!(s.index().stats().postings_probed, 1);

        // Every batch id sorts after everything stored: splice path.
        let stats = s.ingest(vec![scenario(1, 3, &[1, 9]), scenario(0, 4, &[2])]);
        assert_eq!(
            stats,
            IngestStats {
                appended: 2,
                rebuilt: false
            }
        );
        assert_eq!(
            s.index().stats().postings_probed,
            1,
            "the built index survived the ingest (no rebuild)"
        );

        // Spliced store answers queries exactly like a fresh rebuild.
        let rebuilt = EScenarioStore::from_scenarios(s.iter().cloned().collect());
        assert_eq!(s, rebuilt);
        for e in 0..10 {
            let eid = Eid::from_u64(e);
            let spliced: Vec<ScenarioId> = s.containing(eid).map(EScenario::id).collect();
            let scanned: Vec<ScenarioId> = s.containing_scan(eid).map(EScenario::id).collect();
            let reference: Vec<ScenarioId> = rebuilt.containing(eid).map(EScenario::id).collect();
            assert_eq!(spliced, scanned, "EID {e}: index matches scan");
            assert_eq!(spliced, reference, "EID {e}: splice matches rebuild");
        }
        assert_eq!(s.at_time(Timestamp::new(3)).count(), 1);
        assert_eq!(s.at_cell(CellId::new(0)).count(), 3);
    }

    #[test]
    fn repeated_small_ingests_never_rebuild() {
        // The regression this guards: `merged` used to re-index the
        // whole store per batch, making N daily ingests O(N²·store).
        // Appending strictly-newer snapshots must stay on the splice
        // path every single time.
        let mut s = store();
        let _ = s.index();
        for day in 3..40u64 {
            let stats = s.ingest(vec![scenario(0, day, &[day]), scenario(1, day, &[1])]);
            assert!(!stats.rebuilt, "append-only batch for day {day} rebuilt");
        }
        assert_eq!(s.len(), 4 + 37 * 2);
        assert_eq!(s.containing(Eid::from_u64(1)).count(), 2 + 37);
    }

    #[test]
    fn colliding_or_out_of_order_ingest_falls_back_to_rebuild() {
        let mut s = store();
        let _ = s.index();
        // Collides with the stored (t0, c0) scenario.
        let stats = s.ingest(vec![scenario(0, 0, &[7])]);
        assert!(stats.rebuilt);
        let id = ScenarioId::new(Timestamp::new(0), CellId::new(0));
        assert!(s.get(id).unwrap().contains(Eid::from_u64(7)), "later wins");
        assert!(!s.get(id).unwrap().contains(Eid::from_u64(1)));

        // Internal duplicate: also a rebuild, last duplicate wins.
        let mut s2 = store();
        let stats = s2.ingest(vec![scenario(9, 9, &[1]), scenario(9, 9, &[2])]);
        assert!(stats.rebuilt);
        let id9 = ScenarioId::new(Timestamp::new(9), CellId::new(9));
        assert!(s2.get(id9).unwrap().contains(Eid::from_u64(2)));

        // Empty batch is a no-op either way.
        let stats = s2.ingest(vec![]);
        assert_eq!(
            stats,
            IngestStats {
                appended: 0,
                rebuilt: false
            }
        );
    }

    #[test]
    fn merged_unions_and_prefers_newer() {
        let old = store();
        let newer = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[9]),    // collides with (t0, c0): newer wins
            scenario(5, 7, &[4, 5]), // brand new
        ]);
        let merged = old.merged(&newer);
        assert_eq!(merged.len(), old.len() + 1);
        let id = ScenarioId::new(Timestamp::new(0), CellId::new(0));
        assert!(merged.get(id).unwrap().contains(Eid::from_u64(9)));
        assert!(!merged.get(id).unwrap().contains(Eid::from_u64(1)));
        assert_eq!(merged.at_time(Timestamp::new(7)).count(), 1);
    }
}
