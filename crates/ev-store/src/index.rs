//! Inverted scenario index: EID → postings and (cell, time) → scenario
//! lookups over an [`EScenarioStore`](crate::EScenarioStore).
//!
//! The matching pipelines repeatedly ask two questions of the E-data:
//! *"which scenarios contain this EID?"* (set splitting, EDP
//! E-filtering, anchor/padding selection) and *"does this scenario
//! contain this EID?"* (split-gain evaluation). Both were answered by
//! linear scans over every scenario's membership map. This module
//! answers them from a one-time inverted build:
//!
//! * `postings` — for every EID, the sorted list of [`ScenarioId`]s that
//!   contain it. Scenario ids order as `(time, cell)`, which is exactly
//!   the store's iteration order, so walking a posting list visits the
//!   same scenarios in the same order as a full scan — the index-backed
//!   paths are drop-in replacements with byte-identical results.
//! * `slots` — `(cell, time)` → scenario id, for spatiotemporal point
//!   lookups.
//!
//! The index also keeps usage counters (postings probed, membership
//! binary-searches, scans avoided) behind atomics so `&self` consumers
//! can report them through the pipeline metrics.

use ev_core::ids::Eid;
use ev_core::region::CellId;
use ev_core::scenario::{EScenario, ScenarioId};
use ev_core::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of the index usage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IndexStatsSnapshot {
    /// Posting lists fetched (one per `postings`/`containing` call).
    pub postings_probed: u64,
    /// O(log n) membership queries answered by binary search.
    pub membership_queries: u64,
    /// Full-store scans avoided by answering from the index instead.
    pub scans_avoided: u64,
}

impl IndexStatsSnapshot {
    /// Counter-wise difference `self - earlier` (for per-stage deltas).
    #[must_use]
    pub fn since(&self, earlier: &IndexStatsSnapshot) -> IndexStatsSnapshot {
        IndexStatsSnapshot {
            postings_probed: self.postings_probed - earlier.postings_probed,
            membership_queries: self.membership_queries - earlier.membership_queries,
            scans_avoided: self.scans_avoided - earlier.scans_avoided,
        }
    }
}

#[derive(Debug, Default)]
struct IndexStats {
    postings_probed: AtomicU64,
    membership_queries: AtomicU64,
    scans_avoided: AtomicU64,
}

/// An inverted index over one [`EScenarioStore`](crate::EScenarioStore).
///
/// Built once per store (lazily, behind
/// [`EScenarioStore::index`](crate::EScenarioStore::index)) and shared by
/// every pipeline that reads the store.
#[derive(Debug, Default)]
pub struct ScenarioIndex {
    /// EID → scenario ids containing it, ascending (= store order).
    postings: BTreeMap<Eid, Vec<ScenarioId>>,
    /// (cell, time) → the scenario snapshotted there.
    slots: BTreeMap<(CellId, Timestamp), ScenarioId>,
    stats: IndexStats,
    /// Wall time the one-time build took.
    build_time: std::time::Duration,
}

impl ScenarioIndex {
    /// Builds the index from scenarios already sorted in id order (the
    /// store's canonical order). One pass over every membership record.
    #[must_use]
    pub fn build<'a>(scenarios: impl IntoIterator<Item = &'a EScenario>) -> Self {
        let start = std::time::Instant::now();
        let mut postings: BTreeMap<Eid, Vec<ScenarioId>> = BTreeMap::new();
        let mut slots = BTreeMap::new();
        for s in scenarios {
            let id = s.id();
            slots.insert((id.cell, id.time), id);
            for eid in s.eids() {
                postings.entry(eid).or_default().push(id);
            }
        }
        ScenarioIndex {
            postings,
            slots,
            stats: IndexStats::default(),
            build_time: start.elapsed(),
        }
    }

    /// Wall time the one-time build took (zero for a defaulted index).
    #[must_use]
    pub fn build_time(&self) -> std::time::Duration {
        self.build_time
    }

    /// Splices scenarios into the index *without* a rebuild.
    ///
    /// Every appended posting keeps its list sorted **only if** each new
    /// scenario id is greater than every id already indexed (scenario
    /// ids order time-major, so appending strictly-newer snapshots
    /// qualifies). Callers must guarantee that ordering — the
    /// append-only ingest path of
    /// [`EScenarioStore::ingest`](crate::EScenarioStore::ingest) does —
    /// and fall back to [`ScenarioIndex::build`] otherwise. Usage
    /// counters and build time are preserved.
    pub fn extend<'a>(&mut self, scenarios: impl IntoIterator<Item = &'a EScenario>) {
        for s in scenarios {
            let id = s.id();
            self.slots.insert((id.cell, id.time), id);
            for eid in s.eids() {
                self.postings.entry(eid).or_default().push(id);
            }
        }
    }

    /// The sorted posting list for `eid` (empty when the EID never
    /// appears). Ascending scenario-id order — identical to the order a
    /// full store scan would visit the containing scenarios.
    #[must_use]
    pub fn postings(&self, eid: Eid) -> &[ScenarioId] {
        self.stats.postings_probed.fetch_add(1, Ordering::Relaxed);
        self.stats.scans_avoided.fetch_add(1, Ordering::Relaxed);
        self.postings.get(&eid).map_or(&[], Vec::as_slice)
    }

    /// Whether scenario `id` contains `eid` — one binary search on the
    /// posting list instead of a scenario-map lookup per probe.
    #[must_use]
    pub fn contains(&self, eid: Eid, id: ScenarioId) -> bool {
        self.stats
            .membership_queries
            .fetch_add(1, Ordering::Relaxed);
        self.postings
            .get(&eid)
            .is_some_and(|p| p.binary_search(&id).is_ok())
    }

    /// Number of scenarios containing `eid`, without a scan.
    #[must_use]
    pub fn posting_len(&self, eid: Eid) -> usize {
        self.postings.get(&eid).map_or(0, Vec::len)
    }

    /// The scenario snapshotted at `(cell, time)`, if any.
    #[must_use]
    pub fn scenario_at(&self, cell: CellId, time: Timestamp) -> Option<ScenarioId> {
        self.slots.get(&(cell, time)).copied()
    }

    /// Number of distinct EIDs with at least one posting.
    #[must_use]
    pub fn eid_count(&self) -> usize {
        self.postings.len()
    }

    /// Iterates `(eid, posting list)` pairs in EID order.
    pub fn iter_postings(&self) -> impl Iterator<Item = (Eid, &[ScenarioId])> {
        self.postings.iter().map(|(&e, p)| (e, p.as_slice()))
    }

    /// Records that a consumer avoided a full-store scan by other means
    /// (e.g. a cached intermediate derived from the index).
    pub fn note_scan_avoided(&self) {
        self.stats.scans_avoided.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the usage counters.
    #[must_use]
    pub fn stats(&self) -> IndexStatsSnapshot {
        IndexStatsSnapshot {
            postings_probed: self.stats.postings_probed.load(Ordering::Relaxed),
            membership_queries: self.stats.membership_queries.load(Ordering::Relaxed),
            scans_avoided: self.stats.scans_avoided.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::scenario::ZoneAttr;

    fn scenario(cell: usize, time: u64, eids: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in eids {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        s
    }

    fn sid(cell: usize, time: u64) -> ScenarioId {
        ScenarioId::new(Timestamp::new(time), CellId::new(cell))
    }

    fn index() -> ScenarioIndex {
        let scenarios = [
            scenario(0, 0, &[1, 2]),
            scenario(1, 0, &[3]),
            scenario(0, 1, &[1]),
            scenario(2, 2, &[2, 3]),
        ];
        ScenarioIndex::build(scenarios.iter())
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let idx = index();
        assert_eq!(idx.postings(Eid::from_u64(1)), &[sid(0, 0), sid(0, 1)]);
        assert_eq!(idx.postings(Eid::from_u64(3)), &[sid(1, 0), sid(2, 2)]);
        assert!(idx.postings(Eid::from_u64(9)).is_empty());
        assert_eq!(idx.eid_count(), 3);
        for (_, p) in idx.iter_postings() {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        }
    }

    #[test]
    fn membership_queries_answer_in_log_time() {
        let idx = index();
        assert!(idx.contains(Eid::from_u64(2), sid(0, 0)));
        assert!(idx.contains(Eid::from_u64(2), sid(2, 2)));
        assert!(!idx.contains(Eid::from_u64(2), sid(0, 1)));
        assert!(!idx.contains(Eid::from_u64(9), sid(0, 0)));
        assert_eq!(idx.posting_len(Eid::from_u64(2)), 2);
        assert_eq!(idx.posting_len(Eid::from_u64(9)), 0);
    }

    #[test]
    fn slot_lookup_finds_scenarios() {
        let idx = index();
        assert_eq!(
            idx.scenario_at(CellId::new(2), Timestamp::new(2)),
            Some(sid(2, 2))
        );
        assert_eq!(idx.scenario_at(CellId::new(2), Timestamp::new(0)), None);
    }

    #[test]
    fn stats_count_usage() {
        let idx = index();
        let before = idx.stats();
        let _ = idx.postings(Eid::from_u64(1));
        let _ = idx.contains(Eid::from_u64(1), sid(0, 0));
        idx.note_scan_avoided();
        let delta = idx.stats().since(&before);
        assert_eq!(delta.postings_probed, 1);
        assert_eq!(delta.membership_queries, 1);
        assert_eq!(delta.scans_avoided, 2, "postings() also avoids a scan");
    }

    #[test]
    fn empty_store_indexes_cleanly() {
        let idx = ScenarioIndex::build(std::iter::empty());
        assert_eq!(idx.eid_count(), 0);
        assert!(idx.postings(Eid::from_u64(0)).is_empty());
    }
}
