//! Spatiotemporal scenario database.
//!
//! The matching algorithms consume scenarios through two stores with very
//! different cost profiles:
//!
//! * [`EScenarioStore`] — cheap, fully materialized E-Scenarios with a
//!   time-major and cell-major index and range queries (the "big spatial
//!   data" side of the paper's related work);
//! * [`VideoStore`] — the raw video corpus. A V-Scenario is only *handles*
//!   until [`VideoStore::extract`] runs human detection and feature
//!   extraction on it, which charges the vision cost model. Extraction is
//!   cached: a V-Scenario reused for several EIDs is processed once
//!   (paper §IV-A: "we only need to process this V-Scenario once").
//!
//! # Example
//!
//! ```
//! use ev_core::{EScenario, ZoneAttr, Eid};
//! use ev_core::region::CellId;
//! use ev_core::time::Timestamp;
//! use ev_store::EScenarioStore;
//!
//! let mut s = EScenario::new(CellId::new(0), Timestamp::new(5));
//! s.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
//! let store = EScenarioStore::from_scenarios(vec![s]);
//! assert_eq!(store.len(), 1);
//! assert_eq!(store.at_time(Timestamp::new(5)).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod estore;
mod index;
mod shard;
mod video;

pub use backend::{MemoryBackend, StoreBackend};
pub use estore::{EScenarioStore, IngestStats};
pub use index::{IndexStatsSnapshot, ScenarioIndex};
pub use shard::CellShard;
pub use video::{VideoStore, VideoStoreStats};
