//! Cell-sharded views over an [`EScenarioStore`].
//!
//! Sharded matching (paper §V) distributes work across workers by
//! *cell*: every scenario belongs to exactly one cell, so partitioning
//! the cell set partitions the scenario set with no overlap. A
//! [`CellShard`] is a borrowed view — it owns only its cell list and
//! reads scenarios straight out of the parent store, so shards are
//! cheap to build and safe to hand to worker threads (`EScenarioStore`
//! is `Sync`; the shards never mutate it).
//!
//! [`EScenarioStore::shard_cells`] deals cells round-robin in ascending
//! cell order, which keeps shard sizes within one cell of each other
//! *by cell count* (scenario counts may still skew when cells are hot —
//! exactly the imbalance the work-stealing executor absorbs).

use crate::estore::EScenarioStore;
use crate::index::ScenarioIndex;
use ev_core::region::CellId;
use ev_core::scenario::EScenario;

/// A borrowed, read-only view of the scenarios in one shard's cells.
#[derive(Debug, Clone)]
pub struct CellShard<'a> {
    store: &'a EScenarioStore,
    cells: Vec<CellId>,
}

impl<'a> CellShard<'a> {
    /// The cells this shard owns, ascending.
    #[must_use]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Iterates the shard's scenarios: cells ascending, time ascending
    /// within each cell. Deterministic for a given (store, cell set).
    pub fn scenarios(&self) -> impl Iterator<Item = &'a EScenario> + '_ {
        let store = self.store;
        self.cells.iter().flat_map(move |&c| store.at_cell(c))
    }

    /// Number of scenarios in the shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios().count()
    }

    /// Whether the shard holds no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios().next().is_none()
    }

    /// Builds a private inverted EID → scenario index over just this
    /// shard's scenarios. Each worker indexes its own shard, so index
    /// construction parallelizes with the rest of the shard's work and
    /// no usage counters are shared across threads.
    #[must_use]
    pub fn build_index(&self) -> ScenarioIndex {
        ScenarioIndex::build(self.scenarios())
    }
}

impl EScenarioStore {
    /// Splits the store's cells into `shards` disjoint [`CellShard`]
    /// views, dealing cells round-robin in ascending order. The union
    /// of all shards' scenarios is exactly the store; shards whose turn
    /// never comes (more shards than cells) are returned empty so the
    /// caller can zip shards to workers positionally.
    ///
    /// The partition depends only on the store contents and `shards`,
    /// never on thread scheduling.
    #[must_use]
    pub fn shard_cells(&self, shards: usize) -> Vec<CellShard<'_>> {
        let shards = shards.max(1);
        let mut out: Vec<CellShard<'_>> = (0..shards)
            .map(|_| CellShard {
                store: self,
                cells: Vec::new(),
            })
            .collect();
        for (i, cell) in self.cell_ids().enumerate() {
            out[i % shards].cells.push(cell);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use ev_core::ids::Eid;
    use ev_core::scenario::{EScenario, ScenarioId, ZoneAttr};
    use ev_core::time::Timestamp;

    use super::*;

    fn scenario(cell: usize, time: u64, eids: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in eids {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        s
    }

    fn store() -> EScenarioStore {
        EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[1, 2]),
            scenario(1, 0, &[3]),
            scenario(0, 1, &[1]),
            scenario(2, 2, &[2, 3]),
            scenario(3, 2, &[4]),
            scenario(4, 3, &[1, 4]),
        ])
    }

    #[test]
    fn shards_partition_every_scenario_exactly_once() {
        let s = store();
        for k in 1..=7 {
            let shards = s.shard_cells(k);
            assert_eq!(shards.len(), k);
            let mut seen: Vec<ScenarioId> = shards
                .iter()
                .flat_map(|sh| sh.scenarios().map(EScenario::id))
                .collect();
            seen.sort();
            let all: Vec<ScenarioId> = s.iter().map(EScenario::id).collect();
            assert_eq!(seen, all, "k={k}: union of shards is the store");
        }
    }

    #[test]
    fn cells_deal_round_robin_in_ascending_order() {
        let s = store();
        let shards = s.shard_cells(2);
        let cells: Vec<Vec<usize>> = shards
            .iter()
            .map(|sh| sh.cells().iter().map(|c| c.index()).collect())
            .collect();
        assert_eq!(cells, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn more_shards_than_cells_yields_empty_tails() {
        let s = store();
        let shards = s.shard_cells(9);
        assert_eq!(shards.len(), 9);
        assert!(shards[5].is_empty() && shards[8].is_empty());
        assert_eq!(shards[0].len(), 2, "cell 0 has two scenarios");
    }

    #[test]
    fn shard_index_answers_like_the_global_index_restricted_to_the_shard() {
        let s = store();
        for shard in s.shard_cells(3) {
            let index = shard.build_index();
            for e in 0..6 {
                let eid = Eid::from_u64(e);
                let local: Vec<ScenarioId> = index.postings(eid).to_vec();
                let expected: Vec<ScenarioId> = shard
                    .scenarios()
                    .filter(|sc| sc.contains(eid))
                    .map(EScenario::id)
                    .collect();
                // Postings are id-ordered; shard iteration is cell-major.
                let mut expected_sorted = expected.clone();
                expected_sorted.sort();
                assert_eq!(local, expected_sorted, "EID {e}");
            }
        }
    }
}
