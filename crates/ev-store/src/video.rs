//! The video store: raw footage handles with lazily cached, cost-charged
//! V-Scenario extraction.

use ev_core::scenario::{ScenarioId, VScenario};
use ev_vision::cost::{CostLedger, CostModel};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Usage statistics of a [`VideoStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VideoStoreStats {
    /// Distinct V-Scenarios extracted so far.
    pub extracted_scenarios: usize,
    /// Extraction requests answered from the cache.
    pub cache_hits: u64,
    /// Total detections processed by extraction.
    pub extracted_detections: u64,
}

/// The raw video corpus, keyed by scenario id.
///
/// Conceptually the store holds unprocessed footage; calling
/// [`extract`](VideoStore::extract) runs (simulated) human detection and
/// feature extraction, charging [`CostModel::v_extraction`] work units per
/// detection to the store's [`CostLedger`] and burning the equivalent
/// busy-work. Repeat extractions of the same scenario are free cache hits
/// — this is what makes scenario *reuse* across EIDs profitable for the
/// set-splitting algorithm.
///
/// The store is `Sync`: parallel mappers may extract concurrently.
#[derive(Debug)]
pub struct VideoStore {
    footage: BTreeMap<ScenarioId, Arc<VScenario>>,
    cost: CostModel,
    ledger: CostLedger,
    state: Mutex<ExtractState>,
}

#[derive(Debug, Default)]
struct ExtractState {
    processed: BTreeSet<ScenarioId>,
    cache_hits: u64,
    extracted_detections: u64,
}

impl VideoStore {
    /// Builds a store over pre-generated footage with the given cost
    /// model.
    #[must_use]
    pub fn new(scenarios: Vec<VScenario>, cost: CostModel) -> Self {
        let footage = scenarios
            .into_iter()
            .map(|s| (s.id(), Arc::new(s)))
            .collect();
        VideoStore {
            footage,
            cost,
            ledger: CostLedger::new(),
            state: Mutex::new(ExtractState::default()),
        }
    }

    /// Number of scenario footage entries (processed or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.footage.len()
    }

    /// Whether the store holds no footage.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.footage.is_empty()
    }

    /// Whether footage exists for `id`.
    #[must_use]
    pub fn contains(&self, id: ScenarioId) -> bool {
        self.footage.contains_key(&id)
    }

    /// Iterates the raw footage in scenario-id order *without*
    /// extracting it (no vision cost is charged). This is the
    /// persistence export path: `ev-disk` walks it to encode
    /// V-segments.
    pub fn scenarios(&self) -> impl Iterator<Item = &VScenario> {
        self.footage.values().map(Arc::as_ref)
    }

    /// Extracts the V-Scenario for `id`, charging extraction cost on the
    /// first call and serving from cache afterwards. Returns `None` when
    /// no footage covers `id` (e.g. nobody was detected there).
    #[must_use]
    pub fn extract(&self, id: ScenarioId) -> Option<Arc<VScenario>> {
        let scenario = self.footage.get(&id)?;
        let first_time = {
            let mut state = self.state.lock();
            if state.processed.contains(&id) {
                state.cache_hits += 1;
                false
            } else {
                state.processed.insert(id);
                state.extracted_detections += scenario.len() as u64;
                true
            }
        };
        if first_time {
            let units = self.cost.v_extraction * scenario.len() as u64;
            self.ledger.add_v(units);
            // Burn the work outside the lock so concurrent extractions of
            // different scenarios overlap.
            let _ = CostModel::charge(units);
        }
        Some(Arc::clone(scenario))
    }

    /// Compares two features' worth of work: charges one
    /// [`CostModel::v_comparison`] to the ledger and burns it. The caller
    /// performs the actual similarity computation.
    pub fn charge_comparison(&self) {
        self.ledger.add_v(self.cost.v_comparison);
        let _ = CostModel::charge(self.cost.v_comparison);
    }

    /// The cost ledger accumulating this store's simulated work.
    #[must_use]
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The cost model in force.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Current usage statistics.
    #[must_use]
    pub fn stats(&self) -> VideoStoreStats {
        let state = self.state.lock();
        VideoStoreStats {
            extracted_scenarios: state.processed.len(),
            cache_hits: state.cache_hits,
            extracted_detections: state.extracted_detections,
        }
    }

    /// Combines this corpus with `newer` footage (e.g. the next day's
    /// ingest); on a scenario-id collision the newer footage wins. The
    /// merged store starts with fresh usage state and this store's cost
    /// model.
    #[must_use]
    pub fn merged(&self, newer: &VideoStore) -> VideoStore {
        let mut footage = self.footage.clone();
        for (id, scenario) in &newer.footage {
            footage.insert(*id, Arc::clone(scenario));
        }
        VideoStore {
            footage,
            cost: self.cost,
            ledger: CostLedger::new(),
            state: Mutex::new(ExtractState::default()),
        }
    }

    /// Splices an ingest batch into the store in place — the streaming
    /// counterpart of [`merged`](Self::merged). On a scenario-id
    /// collision the newer footage wins, and any cached extraction of
    /// the stale footage is forgotten so the next
    /// [`extract`](Self::extract) re-processes (and re-charges) the
    /// replacement. Returns the number of entries inserted or replaced.
    pub fn ingest(&mut self, batch: Vec<VScenario>) -> usize {
        let n = batch.len();
        let state = self.state.get_mut();
        for s in batch {
            let id = s.id();
            if self.footage.insert(id, Arc::new(s)).is_some() {
                state.processed.remove(&id);
            }
        }
        n
    }

    /// Forgets all cached extractions and zeroes the ledger (for running
    /// several experiments against the same corpus).
    pub fn reset_usage(&self) {
        let mut state = self.state.lock();
        state.processed.clear();
        state.cache_hits = 0;
        state.extracted_detections = 0;
        self.ledger.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::Detection;
    use ev_core::time::Timestamp;
    use ev_core::Vid;

    fn vscenario(cell: usize, time: u64, vids: &[u64]) -> VScenario {
        let mut s = VScenario::new(CellId::new(cell), Timestamp::new(time));
        for &v in vids {
            s.push(Detection {
                vid: Vid::new(v),
                feature: FeatureVector::new(vec![0.5, 0.5]).unwrap(),
            });
        }
        s
    }

    fn store() -> VideoStore {
        VideoStore::new(
            vec![vscenario(0, 0, &[1, 2]), vscenario(1, 0, &[3])],
            CostModel {
                e_record: 1,
                v_extraction: 10,
                v_comparison: 5,
            },
        )
    }

    fn id(cell: usize, time: u64) -> ScenarioId {
        ScenarioId::new(Timestamp::new(time), CellId::new(cell))
    }

    #[test]
    fn extraction_returns_footage() {
        let s = store();
        assert_eq!(s.len(), 2);
        let v = s.extract(id(0, 0)).unwrap();
        assert_eq!(v.len(), 2);
        assert!(s.extract(id(9, 9)).is_none());
    }

    #[test]
    fn extraction_charges_once_and_caches() {
        let s = store();
        let _ = s.extract(id(0, 0));
        assert_eq!(s.ledger().v_units(), 20, "2 detections x 10 units");
        let _ = s.extract(id(0, 0));
        assert_eq!(s.ledger().v_units(), 20, "second extract is a cache hit");
        let stats = s.stats();
        assert_eq!(stats.extracted_scenarios, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.extracted_detections, 2);
    }

    #[test]
    fn comparison_charges_each_time() {
        let s = store();
        s.charge_comparison();
        s.charge_comparison();
        assert_eq!(s.ledger().v_units(), 10);
    }

    #[test]
    fn reset_usage_clears_everything() {
        let s = store();
        let _ = s.extract(id(0, 0));
        s.reset_usage();
        assert_eq!(s.ledger().total_units(), 0);
        assert_eq!(s.stats(), VideoStoreStats::default());
        // Extraction charges again after a reset.
        let _ = s.extract(id(0, 0));
        assert_eq!(s.ledger().v_units(), 20);
    }

    #[test]
    fn merged_unions_footage_with_fresh_usage() {
        let a = store();
        let _ = a.extract(id(0, 0));
        let newer = VideoStore::new(vec![vscenario(9, 9, &[7])], a.cost_model());
        let merged = a.merged(&newer);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.stats(), VideoStoreStats::default(), "fresh usage");
        assert!(merged.extract(id(9, 9)).is_some());
        assert!(merged.extract(id(0, 0)).is_some());
    }

    #[test]
    fn concurrent_extraction_charges_each_scenario_once() {
        let scenarios: Vec<VScenario> = (0..16).map(|i| vscenario(i, 0, &[i as u64])).collect();
        let s = Arc::new(VideoStore::new(
            scenarios,
            CostModel {
                e_record: 0,
                v_extraction: 7,
                v_comparison: 0,
            },
        ));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        let _ = s.extract(id(i, 0));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.ledger().v_units(), 16 * 7, "each scenario charged once");
        assert_eq!(s.stats().extracted_scenarios, 16);
    }
}
