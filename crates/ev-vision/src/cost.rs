//! The visual processing cost model.
//!
//! In the paper's testbed, V-stage time dominates E-stage time because
//! human detection and feature extraction are computation-intensive
//! (§VI-B: "E stage costs negligible time while the time spent in V stage
//! dominates"). Our synthetic gallery makes extraction trivially cheap, so
//! the time figures would lose their shape without a cost model.
//!
//! [`CostModel`] restores the asymmetry two ways at once:
//!
//! * [`CostModel::charge`] performs deterministic **busy-work** calibrated
//!   in abstract *work units*, so parallel execution over the MapReduce
//!   engine yields genuine wall-clock speedups; and
//! * a [`CostLedger`] tallies simulated work units per stage, giving
//!   machine-independent numbers the experiment harness can report
//!   alongside wall time.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Work-unit prices for the operations of the EV-Matching pipeline.
///
/// One work unit corresponds to one iteration of the busy-work kernel
/// (roughly a few nanoseconds; calibrate with [`CostModel::calibrate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Units to scan one E-record during E-stage processing.
    pub e_record: u64,
    /// Units to detect humans and extract features for **one detection**
    /// in a V-Scenario (the dominant cost).
    pub v_extraction: u64,
    /// Units to compare two extracted feature vectors.
    pub v_comparison: u64,
}

impl Default for CostModel {
    /// Defaults chosen so V extraction dwarfs E-record handling, matching
    /// the paper's regime (seconds of vision work per scenario vs.
    /// microseconds per log row), while keeping full experiment sweeps
    /// tractable on a single-core machine (~100 µs of busy-work per
    /// extracted detection at ~4e8 units/s).
    fn default() -> Self {
        CostModel {
            e_record: 10,
            v_extraction: 50_000,
            v_comparison: 2_000,
        }
    }
}

impl CostModel {
    /// A zero-cost model (all prices zero) for tests that only care about
    /// algorithmic results.
    #[must_use]
    pub const fn free() -> Self {
        CostModel {
            e_record: 0,
            v_extraction: 0,
            v_comparison: 0,
        }
    }

    /// Burns `units` of deterministic CPU work and returns a checksum
    /// (so the optimizer cannot elide the loop).
    pub fn charge(units: u64) -> u64 {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for i in 0..units {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            acc ^= acc >> 29;
        }
        std::hint::black_box(acc)
    }

    /// Measures how many work units this machine executes per
    /// microsecond, for translating ledgers into estimated seconds.
    #[must_use]
    pub fn calibrate() -> f64 {
        let units = 2_000_000;
        let start = std::time::Instant::now();
        let _ = Self::charge(units);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        units as f64 / (elapsed * 1e6)
    }
}

/// A thread-safe tally of simulated work, split by pipeline stage.
#[derive(Debug, Default)]
pub struct CostLedger {
    e_units: AtomicU64,
    v_units: AtomicU64,
}

impl CostLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Adds `units` of E-stage work.
    pub fn add_e(&self, units: u64) {
        self.e_units.fetch_add(units, Ordering::Relaxed);
    }

    /// Adds `units` of V-stage work.
    pub fn add_v(&self, units: u64) {
        self.v_units.fetch_add(units, Ordering::Relaxed);
    }

    /// Total E-stage units so far.
    #[must_use]
    pub fn e_units(&self) -> u64 {
        self.e_units.load(Ordering::Relaxed)
    }

    /// Total V-stage units so far.
    #[must_use]
    pub fn v_units(&self) -> u64 {
        self.v_units.load(Ordering::Relaxed)
    }

    /// Total units across both stages.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.e_units() + self.v_units()
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.e_units.store(0, Ordering::Relaxed);
        self.v_units.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_makes_vision_dominant() {
        let m = CostModel::default();
        assert!(m.v_extraction > 1_000 * m.e_record);
        assert!(m.v_comparison > m.e_record);
    }

    #[test]
    fn charge_is_deterministic_and_scales() {
        assert_eq!(CostModel::charge(1000), CostModel::charge(1000));
        assert_ne!(CostModel::charge(1000), CostModel::charge(1001));
        assert_eq!(CostModel::charge(0), CostModel::charge(0));
    }

    #[test]
    fn calibration_reports_positive_throughput() {
        let per_us = CostModel::calibrate();
        assert!(per_us > 0.0);
    }

    #[test]
    fn ledger_accumulates_and_resets() {
        let ledger = CostLedger::new();
        ledger.add_e(5);
        ledger.add_e(7);
        ledger.add_v(100);
        assert_eq!(ledger.e_units(), 12);
        assert_eq!(ledger.v_units(), 100);
        assert_eq!(ledger.total_units(), 112);
        ledger.reset();
        assert_eq!(ledger.total_units(), 0);
    }

    #[test]
    fn ledger_is_thread_safe() {
        let ledger = std::sync::Arc::new(CostLedger::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = ledger.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.add_v(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.v_units(), 8000);
    }
}
