//! Ground-truth appearance models.
//!
//! Stands in for the CUHK02 image corpus: each person has one canonical
//! appearance descriptor; every detection of that person observes a noisy
//! copy. Distinct persons get independently drawn vectors, which in a
//! `[0, 1]^d` cube are far apart with overwhelming probability for
//! d ≳ 32 — mirroring how real re-id features separate identities.

use ev_core::feature::FeatureVector;
use ev_core::ids::PersonId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The ground-truth appearance vectors of a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppearanceGallery {
    features: Vec<FeatureVector>,
    dim: usize,
}

impl AppearanceGallery {
    /// Generates a gallery for `population` persons with `dim`-dimensional
    /// descriptors, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero — a zero-dimensional appearance model is a
    /// programming error.
    #[must_use]
    pub fn generate(population: u64, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "appearance dimension must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let features = (0..population)
            .map(|_| {
                let components: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
                FeatureVector::from_clamped(components)
            })
            .collect();
        AppearanceGallery { features, dim }
    }

    /// Number of persons in the gallery.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.features.len() as u64
    }

    /// Descriptor dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The ground-truth descriptor of `person`, or `None` if out of range.
    #[must_use]
    pub fn feature_of(&self, person: PersonId) -> Option<&FeatureVector> {
        self.features.get(person.as_u64() as usize)
    }

    /// Packs the whole gallery into an SoA [`FeatureBlock`] for batch
    /// scoring with [`ev_core::kernel::Kernel`] — the gallery-side entry
    /// point the kernel microbench and any whole-population scan use.
    /// Generated galleries are dimension-uniform by construction, so
    /// packing cannot fail.
    ///
    /// [`FeatureBlock`]: ev_core::kernel::FeatureBlock
    #[must_use]
    pub fn to_block(&self) -> ev_core::kernel::FeatureBlock {
        ev_core::kernel::FeatureBlock::build("appearance-gallery", self.features.iter())
            .expect("generated galleries are dimension-uniform")
    }

    /// A noisy observation of `person`'s descriptor: each component gets
    /// independent Gaussian noise of standard deviation `sigma`, clamped
    /// back into `[0, 1]`. Returns `None` for unknown persons.
    #[must_use]
    pub fn observe(
        &self,
        person: PersonId,
        sigma: f64,
        rng: &mut ChaCha8Rng,
    ) -> Option<FeatureVector> {
        let truth = self.feature_of(person)?;
        if sigma <= 0.0 {
            return Some(truth.clone());
        }
        let noisy: Vec<f64> = truth
            .components()
            .iter()
            .map(|&c| c + gaussian(rng) * sigma)
            .collect();
        Some(FeatureVector::from_clamped(noisy))
    }
}

impl AppearanceGallery {
    /// Generates a gallery whose identities fall into `clusters`
    /// appearance clusters: each person is their cluster's centroid plus
    /// per-component Gaussian offsets of standard deviation `spread`.
    ///
    /// Real person re-identification confuses people who dress or build
    /// alike; independent uniform descriptors are unrealistically
    /// separable. Clustered galleries reproduce the paper's ~90 %
    /// accuracy regime: same-cluster identities have high mutual
    /// similarity and genuinely compete during VID filtering.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `clusters` is zero.
    #[must_use]
    pub fn generate_clustered(
        population: u64,
        dim: usize,
        clusters: usize,
        spread: f64,
        seed: u64,
    ) -> Self {
        assert!(dim > 0, "appearance dimension must be positive");
        assert!(clusters > 0, "need at least one appearance cluster");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centroids: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let features = (0..population)
            .map(|i| {
                let c = &centroids[(i as usize) % clusters];
                let components: Vec<f64> =
                    c.iter().map(|&x| x + gaussian(&mut rng) * spread).collect();
                FeatureVector::from_clamped(components)
            })
            .collect();
        AppearanceGallery { features, dim }
    }
}

/// One standard-normal sample via Box–Muller.
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::Metric;

    #[test]
    fn generation_is_deterministic() {
        let a = AppearanceGallery::generate(10, 32, 1);
        let b = AppearanceGallery::generate(10, 32, 1);
        let c = AppearanceGallery::generate(10, 32, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.population(), 10);
        assert_eq!(a.dim(), 32);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = AppearanceGallery::generate(1, 0, 0);
    }

    #[test]
    fn unknown_person_has_no_feature() {
        let g = AppearanceGallery::generate(3, 8, 0);
        assert!(g.feature_of(PersonId::new(2)).is_some());
        assert!(g.feature_of(PersonId::new(3)).is_none());
    }

    #[test]
    fn distinct_persons_are_well_separated() {
        let g = AppearanceGallery::generate(50, 64, 7);
        for i in 0..50u64 {
            for j in (i + 1)..50 {
                let a = g.feature_of(PersonId::new(i)).unwrap();
                let b = g.feature_of(PersonId::new(j)).unwrap();
                let d = a.distance(b, Metric::NormalizedL2).unwrap();
                assert!(d > 0.15, "persons {i} and {j} too close: {d}");
            }
        }
    }

    #[test]
    fn observation_noise_is_small_relative_to_identity_gaps() {
        let g = AppearanceGallery::generate(10, 64, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for i in 0..10u64 {
            let truth = g.feature_of(PersonId::new(i)).unwrap();
            let obs = g.observe(PersonId::new(i), 0.05, &mut rng).unwrap();
            let d = truth.distance(&obs, Metric::NormalizedL2).unwrap();
            assert!(d < 0.12, "observation drifted too far: {d}");
        }
    }

    #[test]
    fn zero_sigma_observation_is_exact() {
        let g = AppearanceGallery::generate(2, 16, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let obs = g.observe(PersonId::new(1), 0.0, &mut rng).unwrap();
        assert_eq!(&obs, g.feature_of(PersonId::new(1)).unwrap());
    }

    #[test]
    fn observation_of_unknown_person_is_none() {
        let g = AppearanceGallery::generate(1, 4, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(g.observe(PersonId::new(5), 0.1, &mut rng).is_none());
    }

    #[test]
    fn clustered_gallery_groups_identities() {
        let g = AppearanceGallery::generate_clustered(40, 32, 4, 0.05, 1);
        assert_eq!(g.population(), 40);
        // Persons 0 and 4 share cluster 0; 0 and 1 do not.
        let a = g.feature_of(PersonId::new(0)).unwrap();
        let mate = g.feature_of(PersonId::new(4)).unwrap();
        let other = g.feature_of(PersonId::new(1)).unwrap();
        let d_mate = a.distance(mate, Metric::NormalizedL2).unwrap();
        let d_other = a.distance(other, Metric::NormalizedL2).unwrap();
        assert!(
            d_mate < d_other,
            "cluster mates must look more alike ({d_mate} vs {d_other})"
        );
        assert!(d_mate > 0.0, "but not identical");
    }

    #[test]
    #[should_panic(expected = "at least one appearance cluster")]
    fn zero_clusters_panics() {
        let _ = AppearanceGallery::generate_clustered(4, 8, 0, 0.1, 0);
    }

    #[test]
    fn block_view_scores_bitwise_like_the_scalar_gallery() {
        use ev_core::kernel::Kernel;
        let g = AppearanceGallery::generate(37, 24, 4);
        let block = g.to_block();
        assert_eq!(block.len(), 37);
        assert_eq!(block.dim(), 24);
        let cand = g.feature_of(PersonId::new(5)).unwrap();
        for m in [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine] {
            let kernel = Kernel::prepare(m, 24).unwrap();
            let mut sims = vec![0.0; 37];
            kernel.score_into(cand, &block, &mut sims).unwrap();
            for (p, sim) in sims.iter().enumerate() {
                let truth = g.feature_of(PersonId::new(p as u64)).unwrap();
                let scalar = cand.similarity(truth, m).unwrap();
                assert_eq!(scalar.to_bits(), sim.to_bits(), "{m:?} person {p}");
            }
        }
    }

    #[test]
    fn observations_stay_in_unit_range() {
        let g = AppearanceGallery::generate(5, 16, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let obs = g.observe(PersonId::new(0), 0.5, &mut rng).unwrap();
            for &c in obs.components() {
                assert!((0.0..=1.0).contains(&c));
            }
        }
    }
}
