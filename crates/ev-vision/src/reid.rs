//! Re-identification probability model (paper §IV-B2, following \[24\]).
//!
//! VID similarity reflects the probability that two VIDs represent the
//! same person. For a scenario `S` with detections `VID_1..VID_k`, the
//! paper simplifies:
//!
//! * `P(VID* ∈ S)  = max_i sim(VID*, VID_i)`
//! * `P(VID* ∉ S)  = 1 − max_i sim(VID*, VID_i)`
//!
//! and scores a candidate against an EID's scenario list as the product of
//! per-scenario membership probabilities.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::scenario::VScenario;

/// `P(VID* ∈ S)`: the best similarity between the candidate feature and
/// any detection in the scenario. An empty scenario gives probability 0.
///
/// # Errors
///
/// Returns [`ev_core::Error::DimensionMismatch`] if the candidate's
/// dimensionality differs from the scenario's detections.
pub fn membership_probability(
    candidate: &FeatureVector,
    scenario: &VScenario,
    metric: Metric,
) -> ev_core::Result<f64> {
    let mut best: f64 = 0.0;
    for detection in scenario.detections() {
        let sim = candidate.similarity(&detection.feature, metric)?;
        best = best.max(sim);
    }
    Ok(best)
}

/// `P(VID* ∉ S) = 1 − P(VID* ∈ S)`.
///
/// # Errors
///
/// Returns [`ev_core::Error::DimensionMismatch`] on mismatched feature
/// dimensions.
pub fn absence_probability(
    candidate: &FeatureVector,
    scenario: &VScenario,
    metric: Metric,
) -> ev_core::Result<f64> {
    Ok(1.0 - membership_probability(candidate, scenario, metric)?)
}

/// Joint probability that the candidate appears in *all* the scenarios:
/// `Π_S P(VID* ∈ S)` (paper's `P(VID = VID*)` for the selected scenario
/// list).
///
/// # Errors
///
/// Returns [`ev_core::Error::DimensionMismatch`] on mismatched feature
/// dimensions.
pub fn joint_membership_probability<'a>(
    candidate: &FeatureVector,
    scenarios: impl IntoIterator<Item = &'a VScenario>,
    metric: Metric,
) -> ev_core::Result<f64> {
    let mut p = 1.0;
    for s in scenarios {
        p *= membership_probability(candidate, s, metric)?;
        if p == 0.0 {
            break;
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::Detection;
    use ev_core::time::Timestamp;
    use ev_core::Vid;

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    fn scenario(features: &[&[f64]]) -> VScenario {
        let mut s = VScenario::new(CellId::new(0), Timestamp::ZERO);
        for (i, f) in features.iter().enumerate() {
            s.push(Detection {
                vid: Vid::new(i as u64),
                feature: fv(f),
            });
        }
        s
    }

    #[test]
    fn membership_takes_the_best_match() {
        let s = scenario(&[&[0.0, 0.0], &[0.9, 0.9]]);
        let candidate = fv(&[1.0, 1.0]);
        let p = membership_probability(&candidate, &s, Metric::NormalizedL2).unwrap();
        // Closest detection is (0.9, 0.9): dist = sqrt(0.02)/sqrt(2) = 0.1.
        assert!((p - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_scenario_has_zero_membership() {
        let s = scenario(&[]);
        let candidate = fv(&[0.5]);
        assert_eq!(
            membership_probability(&candidate, &s, Metric::NormalizedL2).unwrap(),
            0.0
        );
        assert_eq!(
            absence_probability(&candidate, &s, Metric::NormalizedL2).unwrap(),
            1.0
        );
    }

    #[test]
    fn membership_and_absence_sum_to_one() {
        let s = scenario(&[&[0.2, 0.4], &[0.8, 0.1]]);
        let candidate = fv(&[0.3, 0.3]);
        let m = membership_probability(&candidate, &s, Metric::NormalizedL1).unwrap();
        let a = absence_probability(&candidate, &s, Metric::NormalizedL1).unwrap();
        assert!((m + a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_probability_multiplies() {
        let s1 = scenario(&[&[1.0, 1.0]]);
        let s2 = scenario(&[&[0.9, 0.9]]);
        let candidate = fv(&[1.0, 1.0]);
        let joint =
            joint_membership_probability(&candidate, [&s1, &s2], Metric::NormalizedL2).unwrap();
        let p1 = membership_probability(&candidate, &s1, Metric::NormalizedL2).unwrap();
        let p2 = membership_probability(&candidate, &s2, Metric::NormalizedL2).unwrap();
        assert!((joint - p1 * p2).abs() < 1e-12);
    }

    #[test]
    fn joint_probability_short_circuits_on_zero() {
        let empty = scenario(&[]);
        let s2 = scenario(&[&[0.5, 0.5]]);
        let candidate = fv(&[0.5, 0.5]);
        let joint =
            joint_membership_probability(&candidate, [&empty, &s2], Metric::NormalizedL2).unwrap();
        assert_eq!(joint, 0.0);
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let s = scenario(&[&[0.5, 0.5]]);
        let candidate = fv(&[0.5]);
        assert!(membership_probability(&candidate, &s, Metric::NormalizedL2).is_err());
        assert!(joint_membership_probability(&candidate, [&s], Metric::NormalizedL2).is_err());
    }
}
